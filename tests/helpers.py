"""Shared fixtures/builders for the test suite: small hand-built traces
mirroring the paper's motivating example (Figs. 1, 2, 13)."""

from __future__ import annotations

from repro.core.traces import Trace, TraceBuilder
from repro.core.values import prim


def myfaces_trace(min_range: int = 32, max_range: int = 127,
                  new_version: bool = False, name: str = "") -> Trace:
    """The Fig. 13 thread view: original when ``new_version`` is False,
    the regressing (refactored) version when True."""
    b = TraceBuilder(name=name)
    tid = b.main_tid
    log = b.record_init(tid, "Logger", (), serialization="LOG")
    sp = b.record_init(tid, "ServletProcessor", (),
                       serialization="SP")
    b.record_call(tid, log, "Logger.addMsg", (prim("Handling.."),))
    b.record_return(tid)
    b.record_call(tid, sp, "SP.setRequestType", (prim("text/html"),))
    b.record_call(tid, prim("text/html"), "Str.equals",
                  (prim("text/html"),))
    b.record_return(tid, prim(True))
    if new_version:
        binflt = b.record_init(tid, "BinaryCharFilter", (),
                               serialization="BINFLT")
        num = b.record_init(
            tid, "NumericEntityUtil", (prim(min_range), prim(max_range)),
            serialization=("NumericEntityUtil", (min_range, max_range)))
        b.record_set(tid, num, "_minCharRange", prim(min_range))
        b.record_set(tid, num, "_maxCharRange", prim(max_range))
        b.record_set(tid, binflt, "_binConv", num)
        b.record_call(tid, sp, "SP.addFilter", (binflt,))
        b.record_return(tid)
    else:
        num = b.record_init(
            tid, "NumericEntityUtil", (prim(min_range), prim(max_range)),
            serialization=("NumericEntityUtil", (min_range, max_range)))
        b.record_set(tid, num, "_minCharRange", prim(min_range))
        b.record_set(tid, num, "_maxCharRange", prim(max_range))
        b.record_set(tid, sp, "_binConv", num)
    b.record_call(tid, log, "Logger.addMsg", (prim("Set req.."),))
    b.record_return(tid)
    b.record_return(tid)  # setRequestType
    b.record_call(tid, num, "NumericEntityUtil.process", (prim("body"),))
    b.record_return(tid, prim("body"))
    b.record_end(tid)
    return b.build()


def simple_trace(values, name: str = "") -> Trace:
    """A flat trace of field sets over one object, one per value —
    convenient for LCS/differencing unit tests (the =e key tracks the
    value)."""
    b = TraceBuilder(name=name)
    tid = b.main_tid
    obj = b.record_init(tid, "Cell", (), serialization="cell")
    for value in values:
        b.record_set(tid, obj, "v", prim(value))
    b.record_end(tid)
    return b.build()


def two_thread_trace(main_values, worker_values, name: str = "") -> Trace:
    """A trace with a main thread and one forked worker."""
    b = TraceBuilder(name=name)
    tid = b.main_tid
    obj = b.record_init(tid, "Shared", (), serialization="shared")
    worker = b.record_fork(tid)
    for value in main_values:
        b.record_set(tid, obj, "m", prim(value))
    b.record_end(tid)
    for value in worker_values:
        b.record_set(worker, obj, "w", prim(value))
    b.record_end(worker)
    return b.build()
