"""Cross-layer integration tests: formal language -> views -> diffing,
capture -> segmentation -> offline analysis, workload -> full pipeline."""

from repro.analysis.serialize import load_trace, save_trace
from repro.capture import TraceFilter, trace_call
from repro.capture.segments import load_segments, segment_trace
from repro.core.lcs_diff import lcs_diff
from repro.core.regression import analyze_regression, evaluate_against_truth
from repro.core.view_diff import view_diff
from repro.core.views import ViewType
from repro.core.web import ViewWeb
from repro.lang import run_source
from repro.workloads.bugs import cause_by_method
from repro.workloads.minijs.bug_registry import MINIJS_BUGS, scaled
from repro.workloads.minijs.engine import run_script

PROGRAM_TEMPLATE = """
class Counter extends Object {
    Int value;
    Unit bump(Int amount) {
        this.value = this.value.add(amount);
        return unit;
    }
}
thread {
    var c = new Counter(0);
    var i = 0;
    while (i.lt(5)) {
        c.bump(%STEP%);
        i = i.add(1);
    }
    c.value;
}
"""


class TestFormalLanguageDiffing:
    def test_versions_differ_only_in_changed_value(self):
        old = run_source(PROGRAM_TEMPLATE.replace("%STEP%", "2"),
                         name="old")
        new = run_source(PROGRAM_TEMPLATE.replace("%STEP%", "3"),
                         name="new")
        result = view_diff(old, new)
        assert result.num_diffs() > 0
        # Every surviving difference mentions the changed dynamics (the
        # argument 3 / the diverging counter values); the loop plumbing
        # (i.lt, i.add) is correlated away.
        for eid in result.left_diff_eids():
            entry = old.entries[eid]
            assert "lt" not in str(entry.key())

    def test_identical_programs_empty_diff(self):
        source = PROGRAM_TEMPLATE.replace("%STEP%", "2")
        old = run_source(source, name="a")
        new = run_source(source, name="b")
        assert view_diff(old, new).num_diffs() == 0
        assert lcs_diff(old, new).num_diffs() == 0

    def test_lang_trace_has_full_view_web(self):
        trace = run_source(PROGRAM_TEMPLATE.replace("%STEP%", "2"))
        web = ViewWeb(trace)
        assert web.views_of_type(ViewType.THREAD)
        assert web.views_of_type(ViewType.METHOD)
        assert web.views_of_type(ViewType.TARGET_OBJECT)
        assert web.views_of_type(ViewType.ACTIVE_OBJECT)


class TestOfflineRoundTrip:
    def test_segmented_capture_analysed_offline(self, tmp_path):
        """Capture -> segment to disk -> reload -> diff: the RPRISM
        workflow for long-running programs."""
        trace_filter = TraceFilter(
            include_modules=("repro.workloads.minijs",))
        spec = MINIJS_BUGS.get("WE-FOLD-SUB")
        source = scaled(str(spec.failing_input), 4)
        old = trace_call(run_script, source, "old",
                         filter=trace_filter, name="old").trace
        new = trace_call(run_script, source, "new", spec.bug_id,
                         filter=trace_filter, name="new").trace
        direct = view_diff(old, new).num_diffs()

        old_paths = segment_trace(old, tmp_path / "old", segment_size=500)
        new_paths = segment_trace(new, tmp_path / "new", segment_size=500)
        assert len(old_paths) > 1  # actually segmented
        old_loaded = load_segments(old_paths, name="old")
        new_loaded = load_segments(new_paths, name="new")
        assert view_diff(old_loaded, new_loaded).num_diffs() == direct

    def test_save_load_full_pipeline(self, tmp_path):
        trace_filter = TraceFilter(
            include_modules=("repro.workloads.minijs",))
        source = scaled(str(MINIJS_BUGS.get("T-LE-TYPO").failing_input), 3)
        trace = trace_call(run_script, source, "old",
                           filter=trace_filter, name="t").trace
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert ViewWeb(loaded).counts() == ViewWeb(trace).counts()


class TestWorkloadPipeline:
    def test_minijs_bug_localised_end_to_end(self):
        """The full Sec. 4 recipe over a minijs regression, with ground
        truth checked."""
        trace_filter = TraceFilter(
            include_modules=("repro.workloads.minijs",))
        spec = MINIJS_BUGS.get("MF-NEG-INDEX")
        failing = scaled(str(spec.failing_input), 4)
        passing = scaled(str(spec.passing_input), 4)

        def capture(source, version, bug=None, name=""):
            return trace_call(run_script, source, version, bug,
                              filter=trace_filter, name=name).trace

        old_bad = capture(failing, "old", name="old/bad")
        new_bad = capture(failing, "new", spec.bug_id, name="new/bad")
        old_ok = capture(passing, "old", name="old/ok")
        new_ok = capture(passing, "new", spec.bug_id, name="new/ok")

        suspected = view_diff(old_bad, new_bad)
        expected = view_diff(old_ok, new_ok)
        regression = view_diff(new_ok, new_bad)
        report = analyze_regression(suspected, expected=expected,
                                    regression=regression)
        assert 1 <= report.size_d <= report.size_a
        evaluation = evaluate_against_truth(
            report, cause_by_method("Interpreter.index_read"))
        assert evaluation.false_negatives == 0
