"""Tests for the shared-state race lint: findings, determinism, and
the baseline-suppression workflow over the bundled scenario programs."""

import json
from pathlib import Path

from repro.lang.parser import parse_program
from repro.static import SCENARIOS, find_races, race_report
from repro.static.races import new_findings, render_report
from repro.static.scenarios import all_programs

BASELINE = Path(__file__).parent.parent / "results" / "static_races.json"

RACY = """
    class Counter { Int n;
        Int bump() { this.n = this.n.add(1); return this.n; } }
    thread {
        var c = new Counter(0);
        spawn { c.bump(); }
        c.bump();
    }
"""


class TestFindRaces:
    def test_concurrent_writes_flagged(self):
        findings = find_races(parse_program(RACY))
        assert [f.key for f in findings] == ["Counter.n"]
        finding, = findings
        assert finding.writers == ("<main>", "<main>.spawn[0]")

    def test_single_root_is_quiet(self):
        findings = find_races(parse_program("""
            class Counter { Int n;
                Int bump() { this.n = this.n.add(1); return this.n; } }
            thread { var c = new Counter(0); c.bump(); c.bump(); }
        """))
        assert findings == []

    def test_constructor_writes_do_not_race(self):
        # The spawn only *reads*; the main-thread write happens in the
        # constructor, which is ordered before the spawn exists.
        findings = find_races(parse_program("""
            class Box { Int v; Int get() { return this.v; } }
            thread {
                var b = new Box(7);
                spawn { b.get(); }
                b.get();
            }
        """))
        assert findings == []

    def test_read_write_race_flagged(self):
        findings = find_races(parse_program("""
            class Box { Int v;
                Int get() { return this.v; }
                Int set(Int x) { this.v = x; return x; } }
            thread {
                var b = new Box(0);
                spawn { b.set(1); }
                b.get();
            }
        """))
        assert [f.key for f in findings] == ["Box.v"]
        finding, = findings
        assert "<main>.spawn[0]" in finding.writers
        assert "<main>" in finding.readers

    def test_to_json_schema(self):
        finding, = find_races(parse_program(RACY))
        assert set(finding.to_json()) == {"field", "writers", "readers"}


class TestScenarioReport:
    def test_expected_bundled_findings(self):
        report = race_report(all_programs())
        keyed = {label: [f["field"] for f in findings]
                 for label, findings in report.items() if findings}
        assert keyed == {
            "minidb@old": ["Table.rows", "Table.version"],
            "minidb@new": ["Table.rows", "Table.version"],
            "myfaces@old": ["Page.hits"],
            "myfaces@new": ["Page.hits"],
        }

    def test_report_is_byte_stable(self):
        # Re-parse everything from scratch for the second run: the
        # rendered report must be byte-identical.
        first = render_report(race_report(all_programs()))
        fresh = {}
        for name, scenario in SCENARIOS.items():
            fresh[f"{name}@old"] = parse_program(scenario.old_source)
            fresh[f"{name}@new"] = parse_program(scenario.new_source)
        second = render_report(race_report(fresh))
        assert first == second

    def test_committed_baseline_matches(self):
        # The checked-in suppressions file must cover current findings
        # exactly; a new finding here means CI would (rightly) fail.
        assert BASELINE.exists(), "run: repro static races --write-baseline"
        baseline = json.loads(BASELINE.read_text())
        report = race_report(all_programs())
        assert new_findings(report, baseline) == []
        assert render_report(report) == BASELINE.read_text()

    def test_new_findings_detected_against_baseline(self):
        report = race_report(all_programs())
        baseline = json.loads(render_report(report))
        # Strip one known finding from the baseline: it must resurface.
        removed = baseline["minidb@new"].pop(0)
        fresh = new_findings(report, baseline)
        assert (("minidb@new", removed)) in fresh
        # Labels absent from the baseline count as all-new.
        extra = {"extra@old": parse_program(RACY)}
        report_extra = race_report({**all_programs(), **extra})
        fresh_extra = new_findings(report_extra,
                                   json.loads(render_report(report)))
        assert [label for label, _ in fresh_extra] == ["extra@old"]
