"""Tests for the persistent trace store."""

import pytest

from repro.analysis.serialize import save_trace
from repro.api.store import TraceStore, _stem_for
from repro.core.view_diff import view_diff

from helpers import myfaces_trace, simple_trace


@pytest.fixture()
def store(tmp_path):
    return TraceStore(tmp_path / "store")


class TestRoundTrip:
    def test_save_load_preserves_diff(self, store):
        old = myfaces_trace(min_range=32, name="old")
        new = myfaces_trace(min_range=1, new_version=True, name="new")
        store.save(old, key="old")
        store.save(new, key="new")
        direct = view_diff(old, new)
        reloaded = view_diff(store.load("old"), store.load("new"))
        assert reloaded.similar_left == direct.similar_left
        assert reloaded.num_diffs() == direct.num_diffs()

    def test_default_key_is_trace_name(self, store):
        record = store.save(simple_trace([1, 2], name="named"))
        assert record.key == "named"
        assert "named" in store

    def test_unnamed_trace_requires_key(self, store):
        with pytest.raises(ValueError):
            store.save(simple_trace([1]))

    def test_slash_keys_flatten_on_disk(self, store):
        store.save(simple_trace([1], name="t"), key="demo/old/regressing")
        record = store.get("demo/old/regressing")
        assert "/" not in record.path.name
        assert store.load("demo/old/regressing").name == "t"

    def test_stem_sanitisation(self):
        assert _stem_for("a/b") == "a__b"
        assert _stem_for("weird key!") == "weird-key-"

    def test_colliding_stems_stay_distinct(self, store):
        # "a/b" and "a__b" sanitise to the same stem; the store must
        # not let the second save clobber the first key's data.
        store.save(simple_trace([1], name="first"), key="a/b")
        store.save(simple_trace([1, 2, 3], name="second"), key="a__b")
        assert store.load("a/b").name == "first"
        assert store.load("a__b").name == "second"
        assert (store.get("a/b").path.name
                != store.get("a__b").path.name)
        store.save(simple_trace([7], name="one"), key="a b")
        store.save(simple_trace([8], name="two"), key="a:b")
        assert store.load("a b").name == "one"
        assert store.load("a:b").name == "two"


class TestListing:
    def test_records_report_entry_counts(self, store):
        store.save(simple_trace([1, 2, 3], name="three"))
        record = store.get("three")
        # Header + init + three sets + end.
        assert record.entries == len(store.load("three"))
        assert record.name == "three"

    def test_keys_sorted(self, store):
        for name in ("b", "a", "c"):
            store.save(simple_trace([1], name=name))
        assert store.keys() == ["a", "b", "c"]
        assert len(store) == 3

    def test_loose_files_are_discovered(self, store):
        trace = simple_trace([1, 2], name="loose")
        save_trace(trace, store.root / "dropped.jsonl")
        assert "dropped" in store.keys()
        assert store.load("dropped").name == "loose"

    def test_copied_store_without_index_resolves_colliding_keys(
            self, store, tmp_path):
        # A store directory copied without its store.json must still
        # route colliding keys to the right files (store_key headers
        # are authoritative, not the sanitised stem).
        store.save(simple_trace([1], name="dunder"), key="a__b")
        store.save(simple_trace([2, 3], name="slash"), key="a/b")
        copy = TraceStore(tmp_path / "copy")
        for path in store.root.glob("*.jsonl"):
            (copy.root / path.name).write_bytes(path.read_bytes())
        assert copy.keys() == ["a/b", "a__b"]
        assert copy.load("a/b").name == "slash"
        assert copy.load("a__b").name == "dunder"

    def test_junk_files_do_not_break_listing(self, store):
        store.save(simple_trace([1], name="good"))
        (store.root / "empty.jsonl").write_text("", encoding="utf-8")
        (store.root / "junk.jsonl").write_text("not json\n",
                                              encoding="utf-8")
        assert store.keys() == ["good"]
        assert [r.key for r in store.records()] == ["good"]
        assert len(store) == 1

    def test_missing_key(self, store):
        with pytest.raises(KeyError):
            store.load("absent")
        with pytest.raises(KeyError):
            store.get("absent")

    def test_missing_store_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceStore(tmp_path / "nowhere", create=False)


class TestTags:
    def test_tag_untag(self, store):
        store.save(simple_trace([1], name="t"), tags=("seed",))
        assert store.get("t").tags == ("seed",)
        store.tag("t", "bad", "myfaces")
        assert store.get("t").tags == ("bad", "myfaces", "seed")
        store.untag("t", "seed", "bad")
        assert store.get("t").tags == ("myfaces",)

    def test_records_filter_by_tag(self, store):
        store.save(simple_trace([1], name="a"), tags=("keep",))
        store.save(simple_trace([2], name="b"))
        keys = [r.key for r in store.records(tag="keep")]
        assert keys == ["a"]
        assert len(store.records()) == 2

    def test_tagging_survives_resave(self, store):
        store.save(simple_trace([1], name="t"), tags=("old",))
        store.save(simple_trace([1, 2], name="t"), tags=("new",))
        assert store.get("t").tags == ("new", "old")


class TestDeleteAndIngest:
    def test_delete(self, store):
        record = store.save(simple_trace([1], name="t"))
        store.delete("t")
        assert "t" not in store
        assert not record.path.exists()

    def test_delete_missing_is_noop(self, store):
        store.delete("absent")

    def test_ingest_file(self, store, tmp_path):
        trace = myfaces_trace(name="from-disk")
        source = tmp_path / "ext.jsonl"
        save_trace(trace, source)
        record = store.ingest_file(source, tags=("imported",))
        assert record.key == "from-disk"
        assert record.tags == ("imported",)
        assert len(store.load("from-disk")) == len(trace)
