"""Tests for static change-impact prediction: the structural program
diff, score propagation, cross-validation against the dynamic
ImpactReport, the anchor-hint feedback loop, and the CLI surface."""

import json

import pytest

from repro.analysis.cli import main
from repro.api import Session
from repro.core.view_diff import ViewDiffConfig, view_diff
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.static import (cross_validate, diff_programs, get_scenario,
                          predict_impact, validate_scenario)
from repro.static.cfg import MAIN
from repro.static.impact import dynamic_method_name


class TestDiffPrograms:
    def test_identity_diff_is_empty(self):
        program = get_scenario("minidb").old_program()
        assert diff_programs(program, program) == ()
        assert predict_impact(program, program).is_empty()

    def test_change_kinds(self):
        old = parse_program("""
            class A { Int x;
                Int keep() { return 1; }
                Int gone() { return 2; }
                Int edit() { return 3; }
                Int sig() { return 4; } }
            thread { new A(0).keep(); }
        """)
        new = parse_program("""
            class A { Int x; Int y;
                Int keep() { return 1; }
                Int edit() { return 30; }
                Int sig(Int n) { return 4; }
                Int fresh() { return 5; } }
            thread { new A(0, 0).keep(); new A(0, 0).fresh(); }
        """)
        kinds = {c.name: c.kind for c in diff_programs(old, new)}
        assert kinds == {
            "A.gone": "removed",
            "A.edit": "modified",
            "A.sig": "signature",
            "A.fresh": "added",
            "A.<init>": "fields",
            MAIN: "modified",
        }


class TestPredictImpact:
    def test_minidb_seeds_and_propagation(self):
        scenario = get_scenario("minidb")
        prediction = predict_impact(scenario.old_program(),
                                    scenario.new_program())
        assert [c.name for c in prediction.changes] == ["Table.insert"]
        scores = dict(prediction.ranked())
        assert scores["Table.insert"] == 1.0
        # Callers decay less than callees.
        assert scores["Db.insertMany"] > scores["Table.size"]
        assert prediction.method_hints() == (
            "<main>", "Db.insertMany", "Db.report", "Table.insert",
            "Table.size")

    def test_dynamic_method_name_folding(self):
        assert dynamic_method_name("Db.insertMany") == "Db.insertMany"
        assert dynamic_method_name(MAIN) == MAIN
        assert dynamic_method_name("<main>.spawn[0]") == MAIN
        assert dynamic_method_name("Table.<init>") is None

    def test_to_json_schema(self):
        scenario = get_scenario("minijs")
        payload = predict_impact(scenario.old_program(),
                                 scenario.new_program()).to_json()
        assert set(payload) == {"changes", "ranked", "predicted",
                                "reasons", "threshold"}
        assert all(set(c) == {"name", "kind"} for c in payload["changes"])


class TestCrossValidation:
    @pytest.mark.parametrize("name", ["minidb", "minijs", "minixslt",
                                      "myfaces", "invariants"])
    def test_recall_meets_target(self, name):
        validation = validate_scenario(name)
        assert validation.recall >= 0.9
        assert 0.0 <= validation.precision <= 1.0

    def test_validation_json_schema(self):
        payload = validate_scenario("minixslt").to_json()
        assert set(payload) == {
            "scenario", "predicted", "dynamic", "true_positives",
            "false_positives", "false_negatives", "precision", "recall",
            "static_seconds", "dynamic_seconds"}


class TestAnchorHints:
    def test_hints_preserve_anchored_results(self):
        scenario = get_scenario("minidb")
        old, new = scenario.old_program(), scenario.new_program()
        hints = predict_impact(old, new).method_hints()
        left = run_program(old, name="old")
        right = run_program(new, name="new")
        base = view_diff(left, right, ViewDiffConfig(anchored=True))
        hinted = view_diff(left, right, ViewDiffConfig(
            anchored=True, anchor_method_hints=hints))
        assert hinted.num_diffs() == base.num_diffs()
        assert hinted.left_diff_eids() == base.left_diff_eids()
        assert hinted.right_diff_eids() == base.right_diff_eids()

    def test_hints_participate_in_cache_keys(self):
        from repro.cache.diffcache import canonical_config
        plain = canonical_config(ViewDiffConfig(anchored=True))
        hinted = canonical_config(ViewDiffConfig(
            anchored=True, anchor_method_hints=("Db.insertMany",)))
        assert plain != hinted


def _run(n):
    total = 0
    for i in range(n):
        total += i
    return total


class TestSessionIntegration:
    def test_run_scenario_with_bundled_pair(self):
        session = Session(config=ViewDiffConfig(anchored=True))
        result = session.run_scenario(_run, _run, 4, 2,
                                      static_impact="minidb")
        assert result.static_impact is not None
        assert result.static_impact.scenario == "minidb"
        assert result.static_impact.recall >= 0.9
        assert "static impact" in result.render()
        # The hint-augmented config is scoped to the scenario call.
        assert session.config.anchor_method_hints == ()

    def test_run_scenario_with_explicit_programs(self):
        scenario = get_scenario("minijs")
        result = Session().run_scenario(
            _run, _run, 3, name="minijs-pair", static_impact=True,
            old_program=scenario.old_program(),
            new_program=scenario.new_program())
        assert result.static_impact.scenario == "minijs-pair"

    def test_true_without_programs_rejected(self):
        with pytest.raises(ValueError, match="old_program"):
            Session().run_scenario(_run, _run, 3, static_impact=True)

    def test_off_by_default(self):
        result = Session().run_scenario(_run, _run, 3)
        assert result.static_impact is None


class TestCli:
    def _json(self, capsys, *argv):
        assert main(["static", *argv, "--json"]) == 0
        return json.loads(capsys.readouterr().out)

    def test_impact_json_schema(self, capsys):
        payload = self._json(capsys, "impact", "--scenario", "minidb",
                             "--validate")
        assert set(payload) == {"program", "changes", "ranked",
                                "predicted", "reasons", "threshold",
                                "validation"}
        assert payload["validation"]["recall"] >= 0.9

    def test_impact_scenario_refs(self, capsys):
        payload = self._json(capsys, "impact", "minidb@old", "minidb@new")
        assert payload["program"] == "minidb@old -> minidb@new"
        assert [c["name"] for c in payload["changes"]] == ["Table.insert"]

    def test_races_json_schema(self, capsys):
        payload = self._json(capsys, "races")
        assert set(payload) == {"programs", "total", "new"}
        assert payload["total"] == 6

    def test_races_baseline_gate(self, capsys, tmp_path):
        empty = tmp_path / "baseline.json"
        empty.write_text("{}")
        assert main(["static", "races", "--baseline", str(empty)]) == 1
        out = capsys.readouterr().out
        assert "NEW" in out

    def test_cfg_and_callgraph_json(self, capsys):
        payload = self._json(capsys, "cfg", "minidb@old", "--node", MAIN)
        assert [c["name"] for c in payload["cfgs"]] == [MAIN]
        payload = self._json(capsys, "callgraph", "minidb@old")
        assert {"nodes", "edges", "instantiated", "program"} == set(payload)

    def test_effects_json(self, capsys):
        payload = self._json(capsys, "effects", "minidb@old",
                             "--transitive")
        names = {e["node"] for e in payload["effects"]}
        assert MAIN in names and "Db.insertMany" in names

    def test_unknown_source_rejected(self, capsys):
        with pytest.raises(SystemExit, match="no such source"):
            main(["static", "cfg", "nope@old"])
