"""The persistent trace catalog (:mod:`repro.index`) and the sharded
store layout it rides on.

The acceptance bar for queries is *index-only reads*: catalog lookups
on a 1k-trace store must never open a trace file, which the tests
assert by poisoning every trace-file reader the store layer knows.
"""

import json
import time

import pytest

from repro.api.session import Session
from repro.api.store import SHARDS_DIR, TraceStore, shard_of
from repro.cache import DiffCache
from repro.index import (SKETCH_SIZE, TraceIndex, TraceIndexRecord,
                         sketch_overlap, trace_sketch)

from helpers import simple_trace


def _record(key, digest="d0", fingerprint="f0", tags=(), scenario="",
            sketch=(), at=1000.0, entries=5, threads=1):
    return TraceIndexRecord(key=key, digest=digest,
                            fingerprint=fingerprint, entries=entries,
                            threads=threads, tags=tuple(tags),
                            scenario=scenario, sketch=tuple(sketch),
                            saved_at=at, updated_at=at)


class TestCatalogOps:
    def test_save_get_roundtrip(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_save(_record("a", digest="abc", tags=("x",)))
        record = index.get("a")
        assert record is not None
        assert record.digest == "abc"
        assert record.tags == ("x",)
        assert "a" in index
        assert len(index) == 1

    def test_readd_replaces(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_save(_record("a", digest="one"))
        index.record_save(_record("a", digest="two", at=2000.0))
        assert index.get("a").digest == "two"
        assert len(index) == 1

    def test_tags_op_updates(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_save(_record("a", tags=("x",)))
        index.record_tags("a", ("x", "y"))
        assert set(index.get("a").tags) == {"x", "y"}

    def test_tags_op_for_unknown_key_is_ignored(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_tags("ghost", ("x",))
        assert index.get("ghost") is None

    def test_delete_retires(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_save(_record("a"))
        index.record_delete("a")
        assert index.get("a") is None
        assert len(index) == 0

    def test_records_newest_updated_first(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_save(_record("old", at=100.0))
        index.record_save(_record("new", at=200.0))
        assert [r.key for r in index.records()] == ["new", "old"]

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_save(_record("a"))
        shard = next((tmp_path / "index.d" / "traces").glob("*.jsonl"))
        with shard.open("a", encoding="utf-8") as handle:
            handle.write('{"op": "add", "key": "tor')  # crashed writer
        assert index.get("a") is not None
        assert len(index) == 1

    def test_fold_memoisation_sees_external_appends(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_save(_record("a"))
        assert index.get("a") is not None  # warm the fold memo
        other = TraceIndex(tmp_path / "index.d")  # a second process
        other.record_save(_record("a", digest="fresh", at=2000.0))
        assert index.get("a").digest == "fresh"

    def test_compact_folds_op_logs(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        for n in range(5):
            index.record_save(_record("a", digest=f"d{n}", at=float(n)))
        index.record_tags("a", ("t",))
        assert index.compact() == 1
        record = index.get("a")
        assert record.digest == "d4" and record.tags == ("t",)
        shard = next((tmp_path / "index.d" / "traces").glob("*.jsonl"))
        assert len(shard.read_text().splitlines()) == 1

    def test_clear_drops_everything(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_save(_record("a"))
        index.record_diff("d1", "d2", "views")
        assert index.clear() >= 2
        assert len(index) == 0
        assert index.diff_stats() == []


class TestQuery:
    @pytest.fixture()
    def index(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_save(_record("a", digest="aa11", tags=("bad",),
                                  scenario="login", at=100.0))
        index.record_save(_record("b", digest="ab22",
                                  tags=("bad", "big"),
                                  scenario="login", at=200.0))
        index.record_save(_record("c", digest="cc33", tags=("good",),
                                  scenario="checkout", at=300.0))
        return index

    def test_by_tag(self, index):
        assert {r.key for r in index.query(tags="bad")} == {"a", "b"}
        assert [r.key for r in index.query(tags=("bad", "big"))] == ["b"]

    def test_by_scenario(self, index):
        assert {r.key for r in index.query(scenario="login")} == \
            {"a", "b"}

    def test_by_digest_prefix(self, index):
        assert {r.key for r in index.query(digest_prefix="a")} == \
            {"a", "b"}
        assert [r.key for r in index.query(digest_prefix="ab")] == ["b"]

    def test_by_key_prefix(self, index):
        assert [r.key for r in index.query(key_prefix="c")] == ["c"]

    def test_since_epoch_and_iso(self, index):
        assert {r.key for r in index.query(since=150.0)} == {"b", "c"}
        iso = time.strftime("%Y-%m-%dT%H:%M:%S",
                            time.localtime(250.0))
        assert {r.key for r in index.query(since=iso)} == {"c"}

    def test_since_garbage_raises(self, index):
        with pytest.raises(ValueError, match="unparseable"):
            index.query(since="not-a-time")

    def test_filters_conjoin_and_limit(self, index):
        assert index.query(tags="bad", scenario="checkout") == []
        assert len(index.query(limit=2)) == 2

    def test_newest_with_tag(self, index):
        assert index.newest_with_tag("bad").key == "b"
        assert index.newest_with_tag("bad", exclude_key="b").key == "a"
        assert index.newest_with_tag("absent") is None

    def test_by_digest(self, index):
        assert [r.key for r in index.by_digest("aa11")] == ["a"]


class TestSketchAndSimilar:
    def test_sketch_is_bounded_and_deterministic(self):
        trace = simple_trace(list(range(100)), name="t")
        sketch = trace_sketch(trace)
        assert len(sketch) <= SKETCH_SIZE
        assert sketch == trace_sketch(trace)
        assert list(sketch) == sorted(sketch)

    def test_overlap_estimates_jaccard(self):
        left = simple_trace(list(range(40)), name="l")
        mostly = simple_trace(list(range(2, 42)), name="m")
        disjoint = simple_trace(list(range(100, 140)), name="d")
        near = sketch_overlap(trace_sketch(left), trace_sketch(mostly))
        far = sketch_overlap(trace_sketch(left), trace_sketch(disjoint))
        assert near > far
        assert sketch_overlap((), ()) == 0.0

    def test_similar_ranks_duplicates_first(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        probe = simple_trace(list(range(30)), name="probe")
        store.save(probe, key="probe")
        store.save(simple_trace(list(range(30)), name="twin"),
                   key="twin")             # same content, other key
        store.save(simple_trace(list(range(3, 33)), name="kin"),
                   key="kin")              # overlapping keys
        store.save(simple_trace(list(range(500, 520)), name="far"),
                   key="far")
        scored = store.index.similar("probe")
        keys = [record.key for _score, record in scored]
        assert keys[0] == "twin"           # digest match outranks all
        assert "probe" not in keys         # the probe excludes itself
        assert keys.index("kin") < keys.index("far") if "far" in keys \
            else True

    def test_similar_unknown_key_raises(self, tmp_path):
        with pytest.raises(KeyError):
            TraceIndex(tmp_path / "index.d").similar("ghost")


class TestDiffStats:
    def test_session_diff_appends_a_row(self, tmp_path):
        session = Session(store=tmp_path / "store", cache=True)
        left = simple_trace([1, 2, 3], name="l")
        right = simple_trace([1, 2, 9], name="r")
        session.store.save(left, key="l")
        session.store.save(right, key="r")
        session.diff("l", "r")
        session.diff("l", "r")  # second run: a cached row
        rows = session.store.index.diff_stats()
        assert len(rows) == 2
        assert rows[-1].left == left.content_digest()
        assert rows[-1].right == right.content_digest()
        assert rows[-1].engine == "views"
        assert not rows[-1].cached
        assert rows[0].cached  # newest first; warm run hit the cache

    def test_filters(self, tmp_path):
        index = TraceIndex(tmp_path / "index.d")
        index.record_diff("aa11", "bb22", "views", num_diffs=3)
        index.record_diff("cc33", "dd44", "lcs", num_diffs=0)
        assert len(index.diff_stats()) == 2
        assert [s.engine for s in index.diff_stats(engine="lcs")] == \
            ["lcs"]
        rows = index.diff_stats(digest_prefix="aa")
        assert len(rows) == 1 and rows[0].num_diffs == 3
        assert len(index.diff_stats(limit=1)) == 1


class TestStoreCatalogMaintenance:
    def test_save_tag_untag_delete_flow_through(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        trace = simple_trace([1, 2], name="t")
        store.save(trace, key="a", tags=("x",), scenario="s")
        record = store.index.get("a")
        assert record.digest == trace.content_digest()
        assert record.fingerprint == trace.fingerprint()
        assert record.entries == len(trace)
        assert record.scenario == "s"
        assert record.tags == ("x",)
        store.tag("a", "y")
        assert set(store.index.get("a").tags) == {"x", "y"}
        store.untag("a", "x")
        assert store.index.get("a").tags == ("y",)
        store.delete("a")
        assert store.index.get("a") is None

    def test_dedup_returns_existing_record(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        trace = simple_trace([1, 2, 3], name="t")
        store.save(trace, key="original")
        record = store.save(trace, key="copy", dedup=True)
        assert record.key == "original"
        assert store.keys() == ["original"]
        # Tags offered with the duplicate land on the existing trace.
        tagged = store.save(trace, key="again", dedup=True,
                            tags=("seen",))
        assert tagged.key == "original" and "seen" in tagged.tags

    def test_dedup_ignores_deleted_files(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        trace = simple_trace([1, 2, 3], name="t")
        store.save(trace, key="a")
        # Simulate a catalog gone stale: the file vanished without a
        # record_delete (hand deletion).
        store._path_for("a").unlink()
        record = store.save(trace, key="b", dedup=True)
        assert record.key == "b"

    def test_capture_and_ingest_pass_dedup_through(self, tmp_path):
        session = Session(store=tmp_path / "store")
        def work():
            return sum(range(5))
        session.capture(work, name="one", store_as="one",
                        scenario="cap")
        trace = session.store.load("one")
        session.ingest(trace, store_as="two", dedup=True)
        assert session.store.keys() == ["one"]
        assert session.store.index.get("one").scenario == "cap"

    def test_run_scenario_records_scenario_metadata(self, tmp_path):
        session = Session(store=tmp_path / "store")
        def version(payload):
            return payload * 2
        session.run_scenario(version, version, regressing_input=3,
                             name="myscenario", store_prefix="job1")
        records = session.store.index.query(scenario="myscenario")
        assert {r.key for r in records} == {"job1/old/regressing",
                                            "job1/new/regressing"}

    def test_rebuild_backfills_a_legacy_store(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace([1], name="a"), key="a", tags=("t",))
        store.save(simple_trace([2], name="b"), key="b")
        store.index.clear()
        assert len(store.index) == 0
        assert store.index.rebuild(store) == 2
        assert set(r.key for r in store.index.records()) == {"a", "b"}
        assert store.index.get("a").tags == ("t",)
        assert store.index.get("b").digest  # recomputed from the file


class TestShardedLayout:
    def test_sharded_roundtrip(self, tmp_path):
        store = TraceStore(tmp_path / "store", layout="sharded")
        trace = simple_trace([1, 2, 3], name="ns/key")
        store.save(trace, key="ns/key", tags=("x",))
        expected_dir = (store.root / SHARDS_DIR / shard_of("ns/key"))
        assert store._path_for("ns/key").parent == expected_dir
        assert store.load("ns/key").content_digest() == \
            trace.content_digest()
        assert store.get("ns/key").tags == ("x",)
        assert store.keys() == ["ns/key"]
        store.delete("ns/key")
        assert store.keys() == []

    def test_auto_detection_on_reopen(self, tmp_path):
        TraceStore(tmp_path / "store", layout="sharded")
        reopened = TraceStore(tmp_path / "store")
        assert reopened.sharded

    def test_flat_layout_on_sharded_store_refused(self, tmp_path):
        TraceStore(tmp_path / "store", layout="sharded")
        with pytest.raises(ValueError, match="sharded"):
            TraceStore(tmp_path / "store", layout="flat")

    def test_unknown_layout_refused(self, tmp_path):
        with pytest.raises(ValueError, match="layout"):
            TraceStore(tmp_path / "store", layout="bogus")

    def test_migration_moves_files_and_keeps_tags(self, tmp_path):
        root = tmp_path / "store"
        flat = TraceStore(root)
        for n in range(8):
            flat.save(simple_trace([n], name=f"t{n}"), key=f"t{n}",
                      tags=(f"tag{n}",))
        migrated = TraceStore(root, layout="sharded")
        assert migrated.sharded
        assert len(list(root.glob("*.jsonl"))) == 0  # no flat remnants
        assert set(migrated.keys()) == {f"t{n}" for n in range(8)}
        for n in range(8):
            record = migrated.get(f"t{n}")
            assert record.tags == (f"tag{n}",)
            assert migrated.load(f"t{n}").name == f"t{n}"

    def test_migration_is_idempotent(self, tmp_path):
        root = tmp_path / "store"
        flat = TraceStore(root)
        flat.save(simple_trace([1], name="a"), key="a")
        sharded = TraceStore(root, layout="sharded")
        assert sharded.migrate_to_sharded() == 0  # nothing left to move
        assert sharded.keys() == ["a"]

    def test_flat_remnants_resolve_and_are_adopted(self, tmp_path):
        # A crashed migration leaves files at the flat root; reads must
        # still resolve them and mutations adopt them into their shard.
        root = tmp_path / "store"
        flat = TraceStore(root)
        flat.save(simple_trace([1], name="a"), key="a", tags=("x",))
        flat.save(simple_trace([2], name="b"), key="b")
        (root / SHARDS_DIR).mkdir()  # "migration" that moved nothing
        store = TraceStore(root)
        assert store.sharded
        assert set(store.keys()) == {"a", "b"}
        assert store.load("a").name == "a"
        store.tag("a", "y")  # adoption: the file moves into its shard
        assert store._path_for("a").parent == \
            root / SHARDS_DIR / shard_of("a")
        assert set(store.get("a").tags) >= {"y"}

    def test_session_cache_shards_with_the_store(self, tmp_path):
        store = TraceStore(tmp_path / "store", layout="sharded")
        session = Session(store=store, cache=True)
        assert session.cache.sharded


class TestShardedDiffCache:
    def test_sharded_entries_live_under_prefix_dirs(self, tmp_path):
        cache = DiffCache(tmp_path / "cache", sharded=True)
        cache.put_wire("abcdef", {"w": 1})
        assert (tmp_path / "cache" / "ab" / "abcdef.json").exists()
        wire = cache._disk_read("abcdef")
        assert wire["key"] == "abcdef" and wire["result"] == {"w": 1}

    def test_flat_entries_stay_readable_after_sharding(self, tmp_path):
        flat = DiffCache(tmp_path / "cache")
        flat.put_wire("deadbeef", {"x": 2})
        sharded = DiffCache(tmp_path / "cache", sharded=True)
        wire = sharded._disk_read("deadbeef")
        assert wire["key"] == "deadbeef"
        assert wire["result"] == {"x": 2}

    def test_auto_detection(self, tmp_path):
        DiffCache(tmp_path / "cache", sharded=True).put_wire("ff00", {})
        assert DiffCache(tmp_path / "cache").sharded
        assert not DiffCache(tmp_path / "other").sharded

    def test_stats_and_clear_cover_both_layouts(self, tmp_path):
        flat = DiffCache(tmp_path / "cache")
        flat.put_wire("11aa", {})
        sharded = DiffCache(tmp_path / "cache", sharded=True)
        sharded.put_wire("22bb", {})
        assert sharded.stats().disk_entries == 2
        assert sharded.clear() == 2


class TestIndexOnlyQueries:
    """Acceptance: catalog queries on a 1k-trace store read only
    ``index.d`` — every trace-file reader is poisoned for the duration."""

    TRACES = 1000

    def test_queries_never_open_trace_files(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path / "store", layout="sharded")
        digests = {}
        for n in range(self.TRACES):
            trace = simple_trace([n % 13, n], name=f"t{n:04d}")
            key = f"run{n % 10}/t{n:04d}"
            store.save(trace, key=key,
                       tags=("baseline",) if n % 100 == 0 else (),
                       scenario=f"scenario-{n % 5}")
            digests[key] = trace.content_digest()
        assert len(store.index) == self.TRACES

        def poisoned(*_args, **_kwargs):
            raise AssertionError("query touched a trace file")

        import repro.analysis.serialize as serialize
        import repro.api.store as store_module
        for module in (serialize, store_module):
            for name in ("read_header", "load_trace", "read_key_table"):
                if hasattr(module, name):
                    monkeypatch.setattr(module, name, poisoned)
        monkeypatch.setattr(serialize, "loads_trace", poisoned)

        index = store.index
        tagged = index.query(tags="baseline")
        assert len(tagged) == self.TRACES // 100
        scenario = index.query(scenario="scenario-3")
        assert len(scenario) == self.TRACES // 5
        probe_key = "run7/t0007"
        prefix = digests[probe_key][:8]
        by_digest = index.query(digest_prefix=prefix)
        assert any(r.key == probe_key for r in by_digest)
        assert index.get(probe_key).digest == digests[probe_key]
        assert index.newest_with_tag("baseline") is not None
        assert len(index.similar(probe_key, limit=5)) > 0


class TestCatalogIsBestEffort:
    def test_store_survives_unwritable_index_dir(self, tmp_path):
        store = TraceStore(tmp_path / "store")

        class Exploding:
            def __getattr__(self, name):
                def boom(*args, **kwargs):
                    raise OSError("disk full")
                return boom

        store._trace_index = Exploding()
        record = store.save(simple_trace([1], name="t"), key="a")
        assert record.key == "a"
        store.tag("a", "x")
        store.delete("a")
        assert store.keys() == []
