"""Tests for the regression-cause analysis (Sec. 4)."""

import pytest

from repro.core.regression import (MODE_INTERSECT, MODE_SUBTRACT,
                                   analyze_regression, diff_key_pool,
                                   evaluate_against_truth, side_key_pools)
from repro.core.view_diff import view_diff

from helpers import simple_trace


def diff(left_values, right_values):
    return view_diff(simple_trace(left_values, name="L"),
                     simple_trace(right_values, name="R"))


class TestKeyPools:
    def test_pool_of_identical_traces_is_empty(self):
        assert diff_key_pool(diff([1, 2], [1, 2])) == set()

    def test_side_pools(self):
        result = diff([1, 2, 3], [1, 9, 3])
        left, right = side_key_pools(result)
        assert len(left) == 1
        assert len(right) == 1
        assert left != right


class TestAnalysis:
    def test_suspected_only(self):
        suspected = diff([1, 2, 3], [1, 9, 3])
        report = analyze_regression(suspected)
        assert report.size_d == len(suspected.sequences) == 1

    def test_expected_filters_evolution_noise(self):
        # Differences 7->8 occur on both inputs (program evolution);
        # 3->9 occurs only under the regressing input.
        suspected = diff([1, 7, 3, 4], [1, 8, 9, 4])
        expected = diff([5, 7, 6], [5, 8, 6])
        report = analyze_regression(suspected, expected=expected)
        surviving = [e.event.value.serialization
                     for c in report.candidates
                     for e in c.surviving_left + c.surviving_right]
        assert 9 in surviving
        assert 8 not in surviving

    def test_intersection_with_c(self):
        suspected = diff([1, 2, 3], [1, 9, 8])
        # C (new version, correct vs regressing input) only shows the 9.
        regression = diff([1, 2, 8], [1, 9, 8])
        report = analyze_regression(suspected, regression=regression,
                                    mode=MODE_INTERSECT)
        surviving = [e.event.value.serialization
                     for c in report.candidates
                     for e in c.surviving_left + c.surviving_right]
        assert 9 in surviving
        assert 8 not in surviving

    def test_subtract_mode_for_code_removal(self):
        # The regression removes the "2" event; C cannot contain it.
        suspected = diff([1, 2, 3], [1, 3])
        regression = diff([1, 3, 5], [1, 3])
        report_subtract = analyze_regression(
            suspected, regression=regression, mode=MODE_SUBTRACT)
        surviving = [e.event.value.serialization
                     for c in report_subtract.candidates
                     for e in c.surviving_left + c.surviving_right]
        assert 2 in surviving
        report_intersect = analyze_regression(
            suspected, regression=regression, mode=MODE_INTERSECT)
        assert report_intersect.size_d <= report_subtract.size_d

    def test_set_sizes_reported(self):
        suspected = diff([1, 2], [1, 9])
        expected = diff([1, 2], [1, 2])
        regression = diff([1, 9], [1, 9])
        report = analyze_regression(suspected, expected=expected,
                                    regression=regression)
        sizes = report.set_sizes()
        assert sizes["A"] == 1
        assert sizes["B"] == 0
        assert sizes["C"] == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            analyze_regression(diff([1], [2]), mode="xor")

    def test_render_mentions_sizes(self):
        report = analyze_regression(diff([1, 2], [1, 9]))
        assert "|A|=" in report.render()


class TestTruthEvaluation:
    def test_true_positive_and_false_positive(self):
        suspected = diff([1, 2, 3, 4, 5], [1, 9, 3, 8, 5])
        report = analyze_regression(suspected)
        evaluation = evaluate_against_truth(
            report,
            lambda e: getattr(e.event, "value", None) is not None
            and e.event.value.serialization in (9, 2))
        assert evaluation.true_positives >= 1
        assert evaluation.true_positives + evaluation.false_positives == \
            report.size_d

    def test_false_negative_counted(self):
        suspected = diff([1, 2], [1, 2])  # no diffs at all
        report = analyze_regression(suspected)
        evaluation = evaluate_against_truth(report, lambda e: True,
                                            expected_cause_marks=1)
        assert evaluation.false_negatives == 1
