"""Tests for the execution layer's executor abstraction."""

import os
import threading

import pytest

from repro.exec.executors import (DEFAULT_MAX_WORKERS, Executor,
                                  ProcessExecutor, SerialExecutor,
                                  ThreadExecutor, available_executors,
                                  chunk_evenly, get_executor)


def _square(x):
    return x * x


def _pid_of(_):
    return os.getpid()


class TestSerialExecutor:
    def test_maps_in_order(self):
        ex = SerialExecutor()
        assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_runs_inline(self):
        ex = SerialExecutor()
        idents = ex.map(lambda _: threading.get_ident(), range(3))
        assert set(idents) == {threading.get_ident()}

    def test_propagates_exceptions(self):
        with pytest.raises(ZeroDivisionError):
            SerialExecutor().map(lambda x: 1 // x, [1, 0])

    def test_protocol(self):
        assert isinstance(SerialExecutor(), Executor)
        assert SerialExecutor().in_process


class TestThreadExecutor:
    def test_maps_in_order(self):
        with ThreadExecutor(max_workers=3) as ex:
            assert ex.map(_square, range(10)) == [x * x for x in range(10)]

    def test_pool_prewarmed(self):
        with ThreadExecutor(max_workers=3) as ex:
            # All worker threads exist before the first real map call.
            assert len(ex._pool._threads) == 3

    def test_closures_welcome(self):
        sink = []
        with ThreadExecutor(max_workers=2) as ex:
            ex.map(sink.append, [1, 2, 3])
        assert sorted(sink) == [1, 2, 3]

    def test_in_process(self):
        with ThreadExecutor(max_workers=1) as ex:
            assert ex.in_process
            assert isinstance(ex, Executor)


class TestProcessExecutor:
    def test_maps_in_order_across_processes(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(_square, range(8)) == [x * x for x in range(8)]

    def test_workers_prespawned_with_distinct_pids(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert len(ex.worker_pids) == 2
            assert os.getpid() not in ex.worker_pids

    def test_tasks_run_out_of_process(self):
        with ProcessExecutor(max_workers=1) as ex:
            (pid,) = set(ex.map(_pid_of, range(4)))
            assert pid != os.getpid()

    def test_not_in_process(self):
        with ProcessExecutor(max_workers=1) as ex:
            assert not ex.in_process
            assert isinstance(ex, Executor)


class TestGetExecutor:
    def test_none_is_serial(self):
        assert get_executor(None).name == "serial"

    def test_names(self):
        assert get_executor("serial").name == "serial"
        ex = get_executor("threads", max_workers=2)
        assert ex.name == "threads" and ex.max_workers == 2
        ex.close()

    def test_worker_suffix(self):
        ex = get_executor("threads:3")
        assert ex.max_workers == 3
        ex.close()

    def test_explicit_max_workers_beats_suffix(self):
        ex = get_executor("threads:3", max_workers=2)
        assert ex.max_workers == 2
        ex.close()

    def test_instances_pass_through(self):
        ex = SerialExecutor()
        assert get_executor(ex) is ex

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown executor"):
            get_executor("gpu")

    def test_bad_suffix_rejected(self):
        with pytest.raises(ValueError, match="worker count"):
            get_executor("threads:lots")

    def test_bad_suffix_rejected_even_when_overridden(self):
        with pytest.raises(ValueError, match="worker count"):
            get_executor("threads:lots", max_workers=2)

    def test_non_executor_rejected(self):
        with pytest.raises(TypeError, match="not an executor"):
            get_executor(42)

    def test_available_names(self):
        assert available_executors() == ("serial", "threads", "processes")

    def test_default_worker_cap(self):
        ex = get_executor("threads")
        assert ex.max_workers == DEFAULT_MAX_WORKERS
        ex.close()


class TestOwnership:
    def test_resolve_executor_marks_specs_owned(self):
        from repro.exec.executors import resolve_executor
        ex, owned = resolve_executor("serial")
        assert owned
        ex, owned = resolve_executor(None)
        assert owned
        instance = SerialExecutor()
        ex, owned = resolve_executor(instance)
        assert ex is instance and not owned

    def test_run_capture_tasks_closes_spec_built_pools(self):
        from repro.exec.capture import CaptureTask, run_capture_tasks
        closed = []

        class Probe(ThreadExecutor):
            def close(self):
                closed.append(True)
                super().close()

        probe = Probe(max_workers=1)
        run_capture_tasks([CaptureTask(func=_square, args=(2,))], probe)
        assert not closed  # instances stay with their creator
        probe.close()

    def test_session_owns_spec_built_executor(self):
        from repro.api import Session
        with Session(executor="threads:2") as session:
            assert session._owns_executor
            assert session.derive()._owns_executor is False
        assert session._owns_executor is False  # closed

    def test_with_executor_bad_spec_leaves_session_usable(self):
        from repro.api import Session
        with Session(executor="threads:2") as session:
            with pytest.raises(KeyError):
                session.with_executor("gpu")
            # The owned pool must not have been closed by the failure.
            assert session.executor.map(_square, [4]) == [16]

    def test_session_does_not_own_instances(self):
        from repro.api import Session
        with ThreadExecutor(max_workers=1) as ex:
            session = Session(executor=ex)
            assert not session._owns_executor
            session.close()
            assert ex.map(_square, [3]) == [9]  # still usable

    def test_run_pipeline_closes_spec_built_pool(self):
        from repro.api import ScenarioPipeline
        pipeline = ScenarioPipeline(executor="threads:2")
        assert pipeline._owned_executor is not None
        pipeline.close()
        assert pipeline._owned_executor is None


class TestChunkEvenly:
    def test_empty(self):
        assert chunk_evenly([], 4) == []

    def test_fewer_items_than_chunks(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_even_split_preserves_order(self):
        assert chunk_evenly(list(range(6)), 3) == [[0, 1], [2, 3], [4, 5]]

    def test_uneven_split_front_loads_extras(self):
        assert chunk_evenly(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]

    def test_single_chunk(self):
        assert chunk_evenly([1, 2, 3], 1) == [[1, 2, 3]]

    def test_no_empty_chunks(self):
        for items in range(1, 9):
            for chunks in range(1, 9):
                out = chunk_evenly(list(range(items)), chunks)
                assert all(out)
                assert [x for chunk in out for x in chunk] == \
                    list(range(items))
