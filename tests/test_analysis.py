"""Tests for the analysis layer: serialisation, segmentation, reporting,
and the RPrism facade."""

import pytest

from repro.analysis import (load_trace, render_diff_report,
                            render_trace_tree, save_trace)
from repro.analysis.rprism import RPrism
from repro.analysis.serialize import entry_from_json, entry_to_json
from repro.capture import TraceFilter, traced
from repro.capture.segments import (SegmentedTraceWriter, load_segments,
                                    segment_trace)
from repro.core.view_diff import view_diff

from helpers import myfaces_trace, simple_trace, two_thread_trace

MODULE_FILTER = TraceFilter(include_modules=(__name__,))


class TestSerialization:
    def test_entry_round_trip_preserves_keys(self):
        trace = myfaces_trace()
        for entry in trace:
            reborn = entry_from_json(entry_to_json(entry))
            assert reborn.key() == entry.key()
            assert reborn.eid == entry.eid
            assert reborn.tid == entry.tid
            assert reborn.method == entry.method

    def test_trace_round_trip(self, tmp_path):
        trace = two_thread_trace([1, 2], [3], name="demo")
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "demo"
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.key() == b.key()

    def test_round_trip_diffs_identically(self, tmp_path):
        left = myfaces_trace(name="L")
        right = myfaces_trace(min_range=1, new_version=True, name="R")
        before = view_diff(left, right).num_diffs()
        lp, rp = tmp_path / "l.jsonl", tmp_path / "r.jsonl"
        save_trace(left, lp)
        save_trace(right, rp)
        after = view_diff(load_trace(lp), load_trace(rp)).num_diffs()
        assert before == after

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": 999}\n')
        with pytest.raises(ValueError):
            load_trace(path)


class TestSegmentation:
    def test_segments_flushed_at_size(self, tmp_path):
        trace = simple_trace(range(25), name="seg")
        writer = SegmentedTraceWriter(tmp_path, name="seg", segment_size=10)
        writer.extend(trace.entries)
        paths = writer.close()
        assert len(paths) == 3  # 27 entries -> 10+10+7
        assert writer.total_entries == len(trace)

    def test_reassembly_preserves_order(self, tmp_path):
        trace = simple_trace(range(25), name="seg")
        paths = segment_trace(trace, tmp_path, segment_size=8)
        loaded = load_segments(paths, name="seg")
        assert [e.eid for e in loaded] == [e.eid for e in trace]
        assert [e.key() for e in loaded] == [e.key() for e in trace]

    def test_closed_writer_rejects_append(self, tmp_path):
        writer = SegmentedTraceWriter(tmp_path, segment_size=5)
        writer.close()
        with pytest.raises(RuntimeError):
            writer.append(simple_trace([1]).entries[0])

    def test_bad_segment_size(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentedTraceWriter(tmp_path, segment_size=0)


class TestReports:
    def test_trace_tree_indentation(self):
        trace = myfaces_trace()
        text = render_trace_tree(trace)
        assert "--> ServletProcessor-1.SP.setRequestType(Str('text/html'))" \
            in text
        # Entries inside the call are indented deeper.
        lines = text.splitlines()
        call_line = next(i for i, l in enumerate(lines)
                         if "setRequestType(" in l)
        inner_line = lines[call_line + 1]
        assert inner_line.startswith(" " * 4)

    def test_trace_tree_marks(self):
        trace = myfaces_trace()
        text = render_trace_tree(trace, mark={0})
        assert text.splitlines()[0].startswith("*")

    def test_trace_tree_thread_filter(self):
        trace = two_thread_trace([1], [2])
        text = render_trace_tree(trace, tid=1)
        assert "fork" not in text

    def test_diff_report_shape(self):
        left = myfaces_trace(name="orig")
        right = myfaces_trace(min_range=1, new_version=True, name="new")
        result = view_diff(left, right)
        report = render_diff_report(result)
        assert "semantic diff" in report
        assert "- " in report or "+ " in report

    def test_diff_report_sequence_cap(self):
        left = simple_trace([1, 2, 3, 4, 5, 6, 7, 8])
        right = simple_trace([1, 9, 3, 8, 5, 7, 7, 8])
        result = view_diff(left, right)
        report = render_diff_report(result, max_sequences=1)
        assert "more sequences" in report


@traced
class Gadget:
    def __init__(self, factor):
        self.factor = factor

    def apply(self, value):
        return value * self.factor

    def __repr__(self):
        return f"Gadget(x{self.factor})"


def old_version(data):
    gadget = Gadget(2)
    return [gadget.apply(v) for v in data]


def new_version(data):
    gadget = Gadget(3)  # the "regression"
    return [gadget.apply(v) for v in data]


class TestRPrism:
    def test_trace_and_diff(self):
        tool = RPrism(filter=MODULE_FILTER)
        old = tool.trace_call(old_version, [1, 2], name="old")
        new = tool.trace_call(new_version, [1, 2], name="new")
        result = tool.diff(old, new)
        assert result.algorithm == "views"
        assert result.num_diffs() > 0

    def test_lcs_algorithm_selectable(self):
        tool = RPrism(filter=MODULE_FILTER)
        old = tool.trace_call(old_version, [1], name="old")
        new = tool.trace_call(new_version, [1], name="new")
        result = tool.diff(old, new, algorithm="optimized")
        assert result.algorithm == "lcs-optimized"

    def test_full_scenario(self):
        tool = RPrism(filter=MODULE_FILTER)
        outcome = tool.analyze_regression_scenario(
            old_version, new_version,
            regressing_input=[1, 2, 3], correct_input=[0, 0])
        assert outcome.report.size_a >= outcome.report.size_d
        assert outcome.expected is not None
        assert outcome.regression is not None
        assert "old/regressing" in outcome.traces
        text = outcome.render()
        assert "suspected diff" in text

    def test_scenario_without_correct_input(self):
        tool = RPrism(filter=MODULE_FILTER)
        outcome = tool.analyze_regression_scenario(
            old_version, new_version, regressing_input=[1])
        assert outcome.expected is None
        assert outcome.regression is None
        assert outcome.report.size_d == outcome.report.size_a

    def test_web_helper(self):
        tool = RPrism(filter=MODULE_FILTER)
        trace = tool.trace_call(old_version, [1], name="t")
        web = tool.web(trace)
        assert web.counts()["total"] > 0
