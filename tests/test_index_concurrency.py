"""TraceIndex consistency under concurrent writers.

The catalog is an append-only op log behind per-shard advisory locks —
the same discipline the store's index uses — so many threads and many
processes appending at once must never lose or corrupt a record, with
or without ``fcntl``.
"""

import multiprocessing
import threading

import pytest

from repro.api.store import TraceStore
from repro.index import TraceIndex, TraceIndexRecord

from helpers import simple_trace


def _catalog_record(key, digest="d", at=1000.0):
    return TraceIndexRecord(key=key, digest=digest, fingerprint="f",
                            entries=1, threads=1, saved_at=at,
                            updated_at=at)


def _append_burst(root, writer_id, keys_per_writer):
    index = TraceIndex(root)
    for at in range(keys_per_writer):
        index.record_save(_catalog_record(f"w{writer_id}/t{at}",
                                          digest=f"d{writer_id}-{at}"))


def _store_tag_burst(root, n):
    TraceStore(root).tag("shared", f"tag-{n}")


def _rebuild_until(root, stop):
    store = TraceStore(root, create=False)
    while not stop.is_set():
        store.index.compact()


class TestConcurrentAppends:
    WRITERS = 4
    KEYS_EACH = 8

    def _verify(self, root):
        index = TraceIndex(root)
        expected = {f"w{w}/t{k}" for w in range(self.WRITERS)
                    for k in range(self.KEYS_EACH)}
        assert {r.key for r in index.records()} == expected
        for key in expected:
            assert index.get(key).digest == f"d{key[1]}-{key[-1]}"

    def test_thread_appenders(self, tmp_path):
        root = tmp_path / "index.d"
        threads = [threading.Thread(target=_append_burst,
                                    args=(root, w, self.KEYS_EACH))
                   for w in range(self.WRITERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self._verify(root)

    def test_process_appenders(self, tmp_path):
        root = tmp_path / "index.d"
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        workers = [context.Process(target=_append_burst,
                                   args=(root, w, self.KEYS_EACH))
                   for w in range(self.WRITERS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(worker.exitcode == 0 for worker in workers)
        self._verify(root)

    def test_store_taggers_union_survives_in_catalog(self, tmp_path):
        # Tag RMWs run inside the *store's* locked section, so the
        # catalog sees every tagger's union exactly like store.json.
        root = tmp_path / "store"
        store = TraceStore(root)
        store.save(simple_trace([1]), key="shared")
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        workers = [context.Process(target=_store_tag_burst,
                                   args=(root, n)) for n in range(6)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(worker.exitcode == 0 for worker in workers)
        expected = {f"tag-{n}" for n in range(6)}
        assert set(store.get("shared").tags) == expected
        assert set(store.index.get("shared").tags) == expected

    def test_appends_race_a_compacting_rebuilder(self, tmp_path):
        # Writers keep saving while another handle compacts the op
        # logs: compaction replaces shards under their locks, so no
        # record may be lost.
        root = tmp_path / "store"
        store = TraceStore(root)
        stop = threading.Event()
        compactor = threading.Thread(target=_rebuild_until,
                                     args=(root, stop))
        compactor.start()
        try:
            for n in range(20):
                store.save(simple_trace([n], name=f"t{n}"), key=f"t{n}")
        finally:
            stop.set()
            compactor.join()
        assert {r.key for r in store.index.records()} == \
            {f"t{n}" for n in range(20)}
        assert store.index.rebuild(store) == 20


class TestWithoutFcntl:
    @pytest.fixture()
    def no_fcntl(self, monkeypatch):
        from repro.api import store as store_module
        monkeypatch.setattr(store_module, "fcntl", None)
        return store_module

    def test_appends_work_and_release_locks(self, no_fcntl, tmp_path):
        root = tmp_path / "index.d"
        index = TraceIndex(root)
        index.record_save(_catalog_record("a"))
        index.record_tags("a", ("x",))
        assert index.get("a").tags == ("x",)
        assert not list(root.rglob("*.held"))  # no lock litter

    def test_concurrent_thread_appenders(self, no_fcntl, tmp_path):
        root = tmp_path / "index.d"
        threads = [threading.Thread(target=_append_burst,
                                    args=(root, w, 4))
                   for w in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        index = TraceIndex(root)
        assert len(index) == 12
        assert not list(root.rglob("*.held"))
