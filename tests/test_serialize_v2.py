"""Streaming serialisation v2: key tables on disk, v1 read-compat,
version validation, and mixed-version stores."""

import json

import pytest

from repro.analysis.serialize import (TEXT_FORMAT_VERSION, iter_entries,
                                      load_trace, read_header,
                                      read_key_table, save_entries,
                                      save_trace)
from repro.api.store import TraceStore
from repro.core.entries import entries_equal
from repro.core.keytable import KeyTable
from repro.core.view_diff import view_diff

from helpers import myfaces_trace


def entries_match(a, b):
    assert len(a) == len(b)
    for entry_a, entry_b in zip(a.entries, b.entries):
        assert entry_a.eid == entry_b.eid
        assert entry_a.tid == entry_b.tid
        assert entry_a.method == entry_b.method
        assert entries_equal(entry_a, entry_b)


class TestFormatV2:
    def test_default_writes_v2_with_key_table(self, tmp_path):
        trace = myfaces_trace(name="t")
        path = tmp_path / "t.jsonl"
        save_trace(trace, path, version=2)
        header = read_header(path)
        assert header["format"] == TEXT_FORMAT_VERSION == 2
        assert header["keys"] > 0
        loaded = load_trace(path)
        entries_match(trace, loaded)
        # The trace comes back interned: its column matches its table.
        assert loaded.key_table is not None
        assert len(loaded.key_ids) == len(loaded)
        for entry, kid in zip(loaded.entries, loaded.key_ids):
            assert loaded.key_table.key_of(kid) == entry.key()

    def test_v1_to_v2_round_trip(self, tmp_path):
        trace = myfaces_trace(new_version=True, name="t")
        v1 = tmp_path / "v1.jsonl"
        v2 = tmp_path / "v2.jsonl"
        save_trace(trace, v1, version=1)
        assert read_header(v1)["format"] == 1
        from_v1 = load_trace(v1)
        assert from_v1.key_table is None  # v1 carries no table
        entries_match(trace, from_v1)
        save_trace(from_v1, v2, version=2)
        from_v2 = load_trace(v2)
        entries_match(trace, from_v2)
        # =e keys survive the v1 -> v2 migration exactly.
        for entry_a, entry_b in zip(from_v1.entries, from_v2.entries):
            assert entry_a.key() == entry_b.key()

    def test_unknown_version_raises_clear_error(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"format": 99, "name": "x"}) + "\n",
                        encoding="utf-8")
        with pytest.raises(ValueError, match="version 99"):
            read_header(path)
        with pytest.raises(ValueError, match="version 99"):
            load_trace(path)
        with pytest.raises(ValueError, match="version 99"):
            list(iter_entries(path))

    def test_duplicate_key_table_line_rejected(self, tmp_path):
        trace = myfaces_trace(name="t")
        path = tmp_path / "t.jsonl"
        save_trace(trace, path, version=2)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[2] = lines[1]  # duplicate one key line: ids would shift
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt key table"):
            load_trace(path)

    def test_out_of_range_kid_rejected(self, tmp_path):
        trace = myfaces_trace(name="t")
        path = tmp_path / "t.jsonl"
        save_trace(trace, path, version=2)
        header = read_header(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        row = json.loads(lines[-1])
        row["kid"] = header["keys"] + 5
        lines[-1] = json.dumps(row)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="outside"):
            load_trace(path)

    def test_missing_version_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"name": "x"}) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported trace format"):
            read_header(path)

    def test_read_key_table_streams_both_formats(self, tmp_path):
        trace = myfaces_trace(name="t")
        v1 = tmp_path / "v1.jsonl"
        v2 = tmp_path / "v2.jsonl"
        save_trace(trace, v1, version=1)
        save_trace(trace, v2, version=2)
        expected = {entry.key() for entry in trace.entries}
        for path in (v1, v2):
            _header, table = read_key_table(path)
            assert set(table.keys()) == expected

    def test_iter_entries_skips_key_table(self, tmp_path):
        trace = myfaces_trace(name="t")
        path = tmp_path / "t.jsonl"
        save_trace(trace, path, version=2)
        streamed = list(iter_entries(path))
        assert len(streamed) == len(trace)
        for entry_a, entry_b in zip(trace.entries, streamed):
            assert entries_equal(entry_a, entry_b)

    def test_save_entries_v2_round_trip(self, tmp_path):
        trace = myfaces_trace(name="t")
        path = tmp_path / "seg.jsonl"
        count = save_entries(trace.entries, path, name="seg")
        assert count == len(trace)
        assert read_header(path)["keys"] > 0
        streamed = list(iter_entries(path))
        assert len(streamed) == len(trace)

    def test_shared_ingest_table_round_trips_local_ids(self, tmp_path):
        """A trace interned into a big shared table is written with a
        compact file-local table, and loads back consistent."""
        shared = KeyTable()
        for filler in range(100):
            shared.intern(("filler", filler))
        from repro.core.traces import TraceBuilder
        from repro.core.values import prim
        builder = TraceBuilder(name="t", key_table=shared)
        tid = builder.main_tid
        obj = builder.record_init(tid, "A", (), serialization=("A", 1))
        builder.record_set(tid, obj, "f", prim(1))
        builder.record_set(tid, obj, "f", prim(1))
        builder.record_end(tid)
        trace = builder.build()
        path = tmp_path / "t.jsonl"
        save_trace(trace, path, version=2)
        header = read_header(path)
        assert header["keys"] == len(set(trace.key_ids))  # compact
        loaded = load_trace(path)
        entries_match(trace, loaded)
        for entry, kid in zip(loaded.entries, loaded.key_ids):
            assert loaded.key_table.key_of(kid) == entry.key()


class TestMixedStore:
    def test_store_lists_and_loads_mixed_versions(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        new_style = myfaces_trace(name="new-style")
        store.save(new_style, key="pair/new")
        # A v1 file dropped in by an older tool, picked up as loose.
        old_style = myfaces_trace(new_version=True, name="old-style")
        save_trace(old_style, store.root / "legacy.jsonl", version=1)

        keys = store.keys()
        assert "pair/new" in keys and "legacy" in keys
        records = {record.key: record for record in store.records()}
        assert records["pair/new"].entries == len(new_style)
        assert records["legacy"].entries == len(old_style)

        left = store.load("pair/new")
        right = store.load("legacy")
        assert left.key_table is not None
        assert right.key_table is None
        # Interned diffing bridges a v2/v1 pair transparently.
        result = view_diff(left, right)
        assert result.num_diffs() > 0

    def test_store_save_records_fingerprint(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        trace = myfaces_trace(name="t")
        record = store.save(trace, key="t")
        assert record.metadata["fingerprint"] == trace.fingerprint()

    def test_load_key_table_from_store(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        trace = myfaces_trace(name="t")
        store.save(trace, key="t")
        table = store.load_key_table("t")
        assert set(table.keys()) == {e.key() for e in trace.entries}
