"""Hypothesis property tests for the static layer.

Generated ``repro.lang`` programs round-trip through the CFG builder
(every statement term lands in exactly one basic block, the entry block
dominates every reachable block) and the impact predictor (a program
diffed against itself predicts nothing).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.static import build_program_cfgs, predict_impact, statement_terms
from repro.static.cfg import MAIN, iter_spawns

# Generated statements reference only locals a0..a3, declared before
# use at the top level so any nesting of the generated blocks is a
# well-formed (if not always well-typed) program.
NAMES = ("a0", "a1", "a2", "a3")


def simple(name: str, value: int) -> str:
    return f"var {name} = {value};"


statement = st.deferred(lambda: st.one_of(
    st.builds(simple, st.sampled_from(NAMES), st.integers(0, 9)),
    st.builds(lambda n, v: f"{n} = {n}.add({v});",
              st.sampled_from(NAMES), st.integers(0, 9)),
    st.builds(lambda n: f"{n}.toStr();", st.sampled_from(NAMES)),
    st.builds(lambda n, body: f"if ({n}.lt(5)) {{ {body} }}",
              st.sampled_from(NAMES), block),
    st.builds(lambda n, t, e: f"if ({n}.lt(5)) {{ {t} }} else {{ {e} }}",
              st.sampled_from(NAMES), block, block),
    st.builds(lambda n, body: f"while ({n}.lt(0)) {{ {body} }}",
              st.sampled_from(NAMES), block),
    st.builds(lambda body: f"spawn {{ {body} }}", block),
))
block = st.lists(statement, max_size=4).map(" ".join)


@st.composite
def lang_programs(draw) -> str:
    decls = " ".join(simple(name, i) for i, name in enumerate(NAMES))
    body = draw(st.lists(statement, max_size=6).map(" ".join))
    return f"thread {{ {decls} {body} }}"


@given(lang_programs())
@settings(max_examples=60, deadline=None)
def test_cfg_partitions_statements(source):
    program = parse_program(source)
    cfgs = build_program_cfgs(program)

    def expected_bodies(body, name):
        yield name, body
        for index, spawn in enumerate(iter_spawns(body)):
            yield from expected_bodies(spawn.body, f"{name}.spawn[{index}]")

    bodies = dict(expected_bodies(program.main, MAIN))
    assert set(cfgs) == set(bodies)
    for name, body in bodies.items():
        owned = Counter(id(t) for t in cfgs[name].owned_terms())
        assert owned == Counter(id(t) for t in statement_terms(body))
        assert not owned or max(owned.values()) == 1


@given(lang_programs())
@settings(max_examples=60, deadline=None)
def test_entry_dominates_reachable_blocks(source):
    for cfg in build_program_cfgs(parse_program(source)).values():
        doms = cfg.dominators()
        for bid in cfg.reachable():
            assert cfg.entry in doms[bid]
        # Back edges only target loop headers.
        for _, dst in cfg.back_edges():
            assert cfg.blocks[dst].kind == "loop"


@given(lang_programs())
@settings(max_examples=40, deadline=None)
def test_identity_impact_is_empty(source):
    program = parse_program(source)
    prediction = predict_impact(program, program)
    assert prediction.is_empty()
    assert prediction.method_hints() == ()
