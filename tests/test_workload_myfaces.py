"""Tests for the MyFaces motivating-example workload."""

from repro.analysis.rprism import RPrism
from repro.capture import TraceFilter
from repro.core.regression import evaluate_against_truth
from repro.workloads.myfaces.common import (HttpRequest, Logger,
                                            NumericEntityUtil)
from repro.workloads.myfaces.scenario import (CORRECT_REQUEST,
                                              REGRESSING_REQUEST,
                                              is_cause_entry,
                                              regression_manifests,
                                              run_new_version,
                                              run_old_version)

FILTER = TraceFilter(include_modules=("repro.workloads.myfaces",))


class TestNumericEntityUtil:
    def test_converts_outside_range(self):
        util = NumericEntityUtil(32, 127)
        assert util.convert("a\x07b") == "a&#7;b"

    def test_preserves_in_range(self):
        util = NumericEntityUtil(32, 127)
        assert util.convert("hello") == "hello"

    def test_converts_above_range(self):
        util = NumericEntityUtil(32, 127)
        assert util.convert("é") == "&#233;"

    def test_wrong_range_skips_control_chars(self):
        util = NumericEntityUtil(1, 127)
        assert util.convert("a\x07b") == "a\x07b"


class TestVersionBehaviour:
    def test_old_version_converts_control_chars(self):
        output = run_old_version(REGRESSING_REQUEST)
        assert "&#7;" in output
        assert "&#11;" in output

    def test_new_version_regresses(self):
        output = run_new_version(REGRESSING_REQUEST)
        assert "&#7;" not in output
        assert "\x07" in output

    def test_versions_agree_on_correct_input(self):
        assert run_old_version(CORRECT_REQUEST) == \
            run_new_version(CORRECT_REQUEST)

    def test_regression_manifests(self):
        assert regression_manifests()

    def test_non_html_untouched(self):
        output = run_old_version(("text/plain", "x\x07y"))
        assert output == "x\x07y"


class TestRegressionAnalysis:
    def test_cause_identified_with_few_candidates(self):
        tool = RPrism(filter=FILTER)
        outcome = tool.analyze_regression_scenario(
            run_old_version, run_new_version,
            regressing_input=REGRESSING_REQUEST,
            correct_input=CORRECT_REQUEST)
        report = outcome.report
        # The analysis shrinks A to a handful of candidates (paper: 7
        # relevant changes).
        assert report.size_d < report.size_a
        assert report.size_d <= 12
        evaluation = evaluate_against_truth(report, is_cause_entry)
        assert evaluation.true_positives >= 1
        assert evaluation.false_negatives == 0

    def test_expected_set_is_small(self):
        # On the correct input both versions behave the same; only the
        # refactoring shows up.
        tool = RPrism(filter=FILTER)
        outcome = tool.analyze_regression_scenario(
            run_old_version, run_new_version,
            regressing_input=REGRESSING_REQUEST,
            correct_input=CORRECT_REQUEST)
        assert outcome.expected is not None
        assert len(outcome.expected.sequences) < \
            len(outcome.suspected.sequences)

    def test_logger_activity_not_in_candidates(self):
        tool = RPrism(filter=FILTER)
        outcome = tool.analyze_regression_scenario(
            run_old_version, run_new_version,
            regressing_input=REGRESSING_REQUEST,
            correct_input=CORRECT_REQUEST)
        for candidate in outcome.report.candidates:
            for entry in (candidate.surviving_left
                          + candidate.surviving_right):
                assert "Logger.add_msg" not in getattr(
                    entry.event, "method", "")


class TestLogger:
    def test_message_count(self):
        logger = Logger("test")
        logger.add_msg("a")
        logger.add_msg("b")
        assert logger.message_count == 2


class TestHttpTypes:
    def test_response_write_appends(self):
        from repro.workloads.myfaces.common import HttpResponse
        response = HttpResponse("text/html")
        response.write("a")
        response.write("b")
        assert response.output == "ab"

    def test_request_fields(self):
        request = HttpRequest("text/html", "body")
        assert request.document_type == "text/html"
        assert request.body == "body"
