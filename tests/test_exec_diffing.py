"""The diff execution phase: plan/execute split and result identity.

The views-based diff's acceptance bar is *bit-identity*: whatever
executor runs the per-thread-pair execution phase — serial, thread
pool, or process pool — the merged result must equal the serial
evaluation exactly (similarity sets, match and anchor pairs, sequences,
compare totals).  The hypothesis suites below pin that down over
randomly generated multi-threaded trace pairs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcs import OpCounter
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.core.view_diff import (PairMarks, ViewDiffConfig,
                                  plan_view_diff, view_diff)
from repro.exec import ProcessExecutor, ThreadExecutor, executed_view_diff

from helpers import myfaces_trace, two_thread_trace

# A trace program over one main and two worker threads: every op is
# (thread, kind, value); threads with no ops never exist.
operation = st.tuples(st.integers(0, 2), st.integers(0, 2),
                      st.integers(0, 6))
programs = st.lists(operation, max_size=50)

METHODS = ("Widget.spin", "Widget.poke", "Widget.drop")


def build_threaded_trace(program, name=""):
    builder = TraceBuilder(name=name)
    main = builder.main_tid
    obj = builder.record_init(main, "Widget", (), serialization="widget")
    tids = {0: main}
    for thread_at, kind, value in program:
        tid = tids.get(thread_at)
        if tid is None:
            tid = tids[thread_at] = builder.record_fork(main)
        if kind == 0:
            builder.record_set(tid, obj, "v", prim(value))
        elif kind == 1:
            builder.record_call(tid, obj, METHODS[value % len(METHODS)],
                                (prim(value),))
            builder.record_return(tid, prim(value))
        else:
            builder.record_get(tid, obj, "v", prim(value))
    for tid in tids.values():
        builder.record_end(tid)
    return builder.build()


def signature(result):
    """Everything that must be identical across execution backends."""
    return (
        sorted(result.similar_left),
        sorted(result.similar_right),
        result.match_pairs,
        result.anchor_pairs,
        [(s.kind, [e.eid for e in s.left_entries],
          [e.eid for e in s.right_entries]) for s in result.sequences],
        result.counter.total,
    )


@pytest.fixture(scope="module")
def thread_pool():
    with ThreadExecutor(max_workers=3) as ex:
        yield ex


@pytest.fixture(scope="module")
def process_pool():
    with ProcessExecutor(max_workers=2) as ex:
        yield ex


class TestPlanPhase:
    def test_plan_enumerates_correlated_thread_pairs(self):
        left = two_thread_trace([1, 2, 3], [7, 8], name="L")
        right = two_thread_trace([1, 2, 4], [7, 9], name="R")
        plan = plan_view_diff(left, right)
        assert len(plan.pairs) == 2
        assert all(isinstance(p, tuple) and len(p) == 2
                   for p in plan.pairs)

    def test_run_pair_produces_independent_marks(self):
        left = two_thread_trace([1, 2, 3], [7, 8], name="L")
        right = two_thread_trace([1, 2, 4], [7, 9], name="R")
        plan = plan_view_diff(left, right)
        marks = [plan.run_pair(pair) for pair in plan.pairs]
        assert all(isinstance(mark, PairMarks) for mark in marks)
        assert [(m.ltid, m.rtid) for m in marks] == plan.pairs
        assert sum(mark.compares for mark in marks) > 0

    def test_merge_equals_one_shot_view_diff(self):
        left = two_thread_trace([1, 2, 3, 4], [7, 8], name="L")
        right = two_thread_trace([1, 2, 9, 4], [7, 9], name="R")
        plan = plan_view_diff(left, right)
        merged = plan.merge([plan.run_pair(p) for p in plan.pairs])
        assert signature(merged) == signature(view_diff(left, right))

    def test_merge_order_is_plan_order_not_completion_order(self):
        left = two_thread_trace([1, 2, 3], [7, 8, 1], name="L")
        right = two_thread_trace([1, 5, 3], [7, 9, 1], name="R")
        plan = plan_view_diff(left, right)
        forward = [plan.run_pair(p) for p in plan.pairs]
        # Evaluating in reverse then merging in plan order must still
        # reproduce the serial result (marks are order-independent).
        backward = list(reversed(
            [plan.run_pair(p) for p in reversed(plan.pairs)]))
        assert signature(plan.merge(forward)) == \
            signature(plan.merge(backward)) == \
            signature(view_diff(left, right))

    def test_process_executor_rejected_by_core_view_diff(self, process_pool):
        left = two_thread_trace([1], [2], name="L")
        right = two_thread_trace([1], [2], name="R")
        with pytest.raises(ValueError, match="executed_view_diff"):
            view_diff(left, right, executor=process_pool)


class TestExecutorIdentity:
    @given(programs, programs)
    @settings(max_examples=40, deadline=None)
    def test_threaded_execution_is_bit_identical(self, thread_pool,
                                                 left_ops, right_ops):
        left = build_threaded_trace(left_ops, name="L")
        right = build_threaded_trace(right_ops, name="R")
        serial = view_diff(left, right)
        threaded = view_diff(left, right, executor=thread_pool)
        assert signature(serial) == signature(threaded)

    @given(programs, programs)
    @settings(max_examples=8, deadline=None)
    def test_process_execution_is_bit_identical(self, process_pool,
                                                left_ops, right_ops):
        left = build_threaded_trace(left_ops, name="L")
        right = build_threaded_trace(right_ops, name="R")
        serial = view_diff(left, right)
        processed = executed_view_diff(left, right, executor=process_pool)
        assert signature(serial) == signature(processed)

    @given(programs, programs)
    @settings(max_examples=20, deadline=None)
    def test_tuple_key_path_identical_too(self, thread_pool,
                                          left_ops, right_ops):
        config = ViewDiffConfig(interned=False)
        left = build_threaded_trace(left_ops, name="L")
        right = build_threaded_trace(right_ops, name="R")
        serial = view_diff(left, right, config=config)
        threaded = view_diff(left, right, config=config,
                             executor=thread_pool)
        assert signature(serial) == signature(threaded)

    def test_myfaces_pair_identical_across_all_executors(
            self, thread_pool, process_pool):
        left = myfaces_trace(name="old")
        right = myfaces_trace(new_version=True, name="new")
        serial = view_diff(left, right)
        assert signature(serial) == signature(
            view_diff(left, right, executor=thread_pool))
        assert signature(serial) == signature(
            executed_view_diff(left, right, executor=process_pool))
        assert signature(serial) == signature(
            executed_view_diff(left, right, executor="serial"))

    def test_counter_accumulates_across_executed_diffs(self, thread_pool):
        left = two_thread_trace([1, 2, 3], [7, 8], name="L")
        right = two_thread_trace([1, 5, 3], [7, 9], name="R")
        baseline = view_diff(left, right).counter.total
        counter = OpCounter()
        view_diff(left, right, executor=thread_pool, counter=counter)
        view_diff(left, right, executor=thread_pool, counter=counter)
        assert counter.total == 2 * baseline


class TestSessionDiffExecutor:
    def test_views_engine_accepts_executor(self):
        from repro.api.engines import accepts_executor, get_engine
        assert accepts_executor(get_engine("views"))
        assert not accepts_executor(get_engine("optimized"))

    def test_session_diff_routes_through_executor(self, process_pool):
        from repro.api import Session
        left = two_thread_trace([1, 2, 3], [7, 8], name="L")
        right = two_thread_trace([1, 5, 3], [7, 9], name="R")
        serial = Session().diff(left, right)
        parallel = Session(executor=process_pool).diff(left, right)
        assert signature(serial) == signature(parallel)

    def test_lcs_engines_unaffected_by_executor(self, process_pool):
        from repro.api import Session
        left = two_thread_trace([1, 2, 3], [], name="L")
        right = two_thread_trace([1, 5, 3], [], name="R")
        serial = Session(engine="optimized").diff(left, right)
        parallel = Session(engine="optimized",
                           executor=process_pool).diff(left, right)
        assert sorted(serial.similar_left) == sorted(parallel.similar_left)
