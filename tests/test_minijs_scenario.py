"""Tests for the Fig. 14 driver (repro.workloads.minijs.scenario)."""

import pytest

from repro.workloads.minijs.bug_registry import MINIJS_BUGS
from repro.workloads.minijs.scenario import (DEFAULT_SCALES, BugRun,
                                             run_bug, run_suite,
                                             trace_pair)


class TestTracePair:
    def test_traces_named_and_nonempty(self):
        spec = MINIJS_BUGS.get("T-LE-TYPO")
        old, new = trace_pair(spec, 2)
        assert len(old) > 100
        assert len(new) > 100
        assert "old" in old.name
        assert "new" in new.name

    def test_traces_differ_on_failing_input(self):
        spec = MINIJS_BUGS.get("WE-FOLD-SUB")
        old, new = trace_pair(spec, 2)
        keys_old = [e.key() for e in old.entries]
        keys_new = [e.key() for e in new.entries]
        assert keys_old != keys_new


class TestRunBug:
    @pytest.fixture(scope="class")
    def run(self) -> BugRun:
        return run_bug(MINIJS_BUGS.get("MC-MOD-NEG"), 3)

    def test_views_measurements_present(self, run):
        assert run.views_num_diffs > 0
        assert run.views_sequences > 0
        assert run.views_compares > 0
        assert run.views_seconds > 0

    def test_lcs_measurements_present(self, run):
        assert not run.lcs_failed
        assert run.lcs_num_diffs is not None
        assert run.lcs_compares is not None

    def test_metrics_computed(self, run):
        assert run.accuracy is not None
        assert run.accuracy > 0.5
        assert run.speedup is not None
        assert run.speedup > 0

    def test_lcs_failure_emulation(self):
        run = run_bug(MINIJS_BUGS.get("MC-MOD-NEG"), 3,
                      lcs_cell_budget=10)
        assert run.lcs_failed
        assert run.accuracy is None
        assert run.speedup is None
        # The views side still completed.
        assert run.views_num_diffs > 0


class TestRunSuite:
    def test_subset_runs(self):
        runs = run_suite(scales={"T-PUSH-RET": 2},
                         bug_ids=["T-PUSH-RET"])
        assert len(runs) == 1
        assert runs[0].bug_id == "T-PUSH-RET"

    def test_default_scales_cover_all_bugs(self):
        assert set(DEFAULT_SCALES) == set(MINIJS_BUGS.ids())
