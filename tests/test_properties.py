"""Hypothesis property tests over richer generated traces.

Generators build multi-object, multi-method traces; properties assert
the structural invariants of views, diffing, serialisation, and the
regression set algebra that every concrete test elsewhere relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.serialize import entry_from_json, entry_to_json
from repro.core.lcs_diff import lcs_diff
from repro.core.regression import analyze_regression
from repro.core.traces import TraceBuilder
from repro.core.view_diff import view_diff
from repro.core.views import ViewType, view_names
from repro.core.web import ViewWeb
from repro.core.values import prim

# One trace "program": a list of operations over a small object pool.
#   ("new",)                      create an object (round-robin class)
#   ("call", obj, method, value)  call + return on object
#   ("set", obj, field, value)    field write
#   ("fork",)                     spawn a thread (events stay on main)
operation = st.one_of(
    st.tuples(st.just("new")),
    st.tuples(st.just("call"), st.integers(0, 3), st.integers(0, 2),
              st.integers(0, 5)),
    st.tuples(st.just("set"), st.integers(0, 3), st.integers(0, 1),
              st.integers(0, 5)),
    st.tuples(st.just("fork")),
)
programs = st.lists(operation, max_size=40)

CLASSES = ("Alpha", "Beta")
METHODS = ("m0", "m1", "m2")
FIELDS = ("f0", "f1")


def build_trace(program, name=""):
    builder = TraceBuilder(name=name)
    tid = builder.main_tid
    objects = []
    for op in program:
        if op[0] == "new":
            class_name = CLASSES[len(objects) % len(CLASSES)]
            objects.append(builder.record_init(tid, class_name, ()))
        elif op[0] == "fork":
            builder.record_fork(tid)
        elif not objects:
            continue
        elif op[0] == "call":
            _, obj_at, method_at, value = op
            obj = objects[obj_at % len(objects)]
            method = f"{obj.class_name}.{METHODS[method_at]}"
            builder.record_call(tid, obj, method, (prim(value),))
            builder.record_return(tid, prim(value))
        elif op[0] == "set":
            _, obj_at, field_at, value = op
            obj = objects[obj_at % len(objects)]
            builder.record_set(tid, obj, FIELDS[field_at], prim(value))
    builder.record_end(tid)
    return builder.build()


class TestViewInvariants:
    @given(programs)
    @settings(max_examples=80, deadline=None)
    def test_thread_views_partition_trace(self, program):
        trace = build_trace(program)
        web = ViewWeb(trace)
        covered = sorted(
            index for view in web.views_of_type(ViewType.THREAD)
            for index in view.indices)
        assert covered == list(range(len(trace)))

    @given(programs)
    @settings(max_examples=80, deadline=None)
    def test_method_views_partition_trace(self, program):
        trace = build_trace(program)
        web = ViewWeb(trace)
        covered = sorted(
            index for view in web.views_of_type(ViewType.METHOD)
            for index in view.indices)
        assert covered == list(range(len(trace)))

    @given(programs)
    @settings(max_examples=80, deadline=None)
    def test_view_membership_consistent_with_mappings(self, program):
        trace = build_trace(program)
        web = ViewWeb(trace)
        for entry in trace:
            for name in view_names(entry):
                view = web.view(name)
                assert view is not None
                assert view.position_of(entry.eid) >= 0

    @given(programs)
    @settings(max_examples=80, deadline=None)
    def test_view_indices_sorted(self, program):
        web = ViewWeb(build_trace(program))
        for view in web.all_views():
            assert list(view.indices) == sorted(view.indices)


class TestDiffProperties:
    @given(programs, programs)
    @settings(max_examples=60, deadline=None)
    def test_view_diff_partition(self, left_ops, right_ops):
        left = build_trace(left_ops, "L")
        right = build_trace(right_ops, "R")
        result = view_diff(left, right)
        assert len(result.similar_left) + len(result.left_diff_eids()) \
            == len(left)
        assert len(result.similar_right) + len(result.right_diff_eids()) \
            == len(right)
        for l_eid, r_eid in result.match_pairs:
            assert left.entries[l_eid].key() == right.entries[r_eid].key()

    @given(programs, programs)
    @settings(max_examples=60, deadline=None)
    def test_views_never_below_lcs_similarity_minus_slack(self, left_ops,
                                                          right_ops):
        # The views differ may differ from exact LCS but both mark only
        # genuinely equal entries; sanity: neither exceeds trace bounds.
        left = build_trace(left_ops, "L")
        right = build_trace(right_ops, "R")
        views = view_diff(left, right)
        lcs = lcs_diff(left, right)
        assert 0 <= views.num_similar() <= len(left) + len(right)
        assert 0 <= lcs.num_similar() <= len(left) + len(right)

    @given(programs)
    @settings(max_examples=40, deadline=None)
    def test_sequences_cover_all_differences(self, program):
        left = build_trace(program, "L")
        right = build_trace(list(reversed(program)), "R")
        result = view_diff(left, right)
        in_sequences = sum(s.size() for s in result.sequences)
        assert in_sequences == result.num_diffs()


class TestSerializationProperties:
    @given(programs)
    @settings(max_examples=60, deadline=None)
    def test_entry_round_trip(self, program):
        trace = build_trace(program)
        for entry in trace:
            reborn = entry_from_json(entry_to_json(entry))
            assert reborn.key() == entry.key()
            assert reborn.method == entry.method
            assert reborn.tid == entry.tid


class TestRegressionAlgebraProperties:
    @given(programs, programs)
    @settings(max_examples=40, deadline=None)
    def test_d_bounded_by_a(self, left_ops, right_ops):
        left = build_trace(left_ops, "L")
        right = build_trace(right_ops, "R")
        suspected = view_diff(left, right)
        report = analyze_regression(suspected)
        assert report.size_d <= report.size_a

    @given(programs, programs)
    @settings(max_examples=40, deadline=None)
    def test_subtracting_self_empties_d(self, left_ops, right_ops):
        left = build_trace(left_ops, "L")
        right = build_trace(right_ops, "R")
        suspected = view_diff(left, right)
        # B == A: every difference is "expected" -> D is empty.
        report = analyze_regression(suspected, expected=suspected)
        assert report.size_d == 0
