"""Tests for the parallel scenario pipeline."""

import pytest

from repro.api import (ScenarioJob, ScenarioPipeline, Session,
                       StoredScenarioJob, run_pipeline)
from repro.capture.filters import TraceFilter

from helpers import myfaces_trace

MODULE_FILTER = TraceFilter(include_modules=(__name__,))


def old_version(values):
    total = 0
    for value in values:
        total = accumulate(total, value)
    return total


def new_version(values):
    total = 0
    for value in values:
        total = accumulate(total, value)
        total = accumulate(total, 1)  # BUG
    return total


def accumulate(total, value):
    return total + value


def exploding_version(values):
    raise RuntimeError("workload blew up")


def _live_job(name, **overrides):
    spec = dict(name=name, old_version=old_version,
                new_version=new_version, regressing_input=[1, 2],
                correct_input=[0], filter=MODULE_FILTER)
    spec.update(overrides)
    return ScenarioJob(**spec)


@pytest.fixture()
def stored_session(tmp_path):
    session = Session().with_store(tmp_path / "store")
    session.ingest(myfaces_trace(min_range=32, name="ob"), store_as="ob")
    session.ingest(myfaces_trace(min_range=1, new_version=True,
                                 name="nb"), store_as="nb")
    session.ingest(myfaces_trace(min_range=32, name="oo"), store_as="oo")
    session.ingest(myfaces_trace(min_range=32, new_version=True,
                                 name="no"), store_as="no")
    return session


def _stored_job(name, **overrides):
    spec = dict(name=name, suspected=("ob", "nb"),
                expected=("oo", "no"), regression=("no", "nb"))
    spec.update(overrides)
    return StoredScenarioJob(**spec)


class TestLiveJobs:
    def test_batch_runs_all(self):
        result = run_pipeline([_live_job("a"), _live_job("b")],
                              max_workers=2)
        assert len(result) == 2
        assert not result.failed()
        assert result.workers == 2
        for outcome in result:
            assert outcome.result.suspected.num_diffs() > 0
            assert outcome.seconds > 0
        assert result.total_compares() > 0

    def test_failure_is_isolated(self):
        jobs = [_live_job("good"),
                _live_job("bad", old_version=exploding_version,
                          correct_input=None)]
        result = run_pipeline(jobs, max_workers=2)
        assert [o.name for o in result.succeeded()] == ["good", "bad"]
        # Capture tolerates workload exceptions: the trace of the failing
        # run is still analysable (the paper's Derby case aborts too).
        assert result["bad"].ok

    def test_engine_failure_reported_not_raised(self, stored_session):
        jobs = [_stored_job("ok"),
                _stored_job("broken", suspected=("ob", "missing"))]
        result = run_pipeline(jobs, session=stored_session, max_workers=2)
        assert result["ok"].ok
        assert not result["broken"].ok
        assert "missing" in result["broken"].error
        assert "FAILED" in result["broken"].brief()
        assert "1/2" in result.render()

    def test_sequential_path(self):
        result = run_pipeline([_live_job("only")], max_workers=1)
        assert result.workers == 1
        assert result["only"].ok


class TestStoredJobs:
    def test_batch_over_store(self, stored_session):
        jobs = [_stored_job(f"j{i}") for i in range(4)]
        result = ScenarioPipeline(stored_session, max_workers=4).run(jobs)
        assert len(result.succeeded()) == 4
        sizes = {o.result.report.set_sizes()["D"] for o in result}
        assert len(sizes) == 1  # same scenario -> same answer on every job

    def test_per_job_engine_override(self, stored_session):
        result = run_pipeline(
            [_stored_job("v"), _stored_job("l", engine="optimized")],
            session=stored_session, max_workers=2)
        assert result["v"].result.engine == "views"
        assert result["l"].result.engine == "optimized"
        assert result["v"].result.suspected.algorithm == "views"
        assert result["l"].result.suspected.algorithm == "lcs-optimized"

    def test_parallel_equals_sequential(self, stored_session):
        jobs = [_stored_job(f"j{i}") for i in range(3)]
        seq = run_pipeline(jobs, session=stored_session, max_workers=1)
        par = run_pipeline(jobs, session=stored_session, max_workers=3)
        for s, p in zip(seq, par):
            assert (s.result.report.set_sizes()
                    == p.result.report.set_sizes())

    def test_unknown_job_name(self, stored_session):
        result = run_pipeline([_stored_job("x")], session=stored_session)
        with pytest.raises(KeyError):
            result["absent"]


class TestConcurrentCapture:
    def test_many_live_jobs_in_parallel(self):
        # The capture lock serialises tracing: eight concurrent live
        # scenarios must neither deadlock nor corrupt each other.
        jobs = [_live_job(f"job-{i}") for i in range(8)]
        result = run_pipeline(jobs, max_workers=4)
        assert len(result.succeeded()) == 8
        baseline = result["job-0"].result.report.set_sizes()
        for outcome in result:
            assert outcome.result.report.set_sizes() == baseline

    def test_no_foreign_forks_in_parallel_captures(self):
        # Pool workers are pre-spawned before jobs run; a lazily-spawned
        # worker thread would otherwise be recorded as a fork event
        # inside whichever capture held the weaver at that moment.
        jobs = [_live_job(f"job-{i}") for i in range(6)]
        result = run_pipeline(jobs, max_workers=3)
        for outcome in result:
            for trace in outcome.result.traces.values():
                assert "fork" not in trace.event_kinds()

    def test_capture_lock_is_reentrant(self):
        from repro.api.session import CAPTURE_LOCK
        with CAPTURE_LOCK:
            acquired = CAPTURE_LOCK.acquire(timeout=0.1)
            assert acquired
            CAPTURE_LOCK.release()

    def test_default_worker_count_bounded(self):
        pipeline = ScenarioPipeline()
        assert pipeline._workers_for([None] * 100) <= 8
        assert pipeline._workers_for([]) == 1


class TestWorkerVisibility:
    def test_brief_surfaces_wall_time_and_worker(self):
        result = run_pipeline([_live_job("only")], max_workers=1)
        brief = result["only"].brief()
        assert result["only"].worker
        assert result["only"].worker in brief
        assert f"{result['only'].seconds:.3f}s" in brief
        assert "capture=thread:" in brief

    def test_failed_brief_surfaces_wall_time_and_worker(self,
                                                        stored_session):
        result = run_pipeline(
            [_stored_job("broken", suspected=("ob", "missing"))],
            session=stored_session)
        brief = result["broken"].brief()
        assert "FAILED" in brief
        assert result["broken"].worker in brief
        assert "s on " in brief

    def test_render_includes_per_job_workers(self):
        jobs = [_live_job(f"job-{i}") for i in range(3)]
        result = run_pipeline(jobs, max_workers=3)
        rendered = result.render()
        for outcome in result:
            assert outcome.worker in rendered

    def test_pipeline_executor_reaches_job_sessions(self):
        # The executor spec on the pipeline derives into job sessions;
        # with the in-process default nothing else changes.
        pipeline = ScenarioPipeline(executor="serial")
        assert pipeline.session.executor.name == "serial"
        result = pipeline.run([_live_job("one")])
        assert result["one"].ok
