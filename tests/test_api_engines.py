"""Tests for the pluggable diff-engine registry."""

import pytest

from repro.api.engines import (DiffEngine, LcsEngine, ViewsEngine,
                               available_engines, get_engine,
                               register_engine, unregister_engine)
from repro.core.lcs import OpCounter
from repro.core.lcs_diff import ALGORITHMS, lcs_diff
from repro.core.view_diff import ViewDiffConfig, view_diff

from helpers import myfaces_trace


@pytest.fixture()
def trace_pair():
    return (myfaces_trace(min_range=32, name="old"),
            myfaces_trace(min_range=1, new_version=True, name="new"))


class TestRegistry:
    def test_views_plus_every_lcs_baseline(self):
        names = available_engines()
        assert names[0] == "views"
        for algorithm in ALGORITHMS:
            assert algorithm in names

    def test_unknown_engine(self):
        with pytest.raises(KeyError, match="available"):
            get_engine("nope")

    def test_instance_passthrough(self):
        engine = ViewsEngine()
        assert get_engine(engine) is engine

    def test_non_engine_rejected(self):
        with pytest.raises(TypeError):
            get_engine(42)

    def test_nameless_instance_rejected(self):
        class Nameless:
            def diff(self, left, right, **kwargs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(TypeError):
            get_engine(Nameless())

    def test_register_custom_engine(self, trace_pair):
        class Constant:
            name = "constant"

            def diff(self, left, right, *, config=None, counter=None,
                     budget=None):
                return view_diff(left, right, config=config,
                                 counter=counter)

        register_engine(Constant())
        try:
            assert "constant" in available_engines()
            result = get_engine("constant").diff(*trace_pair)
            assert result.num_diffs() > 0
        finally:
            unregister_engine("constant")
        assert "constant" not in available_engines()

    def test_duplicate_requires_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine(ViewsEngine())
        register_engine(ViewsEngine(), replace=True)  # restores built-in

    def test_nameless_engine_rejected(self):
        class Nameless:
            def diff(self, left, right, **kwargs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="name"):
            register_engine(Nameless())

    def test_diffless_engine_rejected(self):
        class NoDiff:
            name = "nodiff"

        with pytest.raises(ValueError, match="diff"):
            register_engine(NoDiff())

    def test_protocol_runtime_check(self):
        assert isinstance(ViewsEngine(), DiffEngine)
        assert isinstance(LcsEngine("dp"), DiffEngine)


class TestBuiltinEngines:
    def test_views_engine_matches_view_diff(self, trace_pair):
        left, right = trace_pair
        config = ViewDiffConfig(window=6)
        via_engine = get_engine("views").diff(left, right, config=config)
        direct = view_diff(left, right, config=config)
        assert via_engine.similar_left == direct.similar_left
        assert via_engine.similar_right == direct.similar_right

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_lcs_engines_match_lcs_diff(self, trace_pair, algorithm):
        left, right = trace_pair
        via_engine = get_engine(algorithm).diff(left, right)
        direct = lcs_diff(left, right, algorithm=algorithm)
        assert via_engine.num_diffs() == direct.num_diffs()
        assert via_engine.algorithm == f"lcs-{algorithm}"

    def test_counter_threads_through(self, trace_pair):
        counter = OpCounter()
        get_engine("views").diff(*trace_pair, counter=counter)
        assert counter.total > 0

    def test_lcs_engine_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            LcsEngine("bogus")
