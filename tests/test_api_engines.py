"""Tests for the pluggable diff-engine registry."""

import pytest

from repro.api.engines import (DiffEngine, LcsEngine, ViewsEngine,
                               available_engines, get_engine,
                               register_engine, unregister_engine)
from repro.core.lcs import OpCounter
from repro.core.lcs_diff import ALGORITHMS, lcs_diff
from repro.core.view_diff import ViewDiffConfig, view_diff

from helpers import myfaces_trace


@pytest.fixture()
def trace_pair():
    return (myfaces_trace(min_range=32, name="old"),
            myfaces_trace(min_range=1, new_version=True, name="new"))


class TestRegistry:
    def test_views_plus_every_lcs_baseline(self):
        names = available_engines()
        assert names[0] == "views"
        for algorithm in ALGORITHMS:
            assert algorithm in names

    def test_unknown_engine(self):
        with pytest.raises(KeyError, match="available"):
            get_engine("nope")

    def test_instance_passthrough(self):
        engine = ViewsEngine()
        assert get_engine(engine) is engine

    def test_non_engine_rejected(self):
        with pytest.raises(TypeError):
            get_engine(42)

    def test_nameless_instance_rejected(self):
        class Nameless:
            def diff(self, left, right, **kwargs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(TypeError):
            get_engine(Nameless())

    def test_register_custom_engine(self, trace_pair):
        class Constant:
            name = "constant"

            def diff(self, left, right, *, config=None, counter=None,
                     budget=None):
                return view_diff(left, right, config=config,
                                 counter=counter)

        register_engine(Constant())
        try:
            assert "constant" in available_engines()
            result = get_engine("constant").diff(*trace_pair)
            assert result.num_diffs() > 0
        finally:
            unregister_engine("constant")
        assert "constant" not in available_engines()

    def test_duplicate_requires_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine(ViewsEngine())
        register_engine(ViewsEngine(), replace=True)  # restores built-in

    def test_nameless_engine_rejected(self):
        class Nameless:
            def diff(self, left, right, **kwargs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="name"):
            register_engine(Nameless())

    def test_diffless_engine_rejected(self):
        class NoDiff:
            name = "nodiff"

        with pytest.raises(ValueError, match="diff"):
            register_engine(NoDiff())

    def test_protocol_runtime_check(self):
        assert isinstance(ViewsEngine(), DiffEngine)
        assert isinstance(LcsEngine("dp"), DiffEngine)


class TestBuiltinEngines:
    def test_views_engine_matches_view_diff(self, trace_pair):
        left, right = trace_pair
        config = ViewDiffConfig(window=6)
        via_engine = get_engine("views").diff(left, right, config=config)
        direct = view_diff(left, right, config=config)
        assert via_engine.similar_left == direct.similar_left
        assert via_engine.similar_right == direct.similar_right

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_lcs_engines_match_lcs_diff(self, trace_pair, algorithm):
        left, right = trace_pair
        via_engine = get_engine(algorithm).diff(left, right)
        direct = lcs_diff(left, right, algorithm=algorithm)
        assert via_engine.num_diffs() == direct.num_diffs()
        assert via_engine.algorithm == f"lcs-{algorithm}"

    def test_counter_threads_through(self, trace_pair):
        counter = OpCounter()
        get_engine("views").diff(*trace_pair, counter=counter)
        assert counter.total > 0

    def test_lcs_engine_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            LcsEngine("bogus")


class TestKeyTablePlumbing:
    def test_accepts_key_table_detection(self):
        from repro.api.engines import accepts_key_table

        class Legacy:
            name = "legacy"

            def diff(self, left, right, *, config=None, counter=None,
                     budget=None):  # pragma: no cover - signature only
                raise NotImplementedError

        class VarKw:
            name = "varkw"

            def diff(self, left, right, **kwargs):  # pragma: no cover
                raise NotImplementedError

        assert not accepts_key_table(Legacy())
        assert accepts_key_table(VarKw())
        assert accepts_key_table(ViewsEngine())
        assert accepts_key_table(LcsEngine("dp"))

    def test_session_feeds_legacy_engine_without_key_table(self, trace_pair):
        from repro.api.session import Session

        seen = {}

        class Legacy:
            name = "legacy-probe"

            def diff(self, left, right, *, config=None, counter=None,
                     budget=None):
                seen["kwargs"] = True
                return view_diff(left, right, config=config,
                                 counter=counter)

        result = Session(engine=Legacy()).diff(*trace_pair)
        assert seen["kwargs"] and result.num_diffs() > 0

    def test_session_shares_pair_table(self, trace_pair):
        from repro.api.session import Session
        from repro.core.keytable import KeyTable

        captured = {}

        class Probe:
            name = "table-probe"

            def diff(self, left, right, *, config=None, counter=None,
                     budget=None, key_table=None):
                captured["table"] = key_table
                return view_diff(left, right, config=config,
                                 counter=counter, key_table=key_table)

        session = Session(engine=Probe())
        session.diff(*trace_pair)
        assert isinstance(captured["table"], KeyTable)
        session.with_config(interned=False)
        captured.clear()
        session.diff(*trace_pair)
        assert captured["table"] is None

    def test_interned_toggle_preserves_results(self, trace_pair):
        old, new = trace_pair
        for engine in ("views", *ALGORITHMS):
            tupled = get_engine(engine).diff(
                old, new, config=ViewDiffConfig(interned=False),
                counter=OpCounter())
            interned = get_engine(engine).diff(
                old, new, config=ViewDiffConfig(interned=True),
                counter=OpCounter())
            assert tupled.similar_left == interned.similar_left
            assert tupled.similar_right == interned.similar_right

    def test_session_capture_interns_at_ingest(self):
        from repro.api.session import Session

        def workload(payload):
            return sum(range(payload))

        session = Session()
        trace = session.trace_call(workload, 5, name="w")
        assert trace.key_table is session.key_table
        assert trace.key_ids is not None
        assert len(trace.key_ids) == len(trace)

    def test_derived_session_shares_key_table(self):
        from repro.api.session import Session

        base = Session()
        derived = base.derive(engine="dp")
        assert derived.key_table is base.key_table
