"""Tests for the regression-injection framework."""

import pytest

from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.workloads.bugs import (BugRegistry, BugSpec,
                                  ROOT_CAUSE_DISTRIBUTION, cause_any,
                                  cause_by_method, cause_by_value)


def spec(bug_id="B1", category="typo"):
    return BugSpec(bug_id=bug_id, category=category, description="d",
                   failing_input="f", passing_input="p")


def sample_entries():
    builder = TraceBuilder()
    tid = builder.main_tid
    obj = builder.record_init(tid, "A", (prim(42),))
    builder.record_call(tid, obj, "A.compute", (prim(7),))
    builder.record_set(tid, obj, "x", prim(99))
    builder.record_return(tid, prim(7))
    return builder.build().entries


class TestDistribution:
    def test_weights_sum_to_one(self):
        assert abs(sum(ROOT_CAUSE_DISTRIBUTION.values()) - 1.0) < 0.01

    def test_paper_values(self):
        assert ROOT_CAUSE_DISTRIBUTION["missing-feature"] == 0.264
        assert ROOT_CAUSE_DISTRIBUTION["typo"] == 0.242


class TestBugSpec:
    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            spec(category="cosmic-rays")

    def test_valid_categories_accepted(self):
        for category in ROOT_CAUSE_DISTRIBUTION:
            assert spec(category=category).category == category


class TestRegistry:
    def test_register_get_ids(self):
        registry = BugRegistry("w")
        registry.register(spec("B1"))
        registry.register(spec("B2", category="boundary"))
        assert registry.ids() == ["B1", "B2"]
        assert registry.get("B1").bug_id == "B1"

    def test_duplicate_rejected(self):
        registry = BugRegistry("w")
        registry.register(spec("B1"))
        with pytest.raises(ValueError):
            registry.register(spec("B1"))

    def test_unknown_bug(self):
        with pytest.raises(KeyError):
            BugRegistry("w").get("nope")

    def test_category_mix(self):
        registry = BugRegistry("w")
        registry.register(spec("B1", "typo"))
        registry.register(spec("B2", "typo"))
        registry.register(spec("B3", "boundary"))
        mix = registry.category_mix()
        assert mix["typo"] == pytest.approx(2 / 3)

    def test_empty_mix(self):
        assert BugRegistry("w").category_mix() == {}


class TestCausePredicates:
    def test_cause_by_value_matches_args_and_values(self):
        entries = sample_entries()
        predicate = cause_by_value(7)
        assert any(predicate(e) for e in entries)
        assert not any(cause_by_value(123456)(e) for e in entries)

    def test_cause_by_method_matches_context_and_event(self):
        entries = sample_entries()
        predicate = cause_by_method("A.compute")
        assert any(predicate(e) for e in entries)
        assert not any(cause_by_method("B.other")(e) for e in entries)

    def test_cause_any(self):
        entries = sample_entries()
        predicate = cause_any(cause_by_value(123456),
                              cause_by_method("A.compute"))
        assert any(predicate(e) for e in entries)
