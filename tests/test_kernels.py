"""The kernels subsystem: backend registry, selection rules, engine
wiring, cache-key neutrality, and the CLI surface.

Bit-identity of the kernels themselves is property-tested in
``test_lcs_agreement.py``; this module covers everything around them —
how a backend is chosen (``REPRO_KERNEL``, ``ViewDiffConfig.kernel``,
auto-detection, the numpy-absent fallback), how the ``bitparallel``
algorithm and the ``anchored:*`` default inner are registered, and the
promise that the ``kernel`` knob never fragments cache keys.
"""

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.serialize import save_trace
from repro.api.engines import (DEFAULT_GAP_INNER, AnchoredEngine,
                               available_engines, get_engine)
from repro.cache.diffcache import canonical_config
from repro.core import kernels
from repro.core.diffs import result_identity
from repro.core.kernels import (Backend, available_backends,
                                default_backend_name, get_backend)
from repro.core.lcs import OpCounter
from repro.core.view_diff import ViewDiffConfig, view_diff

from helpers import myfaces_trace, simple_trace


class TestBackendRegistry:
    def test_scalar_and_stdlib_always_available(self):
        names = available_backends()
        assert "scalar" in names
        assert "stdlib" in names

    def test_numpy_listed_iff_importable(self):
        try:
            import numpy  # noqa: F401
            importable = True
        except ImportError:
            importable = False
        assert ("numpy" in available_backends()) == importable

    def test_get_backend_resolves_names(self):
        for name in available_backends():
            backend = get_backend(name)
            assert isinstance(backend, Backend)
            assert backend.name == name

    def test_backend_instances_pass_through(self):
        backend = get_backend("stdlib")
        assert get_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            get_backend("cuda")

    def test_none_and_auto_select_the_default(self):
        default = default_backend_name()
        assert get_backend(None).name == default
        assert get_backend("auto").name == default


class TestDefaultSelection:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "scalar")
        assert default_backend_name() == "scalar"
        assert get_backend(None).name == "scalar"

    def test_env_auto_is_autodetect(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "auto")
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        expected = "numpy" if kernels.NUMPY is not None else "stdlib"
        assert default_backend_name() == expected

    def test_env_unknown_raises(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "gpu")
        with pytest.raises(ValueError):
            default_backend_name()

    def test_numpy_absent_degrades_to_stdlib(self, monkeypatch):
        # Simulate an interpreter without numpy: requesting "numpy"
        # must silently fall back (configs stay portable), and the
        # auto default must become stdlib.
        monkeypatch.setattr(kernels, "NUMPY", None)
        assert get_backend("numpy").name == "stdlib"
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        assert default_backend_name() == "stdlib"
        assert "numpy" not in available_backends()
        monkeypatch.setenv(kernels.KERNEL_ENV, "numpy")
        assert default_backend_name() == "stdlib"


class TestEngineWiring:
    def test_bitparallel_algorithm_registered(self):
        assert "bitparallel" in available_engines()
        assert "anchored:bitparallel" in available_engines()
        assert get_engine("bitparallel").name == "bitparallel"

    def test_anchored_default_inner_is_bitparallel(self):
        assert DEFAULT_GAP_INNER == "bitparallel"
        assert AnchoredEngine().name == "anchored:bitparallel"

    def test_anchored_segment_diff_default_inner(self):
        from repro.exec.diffing import anchored_segment_diff
        left = simple_trace([1, 2, 3, 9, 4, 5, 6], name="old")
        right = simple_trace([1, 2, 3, 8, 8, 4, 5, 6], name="new")
        defaulted = anchored_segment_diff(left, right)
        explicit = anchored_segment_diff(left, right,
                                         get_engine(DEFAULT_GAP_INNER))
        assert result_identity(defaulted) == result_identity(explicit)

    def test_bitparallel_engine_matches_hirschberg(self):
        left = myfaces_trace(min_range=32, name="old")
        right = myfaces_trace(min_range=1, new_version=True, name="new")
        results = {}
        for name in ("bitparallel", "hirschberg"):
            counter = OpCounter()
            result = get_engine(name).diff(left, right, counter=counter)
            results[name] = (result.similar_left, result.similar_right,
                             len(result.match_pairs), counter.compares,
                             counter.charged)
        assert results["bitparallel"] == results["hirschberg"]


class TestKernelNeutrality:
    def test_kernel_not_part_of_cache_key(self):
        base = canonical_config(ViewDiffConfig())
        assert canonical_config(ViewDiffConfig(kernel="stdlib")) == base
        assert canonical_config(ViewDiffConfig(kernel="scalar")) == base
        assert canonical_config(None) == base
        assert "kernel" not in json.loads(base)

    def test_view_diff_bit_identical_across_kernels(self):
        left = myfaces_trace(min_range=32, name="old")
        right = myfaces_trace(min_range=1, new_version=True, name="new")
        signatures = set()
        for name in available_backends():
            counter = OpCounter()
            result = view_diff(left, right, counter=counter,
                               config=ViewDiffConfig(kernel=name))
            signatures.add((result_identity(result), counter.compares,
                            counter.charged))
        assert len(signatures) == 1


class TestCli:
    @pytest.fixture()
    def trace_files(self, tmp_path):
        old = myfaces_trace(min_range=32, name="old")
        new = myfaces_trace(min_range=1, new_version=True, name="new")
        old_path = tmp_path / "old.jsonl"
        new_path = tmp_path / "new.jsonl"
        save_trace(old, old_path)
        save_trace(new, new_path)
        return str(old_path), str(new_path)

    def test_engines_lists_kernel_backends(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "kernel backends" in out
        assert f"{default_backend_name()}*" in out
        for name in available_backends():
            assert name in out

    def test_diff_accepts_kernel_config(self, trace_files, capsys):
        old_path, new_path = trace_files
        status = main(["diff", old_path, new_path,
                       "--config", "kernel=stdlib"])
        out = capsys.readouterr().out
        assert status == 1  # differences found
        assert "semantic diff" in out

    def test_diff_rejects_unknown_kernel(self, trace_files, capsys):
        old_path, new_path = trace_files
        with pytest.raises(SystemExit):
            main(["diff", old_path, new_path, "--config", "kernel=gpu"])

    def test_kernel_none_means_auto(self):
        from repro.analysis.cli import parse_config_flags
        config = parse_config_flags(["kernel=none"])
        assert config.kernel is None
