"""Tests for the core language's static semantics."""

import pytest

from repro.lang.parser import parse_program
from repro.lang.typecheck import TypeCheckError, check_program


def check(source: str) -> None:
    check_program(parse_program(source))


def rejects(source: str, fragment: str = "") -> None:
    with pytest.raises(TypeCheckError) as info:
        check(source)
    if fragment:
        assert fragment in str(info.value)


class TestClassTable:
    def test_well_formed_accepted(self):
        check("""
            class A { Int x; Int getX() { return this.x; } }
            class B extends A { Str name; }
            thread { new B(1, 'b').getX(); }
        """)

    def test_unknown_superclass(self):
        rejects("class A extends Ghost { } thread { }", "unknown class")

    def test_cyclic_hierarchy(self):
        rejects("""
            class A extends B { }
            class B extends A { }
            thread { }
        """, "cyclic")

    def test_reserved_class_name(self):
        rejects("class Int { } thread { }", "reserved")

    def test_field_shadowing(self):
        rejects("""
            class A { Int x; }
            class B extends A { Str x; }
            thread { }
        """, "shadowed")

    def test_duplicate_field(self):
        rejects("class A { Int x; Int x; } thread { }", "shadowed")

    def test_unknown_field_type(self):
        rejects("class A { Ghost g; } thread { }", "unknown type")

    def test_incompatible_override(self):
        rejects("""
            class A { Int m(Int x) { return x; } }
            class B extends A { Str m(Int x) { return 'no'; } }
            thread { }
        """, "incompatible")

    def test_compatible_override_accepted(self):
        check("""
            class A { Int m(Int x) { return x; } }
            class B extends A { Int m(Int x) { return x.add(1); } }
            thread { }
        """)


class TestExpressions:
    def test_literals(self):
        check("thread { 1; 2.5; 'x'; true; null; unit; }")

    def test_unbound_variable(self):
        rejects("thread { ghost; }", "unbound")

    def test_var_decl_infers(self):
        check("thread { var x = 1; x.add(2); }")

    def test_local_reassignment_type_checked(self):
        rejects("thread { var x = 1; x = 'str'; }", "expected Int")

    def test_int_widens_to_float(self):
        check("""
            class Box { Float v; }
            thread { new Box(1); }
        """)

    def test_constructor_arity(self):
        rejects("class A { Int x; } thread { new A(); }", "expects 1")

    def test_constructor_argument_type(self):
        rejects("class A { Int x; } thread { new A('s'); }",
                "expected Int")

    def test_null_inhabits_reference_types(self):
        check("""
            class Inner { }
            class Outer { Inner inner; }
            thread { new Outer(null); }
        """)

    def test_null_not_primitive(self):
        rejects("class A { Int x; } thread { new A(null); }",
                "expected Int")


class TestFieldsAndMethods:
    SOURCE = """
        class Point {
            Int x;
            Int y;
            Int getX() { return this.x; }
            Unit setX(Int v) { this.x = v; return unit; }
        }
        thread { %BODY% }
    """

    def body(self, text: str) -> str:
        return self.SOURCE.replace("%BODY%", text)

    def test_field_read_and_write(self):
        check(self.body("var p = new Point(1, 2); p.x; p.x = 3;"))

    def test_unknown_field(self):
        rejects(self.body("new Point(1, 2).z;"), "unknown field")

    def test_field_assignment_type(self):
        rejects(self.body("new Point(1, 2).x = 'no';"), "expected Int")

    def test_method_call_types(self):
        check(self.body("new Point(1, 2).setX(9);"))

    def test_method_arity(self):
        rejects(self.body("new Point(1, 2).setX();"), "expects 1")

    def test_method_argument_type(self):
        rejects(self.body("new Point(1, 2).setX(true);"), "expected Int")

    def test_unknown_method(self):
        rejects(self.body("new Point(1, 2).warp();"), "not found")

    def test_return_type_checked(self):
        rejects("""
            class A { Int m() { return 'str'; } }
            thread { }
        """, "expected Int")

    def test_field_access_on_primitive(self):
        rejects("thread { var x = 1; x.y; }", "primitive")

    def test_inherited_method_visible(self):
        check("""
            class A { Int m() { return 1; } }
            class B extends A { }
            thread { new B().m(); }
        """)


class TestBuiltins:
    def test_arithmetic(self):
        check("thread { 1.add(2).mul(3); }")

    def test_comparison_result_is_bool(self):
        check("thread { if (1.lt(2)) { 3; } }")

    def test_string_ops(self):
        check("thread { 'ab'.concat('cd').len(); }")

    def test_wrong_builtin_arg(self):
        rejects("thread { 1.add('x'); }", "expected Int")

    def test_unknown_builtin(self):
        rejects("thread { 1.frobnicate(); }", "unknown built-in")

    def test_bool_ops(self):
        check("thread { true.and_(false).or_(true).not_(); }")


class TestControlFlowAndThreads:
    def test_condition_must_be_bool(self):
        rejects("thread { if (1) { 2; } }", "expected Bool")
        rejects("thread { while ('x') { 2; } }", "expected Bool")

    def test_spawn_body_checked(self):
        rejects("thread { spawn { ghost; } }", "unbound")

    def test_spawn_sees_outer_locals(self):
        check("thread { var x = 1; spawn { x.add(1); } }")

    def test_this_at_top_level(self):
        rejects("thread { this; }", "outside")

    def test_branch_scopes_isolated(self):
        rejects("""
            thread {
                if (true) { var y = 1; }
                y;
            }
        """, "unbound")


class TestDynamicAgreement:
    """Programs accepted by the checker also run without dynamic type
    errors (on these cases)."""

    CASES = [
        """
        class Counter {
            Int n;
            Unit bump() { this.n = this.n.add(1); return unit; }
        }
        thread {
            var c = new Counter(0);
            var i = 0;
            while (i.lt(3)) { c.bump(); i = i.add(1); }
        }
        """,
        """
        class A { Str who() { return 'A'; } }
        class B extends A { Str who() { return 'B'; } }
        thread { new B().who().concat('!'); }
        """,
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_checked_programs_run(self, source):
        from repro.lang import run_source
        check(source)
        trace = run_source(source)
        assert len(trace) > 0


class TestStrictMode:
    """``check_program(strict=True)`` closes the branch-scoping gap:
    the plain checker types each branch against a *copy* of the
    environment, so a nested ``var`` redeclaration that changes a
    local's type slips through and crashes at runtime."""

    SHADOW_TYPE_LEAK = """
        thread {
            var x = 1;
            if (true) { var x = 'oops'; }
            var y = x.add(1);
        }
    """

    def test_plain_accepts_the_leak(self):
        # Regression pin: the interpreter's function-scoped locals let
        # the branch's Str leak out, so this program fails dynamically
        # even though the plain checker accepts it.
        check(self.SHADOW_TYPE_LEAK)
        from repro.lang import run_source
        with pytest.raises(Exception, match="Str"):
            run_source(self.SHADOW_TYPE_LEAK)

    def test_strict_rejects_the_leak(self):
        with pytest.raises(TypeCheckError, match="redeclare-conflict"):
            check_program(parse_program(self.SHADOW_TYPE_LEAK),
                          strict=True)

    def test_strict_accepts_same_type_redeclaration(self):
        check_program(parse_program("""
            thread {
                var x = 1;
                if (true) { var x = 2; }
                var y = x.add(1);
            }
        """), strict=True)

    def test_strict_accepts_all_bundled_scenarios(self):
        from repro.static.scenarios import all_programs
        for label, program in all_programs().items():
            check_program(program, strict=True)
