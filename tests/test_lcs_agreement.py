"""Cross-algorithm LCS agreement over interned-id sequences.

All the baselines must agree on the LCS *length* whenever they are
exact: ``lcs_dp`` is the reference; ``lcs_hirschberg`` is exact by
construction, ``myers_lcs_length`` computes the length directly, and
``lcs_fast`` / ``lcs_optimized`` are exact whenever their recursion
bottoms out in DP cores (always true at these sizes and budgets).  The
sequences are small dense ints — exactly what the interned data layer
feeds the hot loops — and the edge cases cover trimming overlap and the
budget/cap failure modes.

Since the kernels subsystem, the suite is also the bit-identity oracle
for the accelerated backends: every registered ``lcs_diff`` algorithm
(including ``bitparallel``) must return the same pairs and charge the
same compare counts under every kernel backend (``scalar``, the
bit-vector ``stdlib`` backend, and ``numpy`` when importable) — speed
must never change the paper's reported metrics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import available_backends
from repro.core.lcs import (LcsBudgetExceeded, LcsMemoryError, MemoryBudget,
                            OpCounter, lcs_bitparallel, lcs_dp, lcs_fast,
                            lcs_hirschberg, lcs_length, lcs_optimized,
                            myers_lcs_length, trim_common)
from repro.core.lcs_diff import ALGORITHMS

#: Every registered ``lcs_diff`` algorithm as a key-sequence function.
ALGO_FUNCS = {
    "dp": lcs_dp,
    "hirschberg": lcs_hirschberg,
    "fast": lcs_fast,
    "optimized": lcs_optimized,
    "bitparallel": lcs_bitparallel,
}

#: Both kernel backends (plus the scalar reference); ``numpy`` only
#: appears when importable — absent numpy must not fail the suite.
BACKENDS = available_backends()

# Interned-id sequences: small alphabets force repeats (the interesting
# LCS structure), larger ones exercise the unique-anchor path.
ids = st.lists(st.integers(0, 6), max_size=40)
wide_ids = st.lists(st.integers(0, 1000), max_size=40)


def _is_subsequence(pairs, a, b):
    last_i = last_j = -1
    for i, j in pairs:
        if not (i > last_i and j > last_j):
            return False
        if a[i] != b[j]:
            return False
        last_i, last_j = i, j
    return True


class TestAlgorithmAgreement:
    @given(ids, ids)
    @settings(max_examples=120, deadline=None)
    def test_all_exact_algorithms_agree_with_dp_length(self, a, b):
        reference = len(lcs_dp(a, b).pairs)
        assert len(lcs_hirschberg(a, b).pairs) == reference
        assert len(lcs_fast(a, b).pairs) == reference
        assert len(lcs_optimized(a, b).pairs) == reference
        assert len(lcs_bitparallel(a, b).pairs) == reference
        assert myers_lcs_length(a, b) == reference
        assert lcs_length(a, b) == reference

    @given(wide_ids, wide_ids)
    @settings(max_examples=60, deadline=None)
    def test_agreement_on_mostly_unique_ids(self, a, b):
        reference = len(lcs_dp(a, b).pairs)
        assert len(lcs_hirschberg(a, b).pairs) == reference
        assert len(lcs_fast(a, b).pairs) == reference
        assert len(lcs_bitparallel(a, b).pairs) == reference
        assert myers_lcs_length(a, b) == reference

    @given(ids, ids)
    @settings(max_examples=60, deadline=None)
    def test_every_result_is_a_common_subsequence(self, a, b):
        for algorithm in ALGO_FUNCS.values():
            assert _is_subsequence(algorithm(a, b).pairs, a, b), algorithm

    @given(ids)
    @settings(max_examples=40, deadline=None)
    def test_identical_sequences_match_fully(self, a):
        assert myers_lcs_length(a, a) == len(a)
        assert len(lcs_fast(a, a).pairs) == len(a)
        assert len(lcs_optimized(a, a).pairs) == len(a)
        assert len(lcs_bitparallel(a, a).pairs) == len(a)

    @given(st.lists(st.integers(0, 3), max_size=12),
           st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_trim_overlap_edge_cases(self, core, prefix_n, suffix_n):
        # Sequences like "aaa" vs "aa" where prefix and suffix trimming
        # regions overlap — the classic off-by-one breeding ground.
        a = [9] * prefix_n + core + [9] * suffix_n
        b = [9] * prefix_n + [9] * suffix_n
        reference = len(lcs_dp(a, b).pairs)
        assert myers_lcs_length(a, b) == reference
        assert len(lcs_fast(a, b).pairs) == reference
        assert len(lcs_optimized(a, b).pairs) == reference
        assert len(lcs_bitparallel(a, b).pairs) == reference


class TestKernelBackendAgreement:
    """Bit-identity of the accelerated kernels (the ISSUE's oracle).

    For every registered algorithm and every available backend: the
    *same* pairs (not just the same length) and the *same* compare
    accounting as the scalar reference loops — batched kernels credit
    the :class:`OpCounter` in bulk with exactly the counts the
    per-cell loops would have recorded.
    """

    def test_every_registered_algorithm_is_covered(self):
        assert set(ALGO_FUNCS) == set(ALGORITHMS)

    @pytest.mark.parametrize("algorithm", sorted(ALGO_FUNCS))
    @given(ids, ids)
    @settings(max_examples=40, deadline=None)
    def test_backends_agree_on_pairs_and_counts(self, algorithm, a, b):
        func = ALGO_FUNCS[algorithm]
        reference = None
        for backend in BACKENDS:
            counter = OpCounter()
            result = func(a, b, counter=counter, kernel=backend)
            snapshot = (result.pairs, counter.compares, counter.charged)
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference, backend

    @pytest.mark.parametrize("algorithm", sorted(ALGO_FUNCS))
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)),
                    max_size=24),
           st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)),
                    max_size=24))
    @settings(max_examples=25, deadline=None)
    def test_backends_agree_on_tuple_keys(self, algorithm, a, b):
        # ``interned=False`` feeds raw ``=e`` key tuples instead of
        # dense ids; the numpy backend must fall back bit-identically.
        func = ALGO_FUNCS[algorithm]
        reference = None
        for backend in BACKENDS:
            counter = OpCounter()
            result = func(a, b, counter=counter, kernel=backend)
            snapshot = (result.pairs, counter.compares, counter.charged)
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference, backend

    @given(ids, ids)
    @settings(max_examples=40, deadline=None)
    def test_bitparallel_is_exactly_hirschberg(self, a, b):
        c_bp, c_hi = OpCounter(), OpCounter()
        bp = lcs_bitparallel(a, b, counter=c_bp)
        hi = lcs_hirschberg(a, b, counter=c_hi)
        assert bp.pairs == hi.pairs
        assert (c_bp.compares, c_bp.charged) == (c_hi.compares,
                                                 c_hi.charged)

    @given(ids, ids)
    @settings(max_examples=40, deadline=None)
    def test_trim_common_counts_identical_across_backends(self, a, b):
        reference = None
        for backend in BACKENDS:
            counter = OpCounter()
            trimmed = trim_common(a, b, counter=counter, kernel=backend)
            snapshot = (trimmed, counter.compares, counter.charged)
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference, backend


class TestEdgeCases:
    def test_empty_sequences(self):
        for algorithm in ALGO_FUNCS.values():
            assert algorithm([], []).pairs == []
            assert algorithm([1, 2], []).pairs == []
            assert algorithm([], [1, 2]).pairs == []
        assert myers_lcs_length([], [1, 2]) == 0

    def test_disjoint_alphabets(self):
        a, b = [1, 2, 3], [4, 5, 6]
        assert len(lcs_dp(a, b).pairs) == 0
        assert myers_lcs_length(a, b) == 0
        assert len(lcs_fast(a, b).pairs) == 0

    def test_trim_common_overlap(self):
        # "aaa" vs "aa": prefix claims 2, the suffix scan must not
        # double-count the shared middle.
        prefix, a_mid, b_mid = trim_common([1, 1, 1], [1, 1])
        assert prefix + (3 - prefix - a_mid) <= 3
        assert a_mid >= 0 and b_mid >= 0
        assert len(lcs_dp([1, 1, 1], [1, 1]).pairs) == 2

    def test_fast_small_cell_limit_still_common_subsequence(self):
        # Below the DP budget the anchored differ approximates; the
        # result must still be a valid common subsequence.
        a = [i % 5 for i in range(30)]
        b = [(i * 3) % 5 for i in range(30)]
        result = lcs_fast(a, b, dp_cell_limit=4)
        assert _is_subsequence(result.pairs, a, b)

    def test_myers_budget_cap_raises(self):
        a = list(range(0, 20))
        b = list(range(100, 120))
        with pytest.raises(LcsBudgetExceeded):
            myers_lcs_length(a, b, max_d=3)

    def test_dp_memory_budget_raises(self):
        budget = MemoryBudget(max_cells=10)
        with pytest.raises(LcsMemoryError):
            lcs_dp(list(range(10)), list(range(10)), budget=budget)

    def test_optimized_budget_applies_to_trimmed_core_only(self):
        # Equal prefixes/suffixes shrink the budgeted region: a pair
        # that would blow a tiny budget untrimmed passes when only the
        # middle differs.
        budget = MemoryBudget(max_cells=16)
        a = [1, 2, 3, 4, 9, 5, 6, 7, 8]
        b = [1, 2, 3, 4, 0, 5, 6, 7, 8]
        result = lcs_optimized(a, b, budget=budget)
        assert len(result.pairs) == 8
        assert budget.peak_cells <= 16
