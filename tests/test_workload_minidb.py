"""Tests for the Derby-analogue SQL engine."""

import pytest

from repro.workloads.minidb.engine import Database, run_session
from repro.workloads.minidb.errors import (CompileError, SqlError,
                                           StorageError)
from repro.workloads.minidb.locks import LockDaemon, LockManager
from repro.workloads.minidb.planner import (OptimizingPlanner, Planner,
                                            make_planner, split_predicates)
from repro.workloads.minidb.sql import (BoolOp, Comparison, CreateTable,
                                        InSubquery, Insert, Select,
                                        parse_sql)
from repro.workloads.minidb.storage import Catalog
from repro.workloads.minidb.scenario import (CORRECT_INPUT,
                                             REGRESSING_INPUT,
                                             regression_manifests,
                                             run_new_version,
                                             run_old_version)


class TestSqlParser:
    def test_create_table(self):
        statement = parse_sql("CREATE TABLE t (a, b)")
        assert statement == CreateTable(table="t", columns=("a", "b"))

    def test_insert(self):
        statement = parse_sql("INSERT INTO t VALUES (1, 'x', -2)")
        assert statement == Insert(table="t", values=(1, "x", -2))

    def test_select_star(self):
        statement = parse_sql("SELECT * FROM t")
        assert statement.columns == ("*",)
        assert statement.where is None

    def test_select_with_comparison(self):
        statement = parse_sql("SELECT a FROM t WHERE a > 5")
        assert isinstance(statement.where, Comparison)
        assert statement.where.op == ">"

    def test_and_or_precedence(self):
        statement = parse_sql(
            "SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3")
        assert isinstance(statement.where, BoolOp)
        assert statement.where.op == "or"
        assert statement.where.left.op == "and"

    def test_in_subquery(self):
        statement = parse_sql(
            "SELECT a FROM t WHERE a IN (SELECT x FROM u WHERE x > 1)")
        assert isinstance(statement.where, InSubquery)
        assert statement.where.subquery.table == "u"

    def test_not_in(self):
        statement = parse_sql(
            "SELECT a FROM t WHERE a NOT IN (SELECT x FROM u)")
        assert statement.where.negated

    def test_syntax_errors(self):
        for bad in ("SELECT FROM t", "CREATE t", "INSERT INTO t (1)",
                    "SELECT a FROM t WHERE", "FOO BAR"):
            with pytest.raises(SqlError):
                parse_sql(bad)

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            parse_sql("INSERT INTO t VALUES ('oops)")


class TestStorage:
    def test_create_insert_scan(self):
        catalog = Catalog()
        catalog.create_table("t", ("a", "b"))
        catalog.table("t").insert((1, 2))
        assert catalog.table("t").scan() == [(1, 2)]

    def test_duplicate_table(self):
        catalog = Catalog()
        catalog.create_table("t", ("a",))
        with pytest.raises(StorageError):
            catalog.create_table("t", ("a",))

    def test_unknown_table(self):
        with pytest.raises(StorageError):
            Catalog().table("nope")

    def test_arity_checked(self):
        catalog = Catalog()
        catalog.create_table("t", ("a", "b"))
        with pytest.raises(StorageError):
            catalog.table("t").insert((1,))

    def test_unknown_column(self):
        catalog = Catalog()
        catalog.create_table("t", ("a",))
        with pytest.raises(StorageError):
            catalog.table("t").schema.column_index("z")


class TestLocks:
    def test_grant_counting(self):
        manager = LockManager()
        lock = manager.read_lock("t")
        lock.release_shared()
        manager.write_lock("t").release_exclusive()
        assert manager.total_grants() == 2

    def test_daemon_audits_per_tick(self):
        manager = LockManager()
        daemon = LockDaemon(manager)
        daemon.start()
        daemon.tick()
        daemon.tick()
        daemon.stop()
        assert daemon.audits == 2


class TestPlanner:
    def setup_method(self):
        self.database = Database("10.1.2.1")
        self.database.execute("CREATE TABLE t (a, b)")
        self.database.execute("CREATE TABLE u (x, a)")

    def test_split_predicates(self):
        statement = parse_sql("SELECT a FROM t WHERE a = 1 AND b = 2")
        assert len(split_predicates(statement.where)) == 2

    def test_factory(self):
        catalog = Catalog()
        assert isinstance(make_planner("10.1.2.1", catalog), Planner)
        assert isinstance(make_planner("10.1.3.1", catalog),
                          OptimizingPlanner)
        with pytest.raises(ValueError):
            make_planner("1.0", catalog)

    def test_old_planner_never_flattens(self):
        planner = self.database.planner
        statement = parse_sql(
            "SELECT a FROM t WHERE a IN (SELECT a FROM u WHERE x = 1)")
        plan = planner.plan(statement)
        assert "InSubquery" in plan.describe()

    def test_new_planner_flattens_unpredicated(self):
        database = Database("10.1.3.1")
        database.execute("CREATE TABLE t (a, b)")
        database.execute("CREATE TABLE u (x, y)")
        plan = database.planner.plan(parse_sql(
            "SELECT a FROM t WHERE a IN (SELECT x FROM u)"))
        assert "SemiJoin" in plan.describe()

    def test_new_planner_corner_case_raises(self):
        database = Database("10.1.3.1")
        database.execute("CREATE TABLE t (a, b)")
        database.execute("CREATE TABLE u (x, a)")
        with pytest.raises(CompileError):
            database.planner.plan(parse_sql(
                "SELECT a FROM t WHERE a IN (SELECT a FROM u WHERE x = 1)"))


class TestExecution:
    def make_database(self, version):
        database = Database(version)
        database.execute("CREATE TABLE t (a, b)")
        for a, b in [(1, 10), (2, 20), (3, 30)]:
            database.execute(f"INSERT INTO t VALUES ({a}, {b})")
        return database

    @pytest.mark.parametrize("version", ["10.1.2.1", "10.1.3.1"])
    def test_filter_and_project(self, version):
        database = self.make_database(version)
        rows = database.execute("SELECT b FROM t WHERE a >= 2")
        assert sorted(rows) == [(20,), (30,)]

    @pytest.mark.parametrize("version", ["10.1.2.1", "10.1.3.1"])
    def test_subquery_without_predicate_agrees(self, version):
        database = self.make_database(version)
        database.execute("CREATE TABLE u (x)")
        database.execute("INSERT INTO u VALUES (1)")
        database.execute("INSERT INTO u VALUES (3)")
        rows = database.execute(
            "SELECT a FROM t WHERE a IN (SELECT x FROM u)")
        assert sorted(rows) == [(1,), (3,)]

    def test_old_version_handles_predicated_shadowed_subquery(self):
        database = self.make_database("10.1.2.1")
        database.execute("CREATE TABLE u (x, a)")
        database.execute("INSERT INTO u VALUES (9, 1)")
        rows = database.execute(
            "SELECT a FROM t WHERE a IN (SELECT a FROM u WHERE x = 9)")
        assert rows == [(1,)]

    def test_not_in(self):
        database = self.make_database("10.1.2.1")
        database.execute("CREATE TABLE u (x)")
        database.execute("INSERT INTO u VALUES (1)")
        rows = database.execute(
            "SELECT a FROM t WHERE a NOT IN (SELECT x FROM u)")
        assert sorted(rows) == [(2,), (3,)]


class TestSession:
    def test_run_session_collects_results_and_errors(self):
        results = run_session("10.1.3.1",
                              ["CREATE TABLE t (a, b)",
                               "INSERT INTO t VALUES (1, 2)",
                               "CREATE TABLE u (x, a)"],
                              ["SELECT a FROM t WHERE a = 1",
                               "SELECT a FROM t WHERE a IN "
                               "(SELECT a FROM u WHERE x = 1)"])
        assert results[0] == [(1,)]
        assert isinstance(results[1], CompileError)

    def test_scenario_manifests(self):
        assert regression_manifests()

    def test_new_version_errors_on_regressing_query(self):
        outcomes = run_new_version(REGRESSING_INPUT)
        assert any(o.startswith("ERROR") for o in outcomes)
        old_outcomes = run_old_version(REGRESSING_INPUT)
        assert not any(o.startswith("ERROR") for o in old_outcomes)

    def test_versions_agree_on_correct_queries(self):
        assert run_old_version(CORRECT_INPUT) == \
            run_new_version(CORRECT_INPUT)
