"""Tests for value/object representations (repro.core.values)."""

import pytest

from repro.core.values import (ObjectRegistry, REPR_TRUNCATION, UNIT,
                               ValueRep, prim, truncate_repr)


class TestPrim:
    def test_int(self):
        rep = prim(42)
        assert rep.class_name == "Int"
        assert rep.serialization == 42
        assert rep.is_primitive

    def test_bool_is_not_int(self):
        # bool is a subclass of int in Python; the formal domain keeps
        # Bool and Int distinct.
        assert prim(True).class_name == "Bool"
        assert prim(1).class_name == "Int"
        assert prim(True).key() != prim(1).key()

    def test_float(self):
        assert prim(1.5).class_name == "Float"

    def test_none(self):
        assert prim(None).class_name == "Null"

    def test_string_truncated_to_128(self):
        rep = prim("x" * 1000)
        assert rep.serialization == "x" * REPR_TRUNCATION

    def test_non_primitive_rejected(self):
        with pytest.raises(TypeError):
            prim(object())


class TestValueRep:
    def test_key_excludes_location(self):
        a = ValueRep("C", serialization="s", location=1, creation_seq=1)
        b = ValueRep("C", serialization="s", location=99, creation_seq=7)
        assert a.key() == b.key()

    def test_key_distinguishes_class(self):
        a = ValueRep("C", serialization="s")
        b = ValueRep("D", serialization="s")
        assert a.key() != b.key()

    def test_key_distinguishes_serialization(self):
        a = ValueRep("C", serialization="s1")
        b = ValueRep("C", serialization="s2")
        assert a.key() != b.key()

    def test_brief_shows_creation_seq(self):
        rep = ValueRep("C", location=3, creation_seq=2)
        assert rep.brief() == "C-2"

    def test_unit(self):
        assert UNIT.is_primitive
        assert UNIT.class_name == "Unit"


class TestTruncateRepr:
    def test_short_unchanged(self):
        assert truncate_repr("abc") == "abc"

    def test_long_cut(self):
        assert len(truncate_repr("a" * 500)) == REPR_TRUNCATION


class TestObjectRegistry:
    def test_creation_seq_is_per_class(self):
        reg = ObjectRegistry()
        a = reg.register(1, "A")
        b = reg.register(2, "B")
        a2 = reg.register(3, "A")
        assert (a.creation_seq, b.creation_seq, a2.creation_seq) == (1, 1, 2)

    def test_describe_round_trip(self):
        reg = ObjectRegistry()
        rep = reg.register(7, "A", serialization="x")
        assert reg.describe(7) is rep

    def test_describe_unknown_raises(self):
        with pytest.raises(KeyError):
            ObjectRegistry().describe(123)

    def test_update_serialization_preserves_identity(self):
        reg = ObjectRegistry()
        reg.register(1, "A", serialization="old")
        updated = reg.update_serialization(1, "new")
        assert updated.serialization == "new"
        assert updated.creation_seq == 1
        assert updated.location == 1
        assert reg.describe(1).serialization == "new"

    def test_creation_count(self):
        reg = ObjectRegistry()
        assert reg.creation_count("A") == 0
        reg.register(1, "A")
        reg.register(2, "A")
        assert reg.creation_count("A") == 2
