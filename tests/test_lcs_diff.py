"""Tests for the LCS-based differencing semantics (Fig. 11)."""

import pytest

from repro.core.lcs import LcsMemoryError, MemoryBudget
from repro.core.lcs_diff import lcs_diff

from helpers import simple_trace


class TestLcsDiff:
    def test_identical_traces_have_no_diffs(self):
        left = simple_trace([1, 2, 3], name="L")
        right = simple_trace([1, 2, 3], name="R")
        result = lcs_diff(left, right)
        assert result.num_diffs() == 0
        assert result.sequences == []
        assert result.num_similar() == len(left) + len(right)

    def test_insertion_detected(self):
        left = simple_trace([1, 2, 3])
        right = simple_trace([1, 2, 99, 3])
        result = lcs_diff(left, right)
        assert result.num_diffs() == 1
        [seq] = result.sequences
        assert seq.kind == "insert"
        assert seq.right_entries[0].event.value.serialization == 99

    def test_deletion_detected(self):
        left = simple_trace([1, 2, 99, 3])
        right = simple_trace([1, 2, 3])
        result = lcs_diff(left, right)
        [seq] = result.sequences
        assert seq.kind == "delete"

    def test_modification_detected(self):
        left = simple_trace([1, 2, 3])
        right = simple_trace([1, 7, 3])
        result = lcs_diff(left, right)
        [seq] = result.sequences
        assert seq.kind == "modify"
        assert seq.size() == 2

    def test_moved_block_counted_as_two_diffs(self):
        # The LCS cannot detect moves (Fig. 10): a block moved from the
        # front to the back shows up as delete + insert.
        left = simple_trace([10, 11, 1, 2, 3, 4])
        right = simple_trace([1, 2, 3, 4, 10, 11])
        result = lcs_diff(left, right)
        assert result.num_diffs() == 4
        kinds = sorted(s.kind for s in result.sequences)
        assert kinds == ["delete", "insert"]

    def test_match_pairs_are_monotonic(self):
        left = simple_trace([1, 2, 3, 4, 5])
        right = simple_trace([1, 3, 5, 6])
        result = lcs_diff(left, right)
        lefts = [l for l, _ in result.match_pairs]
        rights = [r for _, r in result.match_pairs]
        assert lefts == sorted(lefts)
        assert rights == sorted(rights)

    def test_all_algorithms_agree_on_diff_count(self):
        left = simple_trace([1, 2, 3, 4, 5, 6])
        right = simple_trace([1, 9, 3, 4, 8, 6])
        counts = {lcs_diff(left, right, algorithm=a).num_diffs()
                  for a in ("optimized", "dp", "hirschberg", "fast")}
        assert len(counts) == 1

    def test_budget_failure_propagates(self):
        left = simple_trace(range(100))
        right = simple_trace(range(200, 300))
        with pytest.raises(LcsMemoryError):
            lcs_diff(left, right, budget=MemoryBudget(max_cells=64))

    def test_unknown_algorithm_rejected(self):
        left = simple_trace([1])
        right = simple_trace([1])
        with pytest.raises(ValueError):
            lcs_diff(left, right, algorithm="quantum")

    def test_compare_count_recorded(self):
        left = simple_trace([1, 2, 3])
        right = simple_trace([4, 5, 6])
        result = lcs_diff(left, right, algorithm="dp")
        assert result.compares() > 0

    def test_peak_cells_reported(self):
        left = simple_trace(range(20))
        right = simple_trace(range(10, 30))
        budget = MemoryBudget()
        result = lcs_diff(left, right, budget=budget)
        assert result.peak_cells > 0


class TestDegeneratePairs:
    """Hardening for the degenerate shapes segmentation exposes: empty
    traces, all-common pairs, and single-gap pairs (ISSUE 5)."""

    def test_empty_vs_empty(self):
        from repro.core.traces import Trace
        result = lcs_diff(Trace([], name="a"), Trace([], name="b"))
        assert result.num_diffs() == 0
        assert result.match_pairs == [] and result.sequences == []

    def test_empty_vs_full_each_way(self):
        from repro.core.traces import Trace
        full = simple_trace([1, 2, 3], name="full")
        for left, right, kind in ((Trace([]), full, "insert"),
                                  (full, Trace([]), "delete")):
            result = lcs_diff(left, right)
            assert result.num_diffs() == len(full)
            [sequence] = result.sequences
            assert sequence.kind == kind

    def test_empty_pair_under_budget(self):
        from repro.core.traces import Trace
        result = lcs_diff(Trace([]), Trace([]),
                          budget=MemoryBudget(max_cells=4))
        assert result.num_diffs() == 0

    @pytest.mark.parametrize("algorithm",
                             ["optimized", "dp", "hirschberg", "fast"])
    def test_all_common_pair(self, algorithm):
        left = simple_trace([1, 1, 2, 2, 3], name="l")
        right = simple_trace([1, 1, 2, 2, 3], name="r")
        result = lcs_diff(left, right, algorithm=algorithm)
        assert result.num_diffs() == 0
        assert result.match_pairs == [(i, i) for i in range(len(left))]

    @pytest.mark.parametrize("algorithm",
                             ["optimized", "dp", "hirschberg", "fast"])
    def test_single_gap_pair(self, algorithm):
        left = simple_trace([1, 2, 3, 4], name="l")
        right = simple_trace([1, 9, 3, 4], name="r")
        result = lcs_diff(left, right, algorithm=algorithm)
        assert result.num_diffs() == 2
        [sequence] = result.sequences
        assert sequence.kind == "modify"

    def test_anchored_empty_and_all_common(self):
        from repro.core.anchors import AnchorConfig
        from repro.core.traces import Trace
        anchors = AnchorConfig()
        assert lcs_diff(Trace([]), Trace([]),
                        anchors=anchors).num_diffs() == 0
        same = simple_trace([5, 6, 7], name="s")
        same2 = simple_trace([5, 6, 7], name="s2")
        result = lcs_diff(same, same2, anchors=anchors)
        assert result.num_diffs() == 0
        assert len(result.match_pairs) == len(same)
