"""Tests for the Sec. 5.1 metrics and Fig. 14 histogram bins."""

import pytest

from repro.core.stats import (ACCURACY_BINS, SPEEDUP_BINS, accuracy,
                              accuracy_histogram, bin_index,
                              dynamic_slicing_percentage, speedup,
                              speedup_histogram)


class TestAccuracy:
    def test_equal_diff_counts_is_100_percent(self):
        assert accuracy(1000, 50, 50) == pytest.approx(1.0)

    def test_fewer_diffs_than_lcs_exceeds_100_percent(self):
        # RPRISM detecting moves yields fewer differences than LCS.
        assert accuracy(1000, 30, 50) > 1.0

    def test_more_diffs_is_below_100_percent(self):
        assert accuracy(1000, 60, 50) < 1.0

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            accuracy(0, 0, 0)

    def test_lcs_all_diff_edge(self):
        assert accuracy(10, 0, 10) == float("inf")


class TestSpeedup:
    def test_ratio(self):
        assert speedup(1000, 10) == 100.0

    def test_zero_rprism_compares(self):
        assert speedup(10, 0) == float("inf")

    def test_below_one_possible(self):
        # The paper observed <1x for two very small traces.
        assert speedup(5, 10) == 0.5


class TestBinning:
    def test_bin_index_lower_edge(self):
        assert bin_index(0.98, ACCURACY_BINS) == 0

    def test_bin_index_exact_bound(self):
        assert bin_index(1.0, ACCURACY_BINS) == 1

    def test_bin_index_overflow_clamps(self):
        assert bin_index(99.0, ACCURACY_BINS) == len(ACCURACY_BINS) - 1

    def test_accuracy_histogram_labels(self):
        hist = accuracy_histogram([1.0, 1.0, 1.2, 3.0])
        assert hist.labels[0] == "99%"
        assert hist.labels[-1] == "200%"
        assert hist.total() == 4
        assert hist.counts[1] == 2  # the two 100% cases

    def test_speedup_histogram(self):
        hist = speedup_histogram([0.4, 80.0, 4000.0, 90000.0])
        assert hist.labels[0] == "0.5x"
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 2  # 4000 and the overflow both in 5000x
        assert len(hist.labels) == len(SPEEDUP_BINS)

    def test_histogram_render(self):
        hist = speedup_histogram([2.0, 2.0])
        text = hist.render(title="Speedup")
        assert "Speedup" in text
        assert "(2)" in text


class TestSlicingPercentage:
    def test_basic(self):
        assert dynamic_slicing_percentage(2, 10_000) == pytest.approx(0.02)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            dynamic_slicing_percentage(1, 0)
