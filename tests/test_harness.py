"""Tests for the Table 1/2 scenario harness (one full scenario run)."""

import pytest

from repro.workloads.harness import (SCENARIOS, ScenarioSpec,
                                     run_scenario, workload_loc)


class TestSpecs:
    def test_four_case_studies(self):
        assert set(SCENARIOS) == {"Daikon", "Xalan-1725", "Xalan-1802",
                                  "Derby-1633"}

    def test_workload_loc_positive(self):
        for spec in SCENARIOS.values():
            assert workload_loc(spec.package) > 100

    def test_specs_runnable(self):
        for spec in SCENARIOS.values():
            assert callable(spec.run_old)
            assert callable(spec.run_new)
            assert callable(spec.is_cause_entry)


@pytest.mark.slow
class TestScenarioRun:
    """End-to-end harness run on the cheapest study (Xalan-1725)."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(SCENARIOS["Xalan-1725"])

    def test_traces_collected(self, result):
        assert result.trace_entries > 1000
        assert result.tracing_seconds > 0

    def test_views_semantics_complete(self, result):
        assert result.views.failed is None
        assert result.views.num_diffs > 0
        assert result.views.diff_sequences > 0
        assert result.views.regression_sequences >= 1
        assert result.views.false_negatives == 0

    def test_lcs_baseline_ran_within_budget(self, result):
        # This study's traces fit the baseline's memory budget.
        assert result.lcs.failed is None
        assert result.lcs.num_diffs is not None

    def test_set_sizes_shrink(self, result):
        assert result.set_sizes["D"] <= result.set_sizes["A"]
        assert result.set_sizes["D"] >= 1

    def test_view_counts_consistent(self, result):
        counts = result.view_counts
        assert counts["total"] == (counts["thread"] + counts["method"]
                                   + counts["target_object"]
                                   + counts["active_object"])

    def test_speedup_reported(self, result):
        assert result.speedup is not None
        assert result.speedup > 0
