"""Tests for the substrate feature extensions: ORDER BY / LIMIT /
COUNT(*) in minidb, attribute value templates and xsl:if in minixslt."""

import pytest

from repro.workloads.minidb.engine import Database
from repro.workloads.minidb.errors import SqlError
from repro.workloads.minidb.sql import parse_sql
from repro.workloads.minixslt.engine import transform
from repro.workloads.minixslt.stylesheet import (StylesheetError,
                                                 split_attribute_template)


class TestSqlParserExtensions:
    def test_order_by(self):
        statement = parse_sql("SELECT a FROM t ORDER BY a")
        assert statement.order_by == "a"
        assert not statement.descending

    def test_order_by_desc(self):
        statement = parse_sql("SELECT a FROM t ORDER BY a DESC")
        assert statement.descending

    def test_limit(self):
        statement = parse_sql("SELECT a FROM t LIMIT 3")
        assert statement.limit == 3

    def test_count_star(self):
        statement = parse_sql("SELECT COUNT(*) FROM t")
        assert statement.count

    def test_combined_clauses(self):
        statement = parse_sql(
            "SELECT a FROM t WHERE a > 1 ORDER BY a DESC LIMIT 2")
        assert statement.where is not None
        assert statement.order_by == "a"
        assert statement.limit == 2

    def test_order_without_by_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t ORDER a")

    def test_limit_requires_int(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t LIMIT x")


class TestSqlExecutionExtensions:
    @pytest.fixture()
    def database(self):
        database = Database("10.1.3.1")
        database.execute("CREATE TABLE t (a, b)")
        for a, b in [(3, 30), (1, 10), (2, 20)]:
            database.execute(f"INSERT INTO t VALUES ({a}, {b})")
        return database

    def test_order_by_ascending(self, database):
        rows = database.execute("SELECT a FROM t ORDER BY a")
        assert rows == [(1,), (2,), (3,)]

    def test_order_by_descending(self, database):
        rows = database.execute("SELECT b FROM t ORDER BY b DESC")
        assert rows == [(30,), (20,), (10,)]

    def test_limit(self, database):
        rows = database.execute("SELECT a FROM t ORDER BY a LIMIT 2")
        assert rows == [(1,), (2,)]

    def test_count_star(self, database):
        assert database.execute("SELECT COUNT(*) FROM t") == [(3,)]

    def test_count_with_where(self, database):
        rows = database.execute("SELECT COUNT(*) FROM t WHERE a >= 2")
        assert rows == [(2,)]

    def test_order_by_with_subquery(self, database):
        database.execute("CREATE TABLE u (x)")
        database.execute("INSERT INTO u VALUES (1)")
        database.execute("INSERT INTO u VALUES (3)")
        rows = database.execute(
            "SELECT a FROM t WHERE a IN (SELECT x FROM u) "
            "ORDER BY a DESC")
        assert rows == [(3,), (1,)]

    def test_both_planners_agree(self):
        query = "SELECT a FROM t ORDER BY a DESC LIMIT 1"
        results = []
        for version in ("10.1.2.1", "10.1.3.1"):
            database = Database(version)
            database.execute("CREATE TABLE t (a)")
            for a in (5, 9, 1):
                database.execute(f"INSERT INTO t VALUES ({a})")
            results.append(database.execute(query))
        assert results[0] == results[1] == [(9,)]


class TestAttributeTemplates:
    def test_split_plain_text(self):
        assert split_attribute_template("abc") == [("text", "abc")]

    def test_split_mixed(self):
        parts = split_attribute_template("id-{@name}-x")
        assert parts == [("text", "id-"), ("expr", "@name"),
                         ("text", "-x")]

    def test_split_expr_only(self):
        assert split_attribute_template("{.}") == [("expr", ".")]

    def test_unterminated_rejected(self):
        with pytest.raises(StylesheetError):
            split_attribute_template("{oops")

    def test_avt_expanded_at_execution(self):
        output = transform("2.5.1", """
            <xsl:stylesheet>
              <xsl:template match="doc">
                <xsl:apply-templates select="item"/>
              </xsl:template>
              <xsl:template match="item">
                <row id="r-{@name}"><xsl:value-of select="."/></row>
              </xsl:template>
            </xsl:stylesheet>""",
            '<doc><item name="a">1</item><item name="b">2</item></doc>')
        assert '<row id="r-a">1</row>' in output
        assert '<row id="r-b">2</row>' in output


class TestXslIf:
    STYLESHEET = """
        <xsl:stylesheet>
          <xsl:template match="doc">
            <xsl:apply-templates select="item"/>
          </xsl:template>
          <xsl:template match="item">
            <xsl:if test="@kind = 'good'">
              <keep><xsl:value-of select="."/></keep>
            </xsl:if>
            <xsl:if test="@note">
              <noted/>
            </xsl:if>
          </xsl:template>
        </xsl:stylesheet>"""

    def test_equality_test(self):
        output = transform("2.5.1", self.STYLESHEET, """
            <doc>
              <item kind="good">yes</item>
              <item kind="bad">no</item>
            </doc>""")
        assert "<keep>yes</keep>" in output
        assert "no" not in output

    def test_truthiness_test(self):
        output = transform("2.5.1", self.STYLESHEET, """
            <doc><item kind="bad" note="n">x</item></doc>""")
        assert "<noted" in output

    def test_if_without_test_rejected(self):
        with pytest.raises(StylesheetError):
            transform("2.5.1", """
                <xsl:stylesheet>
                  <xsl:template match="doc"><xsl:if>x</xsl:if></xsl:template>
                </xsl:stylesheet>""", "<doc/>")
