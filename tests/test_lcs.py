"""Tests for the LCS algorithms, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcs import (LcsBudgetExceeded, LcsMemoryError, MemoryBudget,
                            OpCounter, lcs_dp, lcs_fast, lcs_hirschberg,
                            lcs_length, lcs_optimized, myers_lcs_length,
                            trim_common)

short_seqs = st.lists(st.integers(min_value=0, max_value=5), max_size=18)


def is_common_subsequence(pairs, a, b):
    """Pairs must be strictly increasing on both sides and element-equal."""
    last_i, last_j = -1, -1
    for i, j in pairs:
        if i <= last_i or j <= last_j:
            return False
        if a[i] != b[j]:
            return False
        last_i, last_j = i, j
    return True


class TestLcsDp:
    def test_identical(self):
        result = lcs_dp("abcdef", "abcdef")
        assert len(result) == 6

    def test_disjoint(self):
        assert len(lcs_dp("abc", "xyz")) == 0

    def test_classic_example(self):
        # Fig. 10's example shape: moved subsequences are not detected.
        result = lcs_dp("XMJYAUZ", "MZJAWXU")
        assert len(result) == 4  # MJAU

    def test_empty(self):
        assert len(lcs_dp("", "abc")) == 0
        assert len(lcs_dp("abc", "")) == 0

    def test_counter_counts_nm(self):
        counter = OpCounter()
        lcs_dp("abcd", "xyz", counter=counter)
        assert counter.compares == 12

    def test_budget_exceeded(self):
        budget = MemoryBudget(max_cells=10)
        with pytest.raises(LcsMemoryError):
            lcs_dp("abcdef", "abcdef", budget=budget)

    def test_budget_peak_tracked(self):
        budget = MemoryBudget(max_cells=None)
        lcs_dp("abc", "ab", budget=budget)
        assert budget.peak_cells == 4 * 3

    def test_key_function(self):
        result = lcs_dp([1, 2, 3], [4, 5, 6], key=lambda x: x % 3)
        assert len(result) == 3


class TestTrimCommon:
    def test_full_match(self):
        prefix, a_mid, b_mid = trim_common(list("abc"), list("abc"))
        assert (prefix, a_mid, b_mid) == (3, 0, 0)

    def test_prefix_and_suffix(self):
        prefix, a_mid, b_mid = trim_common(list("aaXbb"), list("aaYYbb"))
        assert prefix == 2
        assert (a_mid, b_mid) == (1, 2)

    def test_no_common(self):
        prefix, a_mid, b_mid = trim_common(list("abc"), list("xyz"))
        assert (prefix, a_mid, b_mid) == (0, 3, 3)

    def test_overlap_guard(self):
        # prefix+suffix cannot overlap: "aa" vs "aaa"
        prefix, a_mid, b_mid = trim_common(list("aa"), list("aaa"))
        assert prefix + a_mid <= 2
        assert prefix + (len("aaa") - (2 - prefix - a_mid) - prefix) >= 0


class TestEquivalences:
    @given(short_seqs, short_seqs)
    @settings(max_examples=200, deadline=None)
    def test_hirschberg_matches_dp_length(self, a, b):
        assert len(lcs_hirschberg(a, b)) == len(lcs_dp(a, b))

    @given(short_seqs, short_seqs)
    @settings(max_examples=200, deadline=None)
    def test_myers_length_matches_dp(self, a, b):
        assert myers_lcs_length(a, b) == len(lcs_dp(a, b))

    @given(short_seqs, short_seqs)
    @settings(max_examples=200, deadline=None)
    def test_lcs_length_matches_dp(self, a, b):
        assert lcs_length(a, b) == len(lcs_dp(a, b))

    @given(short_seqs, short_seqs)
    @settings(max_examples=200, deadline=None)
    def test_dp_produces_valid_subsequence(self, a, b):
        result = lcs_dp(a, b)
        assert is_common_subsequence(result.pairs, a, b)

    @given(short_seqs, short_seqs)
    @settings(max_examples=200, deadline=None)
    def test_hirschberg_produces_valid_subsequence(self, a, b):
        result = lcs_hirschberg(a, b)
        assert is_common_subsequence(result.pairs, a, b)

    @given(short_seqs, short_seqs)
    @settings(max_examples=200, deadline=None)
    def test_fast_produces_valid_subsequence(self, a, b):
        result = lcs_fast(a, b)
        assert is_common_subsequence(result.pairs, a, b)

    @given(short_seqs, short_seqs)
    @settings(max_examples=200, deadline=None)
    def test_fast_exact_when_dp_core_used(self, a, b):
        # With a generous cell limit the fast differ is exact.
        assert len(lcs_fast(a, b, dp_cell_limit=10**6)) == len(lcs_dp(a, b))

    @given(short_seqs, short_seqs)
    @settings(max_examples=200, deadline=None)
    def test_optimized_matches_dp_length(self, a, b):
        assert len(lcs_optimized(a, b)) == len(lcs_dp(a, b))

    @given(short_seqs)
    @settings(max_examples=100, deadline=None)
    def test_lcs_with_self_is_identity(self, a):
        result = lcs_dp(a, a)
        assert result.pairs == [(i, i) for i in range(len(a))]

    @given(short_seqs, short_seqs)
    @settings(max_examples=100, deadline=None)
    def test_length_symmetric(self, a, b):
        assert lcs_length(a, b) == lcs_length(b, a)

    @given(short_seqs, short_seqs)
    @settings(max_examples=100, deadline=None)
    def test_length_bounded_by_min(self, a, b):
        assert lcs_length(a, b) <= min(len(a), len(b))


class TestMyersLength:
    def test_budget_exceeded(self):
        with pytest.raises(LcsBudgetExceeded):
            myers_lcs_length(list(range(50)), list(range(50, 100)), max_d=3)

    def test_trim_makes_similar_cheap(self):
        counter = OpCounter()
        a = list(range(1000))
        b = list(range(1000))
        b[500] = -1
        myers_lcs_length(a, b, counter=counter)
        # Compare cost should be far below the quadratic 10^6.
        assert counter.compares < 10_000


class TestOptimized:
    def test_budget_applies_to_middle_only(self):
        # Common prefix/suffix means the middle is tiny; a small budget
        # that would reject the full table accepts the trimmed one.
        a = list(range(100)) + [999] + list(range(100, 200))
        b = list(range(100)) + [888, 777] + list(range(100, 200))
        budget = MemoryBudget(max_cells=100)
        result = lcs_optimized(a, b, budget=budget)
        assert len(result) == 200

    def test_budget_failure_on_divergent_middle(self):
        a = list(range(100))
        b = list(range(200, 300))
        budget = MemoryBudget(max_cells=50)
        with pytest.raises(LcsMemoryError):
            lcs_optimized(a, b, budget=budget)

    def test_charging_when_fast_path_used(self):
        a = [i % 7 for i in range(300)]
        b = [(i + 3) % 7 for i in range(300)]
        counter = OpCounter()
        lcs_optimized(a, b, counter=counter, dp_cell_limit=10)
        # The DP-equivalent cost was charged instead of performed.
        assert counter.charged > 0
        assert counter.total >= counter.charged


class TestOpCounter:
    def test_reset(self):
        counter = OpCounter()
        counter.bump(5)
        counter.charge(3)
        assert counter.total == 8
        counter.reset()
        assert counter.total == 0
