"""Tests for the static-analysis graphs: CFGs, the RTA call graph,
effect summaries, and the definite-assignment dataflow."""

from collections import Counter

from repro.lang.parser import parse_program
from repro.static import (build_call_graph, build_program_cfgs,
                          check_definite_assignment, direct_effects,
                          statement_terms, transitive_effects)
from repro.static.callgraph import init_node_name
from repro.static.cfg import MAIN, build_cfg, spawn_node_name


BRANCHY = """
    thread {
        var x = 1;
        if (x.lt(2)) {
            var y = x.add(1);
        } else {
            var y = x.add(2);
            y.toStr();
        }
        while (x.lt(5)) {
            x = x.add(1);
        }
        x.toStr();
    }
"""


class TestCfgStructure:
    def cfg(self, source=BRANCHY):
        program = parse_program(source)
        return program, build_cfg(program.main, MAIN)

    def test_every_statement_in_exactly_one_block(self):
        program, cfg = self.cfg()
        owned = Counter(id(t) for t in cfg.owned_terms())
        expected = Counter(id(t) for t in statement_terms(program.main))
        assert owned == expected
        assert max(owned.values()) == 1

    def test_entry_dominates_all_reachable_blocks(self):
        _, cfg = self.cfg()
        doms = cfg.dominators()
        for bid in cfg.reachable():
            assert cfg.entry in doms[bid]

    def test_while_produces_back_edge(self):
        _, cfg = self.cfg()
        back = cfg.back_edges()
        assert len(back) == 1
        (src, dst), = back
        assert cfg.blocks[dst].kind == "loop"
        assert dst in cfg.dominators()[src]

    def test_if_branches_rejoin(self):
        _, cfg = self.cfg()
        kinds = {b.kind for b in cfg.blocks.values()}
        assert {"entry", "exit", "body", "loop", "join"} <= kinds

    def test_dead_code_after_return_is_unreachable(self):
        program = parse_program("""
            class A {
                Int m() { return 1; this.m(); return 2; }
            }
            thread { new A().m(); }
        """)
        cfg = build_program_cfgs(program)["A.m"]
        dead = [b for b in cfg.blocks.values() if b.kind == "dead"]
        assert dead
        reachable = cfg.reachable()
        assert all(b.bid not in reachable for b in dead)
        # The dead statements are still owned by exactly one block.
        owned = Counter(id(t) for t in cfg.owned_terms())
        body = program.classes["A"].methods[0].body
        assert owned == Counter(id(t) for t in statement_terms(body))

    def test_spawn_bodies_get_their_own_cfgs(self):
        program = parse_program("""
            thread {
                var x = 1;
                spawn { x.toStr(); }
                spawn { spawn { x.add(1); } }
            }
        """)
        cfgs = build_program_cfgs(program)
        first = spawn_node_name(MAIN, 0)
        second = spawn_node_name(MAIN, 1)
        nested = spawn_node_name(second, 0)
        assert {MAIN, first, second, nested} <= set(cfgs)
        # Spawn statements stay in the parent graph; their bodies don't.
        assert len(cfgs[first].owned_terms()) == 1
        assert len(cfgs[nested].owned_terms()) == 1

    def test_to_json_schema(self):
        _, cfg = self.cfg()
        payload = cfg.to_json()
        assert set(payload) == {"name", "entry", "exit", "blocks"}
        for block in payload["blocks"]:
            assert set(block) == {"id", "kind", "stmts", "succs"}
            assert all(isinstance(s, str) for s in block["stmts"])


HIERARCHY = """
    class Shape { Int tag; Int area() { return 0; } }
    class Circle extends Shape { Int r;
        Int area() { return this.r.mul(this.r); } }
    class Square extends Shape { Int s;
        Int area() { return this.s.mul(this.s); } }
    class Painter {
        Int paint(Shape s) { return s.area(); }
        Int unused() { return this.paint(new Circle(0, 2)); }
    }
    thread {
        var p = new Painter();
        p.paint(new Circle(0, 3));
    }
"""


class TestCallGraph:
    def test_rta_dispatch_narrows_to_instantiated(self):
        graph = build_call_graph(parse_program(HIERARCHY))
        targets = graph.callees_of("Painter.paint", kinds=("call",))
        # Only Circle is instantiated from a reachable node: the static
        # Shape.area target and Square.area drop out.
        assert targets == {"Circle.area"}

    def test_unreachable_methods_marked(self):
        graph = build_call_graph(parse_program(HIERARCHY))
        assert not graph.nodes["Painter.unused"].reachable
        assert graph.nodes["Painter.paint"].reachable
        assert graph.nodes[MAIN].reachable

    def test_constructor_and_spawn_nodes(self):
        program = parse_program("""
            class Counter { Int n; Int bump() {
                this.n = this.n.add(1); return this.n; } }
            thread {
                var c = new Counter(0);
                spawn { c.bump(); }
                c.bump();
            }
        """)
        graph = build_call_graph(program)
        spawn = spawn_node_name(MAIN, 0)
        assert graph.spawn_nodes() == [spawn]
        assert graph.callees_of(MAIN, kinds=("spawn",)) == {spawn}
        assert init_node_name("Counter") in graph.nodes
        assert graph.callees_of(MAIN, kinds=("new",)) == \
            {init_node_name("Counter")}

    def test_to_json_schema(self):
        payload = build_call_graph(parse_program(HIERARCHY)).to_json()
        assert set(payload) == {"nodes", "edges", "instantiated"}
        assert {"name", "kind", "class", "reachable"} == \
            set(payload["nodes"][0])
        assert {"caller", "callee", "kind"} == set(payload["edges"][0])


class TestEffects:
    PROGRAM = """
        class Base { Int shared; }
        class Leaf extends Base {
            Int touch() { this.shared = this.shared.add(1);
                          return this.shared; }
        }
        class Driver {
            Int go(Leaf l) { return l.touch(); }
        }
        thread { new Driver().go(new Leaf(0)); }
    """

    def test_fields_attributed_to_declaring_class(self):
        program = parse_program(self.PROGRAM)
        effects = direct_effects(program)
        touch = effects["Leaf.touch"]
        assert ("Base", "shared") in touch.fields_written
        assert ("Base", "shared") in touch.fields_read
        assert ("Leaf", "shared") not in touch.fields_written

    def test_transitive_closes_over_calls(self):
        program = parse_program(self.PROGRAM)
        direct = direct_effects(program)
        assert not direct["Driver.go"].fields_written
        transitive = transitive_effects(program)
        assert ("Base", "shared") in transitive["Driver.go"].fields_written
        assert ("Base", "shared") in transitive[MAIN].fields_written

    def test_constructor_writes_all_fields(self):
        program = parse_program(self.PROGRAM)
        effects = direct_effects(program)
        init = effects[init_node_name("Leaf")]
        assert ("Base", "shared") in init.fields_written


class TestDefiniteAssignment:
    def test_clean_program_has_no_issues(self):
        assert check_definite_assignment(parse_program(BRANCHY)) == []

    def test_conflicting_redeclaration_flagged(self):
        issues = check_definite_assignment(parse_program("""
            thread {
                var x = 1;
                if (true) { var x = 'oops'; }
                var y = x.add(1);
            }
        """))
        assert any(i.kind == "redeclare-conflict" and i.name == "x"
                   for i in issues)

    def test_issue_message_and_json(self):
        issues = check_definite_assignment(parse_program("""
            thread { var x = 1; if (true) { var x = 'oops'; } }
        """))
        assert issues
        issue = issues[0]
        assert issue.name in issue.message()
        assert set(issue.to_json()) == {"node", "kind", "name", "detail"}

    def test_spawn_bodies_analyzed(self):
        issues = check_definite_assignment(parse_program("""
            thread {
                var x = 1;
                spawn { var x = 'oops'; x.concat('!'); }
            }
        """))
        assert any(i.node == spawn_node_name(MAIN, 0) for i in issues)
