"""Tests for the trace-emitting interpreter (Fig. 6 rules)."""

import pytest

from repro.core.events import (Call, End, FieldGet, FieldSet, Fork, Init,
                               Return)
from repro.core.views import ViewType
from repro.core.web import ViewWeb
from repro.lang import run_source
from repro.lang.errors import RuntimeLangError


class TestObjectRules:
    def test_cons_e_records_init(self):
        trace = run_source("""
            class P { Int x; }
            thread { new P(5); }
        """)
        inits = [e for e in trace if isinstance(e.event, Init)]
        assert len(inits) == 1
        assert inits[0].event.class_name == "P"
        assert inits[0].event.args[0].serialization == 5

    def test_recursive_serialization(self):
        trace = run_source("""
            class Inner { Int v; }
            class Outer { Inner inner; }
            thread { new Outer(new Inner(3)); }
        """)
        outer_init = [e for e in trace if isinstance(e.event, Init)][-1]
        serialization = outer_init.event.obj.serialization
        assert serialization[0] == "Outer"
        # The inner object's representation is nested inside.
        assert "Inner" in str(serialization)

    def test_field_acc_e(self):
        trace = run_source("""
            class P { Int x; Int getX() { return this.x; } }
            thread { new P(5).getX(); }
        """)
        gets = [e for e in trace if isinstance(e.event, FieldGet)]
        assert len(gets) == 1
        assert gets[0].event.field == "x"
        assert gets[0].event.value.serialization == 5
        assert gets[0].method == "P.getX"

    def test_field_ass_e(self):
        trace = run_source("""
            class P { Int x; Unit setX(Int v) { this.x = v; return unit; } }
            thread { new P(0).setX(9); }
        """)
        sets = [e for e in trace if isinstance(e.event, FieldSet)]
        assert len(sets) == 1
        assert sets[0].event.value.serialization == 9

    def test_constructor_arity_checked(self):
        with pytest.raises(RuntimeLangError):
            run_source("class P { Int x; } thread { new P(); }")

    def test_unknown_field(self):
        with pytest.raises(RuntimeLangError):
            run_source("""
                class P { Int x; Int m() { return this.y; } }
                thread { new P(1).m(); }
            """)


class TestMethodRules:
    def test_meth_e_and_return_e(self):
        trace = run_source("""
            class A { Int m(Int v) { return v; } }
            thread { new A().m(42); }
        """)
        calls = [e for e in trace if isinstance(e.event, Call)]
        rets = [e for e in trace if isinstance(e.event, Return)]
        assert calls[0].event.method == "A.m"
        assert calls[0].event.args[0].serialization == 42
        assert rets[0].event.value.serialization == 42

    def test_dynamic_dispatch(self):
        trace = run_source("""
            class A { Str who() { return 'A'; } }
            class B extends A { Str who() { return 'B'; } }
            thread {
                new B().who();
            }
        """)
        calls = [e for e in trace if isinstance(e.event, Call)]
        assert calls[0].event.method == "B.who"
        rets = [e for e in trace if isinstance(e.event, Return)]
        assert rets[0].event.value.serialization == "B"

    def test_inherited_method_qualified_by_owner(self):
        trace = run_source("""
            class A { Str who() { return 'A'; } }
            class B extends A { }
            thread { new B().who(); }
        """)
        calls = [e for e in trace if isinstance(e.event, Call)]
        assert calls[0].event.method == "A.who"

    def test_builtin_methods_traced(self):
        trace = run_source("thread { 1.add(2).mul(3); }")
        calls = [e.event.method for e in trace
                 if isinstance(e.event, Call)]
        assert calls == ["Int.add", "Int.mul"]
        rets = [e.event.value.serialization for e in trace
                if isinstance(e.event, Return)]
        assert rets == [3, 9]

    def test_string_builtins(self):
        trace = run_source("thread { 'ab'.concat('cd').len(); }")
        rets = [e.event.value.serialization for e in trace
                if isinstance(e.event, Return)]
        assert rets == ["abcd", 4]

    def test_unknown_method(self):
        with pytest.raises(RuntimeLangError):
            run_source("class A { } thread { new A().nope(); }")

    def test_arity_mismatch(self):
        with pytest.raises(RuntimeLangError):
            run_source("""
                class A { Int m(Int x) { return x; } }
                thread { new A().m(); }
            """)

    def test_early_return_unwinds(self):
        trace = run_source("""
            class A {
                Int m(Bool b) {
                    if (b) { return 1; }
                    return 2;
                }
            }
            thread { new A().m(true); }
        """)
        rets = [e.event.value.serialization for e in trace
                if isinstance(e.event, Return) and e.event.method == "A.m"]
        assert rets == [1]


class TestControlFlow:
    def test_while_loop(self):
        trace = run_source("""
            class Counter {
                Int n;
                Unit bump() { this.n = this.n.add(1); return unit; }
            }
            thread {
                var c = new Counter(0);
                var i = 0;
                while (i.lt(3)) {
                    c.bump();
                    i = i.add(1);
                }
            }
        """)
        sets = [e for e in trace if isinstance(e.event, FieldSet)]
        assert [s.event.value.serialization for s in sets] == [1, 2, 3]

    def test_if_condition_must_be_bool(self):
        with pytest.raises(RuntimeLangError):
            run_source("thread { if (1) { 2; } }")

    def test_step_budget(self):
        with pytest.raises(RuntimeLangError):
            run_source("thread { while (true) { 1; } }", max_steps=1000)


class TestThreads:
    def test_fork_e_and_end_e(self):
        trace = run_source("""
            class A { Int m() { return 1; } }
            thread {
                var a = new A();
                spawn { a.m(); }
                a.m();
            }
        """)
        forks = [e for e in trace if isinstance(e.event, Fork)]
        ends = [e for e in trace if isinstance(e.event, End)]
        assert len(forks) == 1
        assert len(ends) == 2
        assert set(trace.thread_ids()) == {0, 1}

    def test_child_sees_parent_locals(self):
        trace = run_source("""
            class A { Int m(Int v) { return v; } }
            thread {
                var a = new A();
                var x = 7;
                spawn { a.m(x); }
            }
        """)
        child_calls = [e for e in trace
                       if isinstance(e.event, Call) and e.tid == 1]
        assert child_calls[0].event.args[0].serialization == 7

    def test_spawn_inside_method_captures_ancestry(self):
        trace = run_source("""
            class Server {
                Unit start() {
                    spawn { 1.add(1); }
                    return unit;
                }
            }
            thread { new Server().start(); }
        """)
        [fork] = [e for e in trace if isinstance(e.event, Fork)]
        assert fork.event.ancestry[0][-1].method == "Server.start"

    def test_thread_views_partition(self):
        trace = run_source("""
            thread {
                spawn { 1.add(1); }
                spawn { 2.add(2); }
                3.add(3);
            }
        """)
        web = ViewWeb(trace)
        assert len(web.views_of_type(ViewType.THREAD)) == 3


class TestScopingErrors:
    def test_unbound_variable(self):
        with pytest.raises(RuntimeLangError):
            run_source("thread { x; }")

    def test_assign_unbound_local(self):
        with pytest.raises(RuntimeLangError):
            run_source("thread { x = 1; }")

    def test_this_at_top_level(self):
        with pytest.raises(RuntimeLangError):
            run_source("thread { this; }")

    def test_unknown_class(self):
        with pytest.raises(RuntimeLangError):
            run_source("thread { new Nope(); }")
