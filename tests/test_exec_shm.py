"""Shared-memory trace shipping and warm-pool lifecycle tests.

The guarantees under test: segments are unlinked on normal release, on
worker crash, and on interrupt (no ``/dev/shm`` leaks — asserted
through the segment registry *and* the filesystem); the inline
fallback is result-identical; warm pools are shared, soft-closed, and
rebuilt after a crash.
"""

import os

import pytest

import repro.exec.shm as shm
from repro.capture.filters import TraceFilter
from repro.exec import (CaptureTask, ProcessExecutor, SegmentRegistry,
                        TraceShippingError, lease_chunks, parent_registry,
                        run_capture_tasks, shared_process_executor,
                        shutdown_warm_pools)
from repro.exec.executors import resolve_executor
from repro.exec.shm import adopt_segment_bytes, ship_untracked

FILTER = TraceFilter(include_modules=("test_exec_shm",))

pytestmark = pytest.mark.skipif(not shm.shm_available(),
                                reason="no shared memory on this host")


def small_workload(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def crash_hard(n):
    os._exit(13)  # simulates a segfaulting worker — no cleanup runs


def ship_then_crash(prefix):
    ship_untracked(b"orphaned payload", prefix)
    os._exit(13)


def _task(n=20, func=small_workload, name="w"):
    return CaptureTask(func=func, args=(n,), name=name, filter=FILTER)


def _prefix_files(prefix):
    return sorted(p.name for p in shm.SHM_DIR.glob(f"{prefix}_*"))


@pytest.fixture(scope="module")
def warm_pool():
    pool = shared_process_executor(2)
    yield pool
    shutdown_warm_pools()


class TestSegmentRegistry:
    def test_create_release_unlinks(self):
        registry = SegmentRegistry(prefix=f"reprotest{os.getpid():x}a")
        name = registry.create(b"hello segment")
        assert name is not None
        assert name in registry.tracked()
        assert _prefix_files(registry.prefix) == [name]
        registry.release(name)
        assert registry.tracked() == ()
        assert _prefix_files(registry.prefix) == []

    def test_digest_keyed_reuse_refcounts(self):
        registry = SegmentRegistry(prefix=f"reprotest{os.getpid():x}b")
        first = registry.create(b"payload", digest="d1")
        second = registry.create(b"payload", digest="d1")
        assert first == second
        assert registry.stats()["segments_created"] == 1
        registry.release(first)  # one ref down: still alive
        assert first in registry.tracked()
        registry.release(first)  # last ref: unlinked
        assert registry.tracked() == ()
        assert _prefix_files(registry.prefix) == []

    def test_release_all(self):
        registry = SegmentRegistry(prefix=f"reprotest{os.getpid():x}c")
        names = [registry.create(f"p{i}".encode()) for i in range(3)]
        assert all(names)
        registry.release_all()
        assert registry.tracked() == ()
        assert _prefix_files(registry.prefix) == []

    def test_sweep_collects_orphans_not_live_segments(self):
        registry = SegmentRegistry(prefix=f"reprotest{os.getpid():x}d")
        live = registry.create(b"live")
        orphan = shm.SHM_DIR / f"{registry.prefix}_orphan"
        orphan.write_bytes(b"left behind by a dead worker")
        assert registry.sweep() == 1
        assert not orphan.exists()
        assert _prefix_files(registry.prefix) == [live]
        registry.release_all()

    def test_adopt_round_trip_and_unlink(self):
        registry = SegmentRegistry(prefix=f"reprotest{os.getpid():x}e")
        shipped = ship_untracked(b"wire bytes", registry.prefix)
        assert shipped is not None
        name, size = shipped
        payload = adopt_segment_bytes(name, size, registry=registry)
        assert payload == b"wire bytes"
        assert registry.stats()["bytes_received"] == size
        assert _prefix_files(registry.prefix) == []  # adopt unlinked it

    def test_trace_round_trips_through_a_segment(self):
        from repro.analysis.serialize import dumps_trace_bytes, loads_trace
        from repro.core.traces import TraceBuilder
        from repro.core.values import prim

        builder = TraceBuilder(name="shipped")
        obj = builder.record_init(builder.main_tid, "Widget", (),
                                  serialization="w")
        builder.record_set(builder.main_tid, obj, "v", prim(7))
        builder.record_end(builder.main_tid)
        trace = builder.build()

        registry = SegmentRegistry(prefix=f"reprotest{os.getpid():x}g")
        payload = dumps_trace_bytes(trace)
        name = registry.create(payload, digest=trace.content_digest())
        shipped = loads_trace(
            adopt_segment_bytes(name, len(payload), unlink=False))
        assert [e.key() for e in shipped.entries] == \
            [e.key() for e in trace.entries]
        registry.release_all()

    def test_adopt_missing_segment_raises(self):
        with pytest.raises(TraceShippingError, match="cannot attach"):
            adopt_segment_bytes("reprotest_no_such_segment", 8)

    def test_stats_shape(self):
        registry = SegmentRegistry(prefix=f"reprotest{os.getpid():x}f")
        stats = registry.stats()
        assert stats == {"segments_live": 0, "segments_created": 0,
                         "bytes_shipped": 0, "bytes_received": 0,
                         "sweeps": 0}


class TestCaptureShipping:
    def test_lease_batch_identity_with_serial(self, warm_pool):
        tasks = [_task(n=10 + i, name=f"w{i}") for i in range(7)]
        serial = run_capture_tasks(tasks, "serial")
        remote = run_capture_tasks(tasks, warm_pool)
        assert [o.name for o in remote] == [o.name for o in serial]
        assert [o.result for o in remote] == [o.result for o in serial]
        for a, b in zip(remote, serial):
            assert [e.key() for e in a.trace.entries] == \
                [e.key() for e in b.trace.entries]

    def test_no_segments_survive_a_batch(self, warm_pool):
        run_capture_tasks([_task(name=f"w{i}") for i in range(5)],
                          warm_pool)
        registry = parent_registry()
        assert registry.tracked() == ()
        assert _prefix_files(registry.prefix) == []

    def test_inline_fallback_identity(self, warm_pool, monkeypatch):
        monkeypatch.setattr(shm, "FORCE_INLINE", True)
        assert not shm.shm_available()
        tasks = [_task(n=9, name="inline")]
        inline = run_capture_tasks(tasks, warm_pool)[0]
        monkeypatch.setattr(shm, "FORCE_INLINE", False)
        shipped = run_capture_tasks(tasks, warm_pool)[0]
        assert inline.result == shipped.result
        assert [e.key() for e in inline.trace.entries] == \
            [e.key() for e in shipped.trace.entries]

    def test_worker_crash_sweeps_orphans(self):
        with ProcessExecutor(max_workers=1) as pool:
            prefix = parent_registry().prefix
            from concurrent.futures.process import BrokenProcessPool
            with pytest.raises(BrokenProcessPool):
                pool.map(ship_then_crash, [prefix])
            assert pool.broken
        assert _prefix_files(parent_registry().prefix) == []

    def test_capture_crash_propagates_and_sweeps(self):
        with ProcessExecutor(max_workers=1) as pool:
            from concurrent.futures.process import BrokenProcessPool
            with pytest.raises(BrokenProcessPool):
                run_capture_tasks([_task(func=crash_hard)], pool)
        registry = parent_registry()
        assert registry.tracked() == ()
        assert _prefix_files(registry.prefix) == []

    def test_interrupt_sweeps_orphans(self):
        # The orphan appears *during* the batch (a worker mid-ship when
        # the user hits ^C) — the exception path must collect it.
        orphan = shm.SHM_DIR / f"{parent_registry().prefix}_interrupted"

        class InterruptingExecutor:
            name = "processes"
            in_process = False
            max_workers = 2

            def map(self, fn, items):
                orphan.write_bytes(b"mid-ship when the user hit ^C")
                raise KeyboardInterrupt

            def close(self):
                pass

        with pytest.raises(KeyboardInterrupt):
            run_capture_tasks([_task()], InterruptingExecutor())
        assert not orphan.exists()


class TestWarmPools:
    def test_same_pool_returned(self, warm_pool):
        assert shared_process_executor(2) is warm_pool

    def test_close_is_soft(self, warm_pool):
        warm_pool.close()
        assert warm_pool.map(small_workload, [5]) == [30]

    def test_resolve_executor_routes_specs_to_warm_pool(self, warm_pool):
        executor, owned = resolve_executor("processes:2")
        assert executor is warm_pool
        assert owned
        executor.close()  # soft — the pool stays alive for everyone
        assert executor.map(small_workload, [3]) == [5]

    def test_resolve_executor_private_pool_on_reuse_false(self):
        executor, owned = resolve_executor("processes:1", reuse=False)
        try:
            assert owned
            assert not executor.shared
        finally:
            executor.close()

    def test_broken_pool_rebuilt_on_next_lease(self, warm_pool):
        warm_pool.broken = True
        fresh = None
        try:
            fresh = shared_process_executor(2)
            assert fresh is not warm_pool
            assert fresh.map(small_workload, [4]) == [14]
        finally:
            warm_pool.broken = False
            if fresh is not None and fresh is not warm_pool:
                fresh.shutdown()

    def test_stats_shape(self, warm_pool):
        stats = shared_process_executor(2).stats()
        assert stats["pool_size"] == 2
        assert stats["shared"]
        assert stats["batches"] >= 1
        assert stats["tasks_leased"] >= 1


class TestLeaseChunks:
    def test_small_batches_are_singletons(self):
        assert lease_chunks([1, 2], 4) == [[1], [2]]

    def test_head_chunks_plus_stealable_tail(self):
        leases = lease_chunks(list(range(10)), 2)
        assert [item for lease in leases for item in lease] == \
            list(range(10))
        assert len(leases) == 4  # 2 head chunks + 2 singleton tails
        assert all(len(lease) == 1 for lease in leases[-2:])

    def test_deterministic(self):
        assert lease_chunks(list(range(23)), 3) == \
            lease_chunks(list(range(23)), 3)
