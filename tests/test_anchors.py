"""Anchored segmental diffing (ISSUE 5): anchor selection, the
segmental drivers, the ``anchored:*`` meta-engines, segment-parallel
execution, and segment-granular caching.

The identity contract, pinned by the property suites below:

* ``anchored:views`` is bit-identical to ``views`` *by construction*
  (anchor runs are bulk-matched only when the lock-step scan is exactly
  at a run start, so the scan's state trajectory never changes) — on
  any trace pair, any executor, interning on or off.
* ``anchored:<lcs>`` is bit-identical to its inner engine whenever the
  inner computes its canonical exact answer — structured near-identical
  pairs (hypothesis), and the single-threaded workload scenario pairs
  at sizes where the quadratic core is reached.  On pairs with
  genuinely ambiguous alignments (Derby's interleaved lock-daemon
  entries) or where the inner falls back to its approximate differ,
  the anchored result is *never worse*: at least as many matched
  entries, at most as many differences.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (AnchoredEngine, DiffCache, Session, accepts_cache,
                       accepts_executor, accepts_key_table,
                       available_engines, get_engine, is_cacheable,
                       register_engine, unregister_engine)
from repro.cache.segments import (SegmentCache, segment_digest, segment_key,
                                  shift_result_wire)
from repro.core.anchors import (AnchorConfig, AnchorRun, Gap,
                                anchor_candidates, merge_segment_results,
                                segment_pair, segment_sequences,
                                select_anchor_runs)
from repro.core.diffs import result_identity, result_to_wire
from repro.core.lcs import LcsMemoryError, MemoryBudget, OpCounter
from repro.core.lcs_diff import ALGORITHMS, lcs_diff
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig, view_diff
from repro.exec import (ProcessExecutor, ThreadExecutor,
                        anchored_segment_diff)

from helpers import myfaces_trace, simple_trace, two_thread_trace


def mutate(values, edits):
    """Apply (position, replacement) edits to a value list."""
    out = list(values)
    for position, value in edits:
        out[position] = value
    return out


# -- anchor selection --------------------------------------------------------


class TestAnchorCandidates:
    def test_unique_common_keys_pair_up(self):
        pairs = anchor_candidates([1, 2, 3], [3, 1, 2])
        assert sorted(pairs) == [(0, 1), (1, 2), (2, 0)]

    def test_repeated_keys_excluded_at_max_occurrence_one(self):
        pairs = anchor_candidates([1, 1, 2], [1, 2, 1])
        assert pairs == [(2, 1)]

    def test_unequal_counts_excluded(self):
        assert anchor_candidates([1, 1, 2], [1, 2]) == [(2, 1)]

    def test_histogram_mode_pairs_kth_occurrences(self):
        pairs = anchor_candidates([7, 8, 7], [7, 9, 7], max_occurrence=2)
        assert pairs == [(0, 0), (2, 2)]

    def test_no_compares_charged(self):
        counter = OpCounter()
        select_anchor_runs(list(range(50)), list(range(50)),
                           AnchorConfig(), counter=counter)
        # Candidate discovery and LIS are hash/position work; only run
        # extension compares keys, and a full-cover run extends nowhere.
        assert counter.total == 0


class TestAnchorRuns:
    def test_full_cover_single_run(self):
        runs = select_anchor_runs([1, 2, 3, 4], [1, 2, 3, 4])
        assert runs == [AnchorRun(0, 0, 4)]

    def test_crossing_anchors_dropped_by_lis(self):
        left = list(range(10)) + [100, 101]
        right = [100, 101] + list(range(10))
        runs = select_anchor_runs(left, right)
        assert runs == [AnchorRun(0, 2, 10)]

    def test_min_run_drops_short_runs(self):
        # A lone anchor in crossing context (the patience failure mode).
        left = [50, 1, 1]
        right = [1, 1, 50]
        assert select_anchor_runs(left, right,
                                  AnchorConfig(min_run=2)) == []

    def test_extension_grows_runs_over_repeated_keys(self):
        # 7s repeat (not candidates) but sit in an aligned context.
        left = [1, 7, 7, 2, 9]
        right = [1, 7, 7, 2, 8]
        counter = OpCounter()
        runs = select_anchor_runs(left, right, counter=counter)
        assert runs == [AnchorRun(0, 0, 4)]
        assert counter.total > 0  # extension performed real compares

    def test_extension_respects_neighbour_runs(self):
        runs = select_anchor_runs([1, 2, 9, 3, 4], [1, 2, 8, 3, 4])
        assert runs == [AnchorRun(0, 0, 2), AnchorRun(3, 3, 2)]


class TestSegmentation:
    def test_gap_between_runs(self):
        seg = segment_sequences([1, 2, 9, 9, 3, 4], [1, 2, 8, 3, 4])
        assert seg.runs == [AnchorRun(0, 0, 2), AnchorRun(4, 3, 2)]
        assert seg.gaps == [Gap(2, 4, 2, 3)]

    def test_leading_and_trailing_gaps(self):
        seg = segment_sequences([9, 1, 2, 8], [7, 1, 2, 6, 5])
        assert seg.runs == [AnchorRun(1, 1, 2)]
        assert seg.gaps == [Gap(0, 1, 0, 1), Gap(3, 4, 3, 5)]

    def test_empty_sequences(self):
        seg = segment_sequences([], [])
        assert seg.runs == [] and seg.gaps == []

    def test_one_empty_side_is_one_gap(self):
        seg = segment_sequences([], [1, 2])
        assert seg.runs == [] and seg.gaps == [Gap(0, 0, 0, 2)]

    def test_render_mentions_runs_and_gaps(self):
        text = segment_sequences([1, 2, 9], [1, 2, 8]).render()
        assert "run(s)" in text and "gaps" in text

    @given(st.lists(st.integers(0, 30), max_size=60),
           st.lists(st.integers(0, 30), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_segmentation_invariants(self, left, right):
        seg = segment_sequences(left, right)
        at_l = at_r = 0
        items = [((run.left, run.right), "run", run)
                 for run in seg.runs]
        items.extend(((gap.left_lo, gap.right_lo), "gap", gap)
                     for gap in seg.gaps)
        items.sort(key=lambda item: item[0])
        for _pos, kind, item in items:
            if kind == "run":
                assert (item.left, item.right) == (at_l, at_r)
                for offset in range(item.length):
                    assert left[item.left + offset] == \
                        right[item.right + offset]
                at_l += item.length
                at_r += item.length
            else:
                assert (item.left_lo, item.right_lo) == (at_l, at_r)
                assert item.left_len > 0 or item.right_len > 0
                at_l, at_r = item.left_hi, item.right_hi
        # Together, runs and gaps cover both sequences exactly.
        assert (at_l, at_r) == (len(left), len(right))


# -- merge bookkeeping -------------------------------------------------------


class TestMergeSegmentResults:
    def test_gap_result_count_must_match(self):
        left = simple_trace([1, 2, 3])
        right = simple_trace([1, 2, 4])
        seg = segment_pair(left, right)
        with pytest.raises(ValueError, match="gap"):
            merge_segment_results(left, right, seg,
                                  [None] * (len(seg.gaps) + 1),
                                  counter=OpCounter())

    def test_all_common_merge_matches_everything(self):
        left = simple_trace([1, 2, 3], name="l")
        right = simple_trace([1, 2, 3], name="r")
        seg = segment_pair(left, right)
        merged = merge_segment_results(left, right, seg, [None] * len(seg.gaps),
                                       counter=OpCounter())
        assert merged.num_diffs() == 0
        assert len(merged.match_pairs) == len(left)
        assert merged.sequences == []


# -- anchored LCS ------------------------------------------------------------

#: Edits over a unique-increasing base: replacements draw from a
#: disjoint alphabet so the common keys of a pair are exactly the
#: unedited base values (unique in both, monotone) — the LCS is unique
#: and the segmental computation must reproduce it bit for bit.
base_edits = st.lists(
    st.tuples(st.integers(0, 79), st.integers(0, 1)), max_size=8)


class TestAnchoredLcsIdentity:
    @given(base_edits, base_edits)
    @settings(max_examples=40, deadline=None)
    def test_bit_identity_on_unambiguous_pairs(self, edits_l, edits_r):
        base = list(range(80))
        left = simple_trace(mutate(base, [(p, 1000 + 2 * i)
                                          for i, (p, _) in
                                          enumerate(edits_l)]), name="l")
        right = simple_trace(mutate(base, [(p, 2000 + 2 * i)
                                           for i, (p, _) in
                                           enumerate(edits_r)]), name="r")
        for algorithm in ALGORITHMS:
            inner = lcs_diff(left, right, algorithm)
            anchored = lcs_diff(left, right, algorithm,
                                anchors=AnchorConfig())
            assert result_identity(anchored) == result_identity(inner), \
                algorithm

    @pytest.mark.parametrize("interned", [True, False])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_interned_and_tuple_paths_agree(self, algorithm, interned):
        base = list(range(120))
        left = simple_trace(base, name="l")
        right = simple_trace(mutate(base, [(30, 900), (31, 901),
                                           (90, 902)]), name="r")
        inner = lcs_diff(left, right, algorithm, interned=interned)
        anchored = lcs_diff(left, right, algorithm, interned=interned,
                            anchors=AnchorConfig())
        assert result_identity(anchored) == result_identity(inner)
        assert anchored.counter.total < inner.counter.total

    def test_compare_reduction_on_near_identical_pair(self):
        base = list(range(800))
        left = simple_trace(base, name="l")
        right = simple_trace(mutate(base, [(100, 9000), (400, 9001),
                                           (700, 9002)]), name="r")
        inner = lcs_diff(left, right, "optimized")
        anchored = lcs_diff(left, right, "optimized",
                            anchors=AnchorConfig())
        assert result_identity(anchored) == result_identity(inner)
        assert inner.counter.total >= 3 * max(anchored.counter.total, 1)

    def test_anchoring_survives_budget_that_kills_inner(self):
        """Per-gap DP tables: the segmental path stays under a cell
        budget that makes the whole-pair baseline fail — the paper's
        memory-exhaustion scenario, solved by decomposition."""
        base = list(range(3000))
        right_values = mutate(base, [(1000, 1), (1001, 2), (2000, 3)])
        left = simple_trace(base, name="l")
        right = simple_trace(right_values, name="r")
        budget = MemoryBudget(max_cells=1_000_000)
        with pytest.raises(LcsMemoryError):
            lcs_diff(left, right, "optimized", budget=budget)
        survivor = lcs_diff(left, right, "optimized",
                            budget=MemoryBudget(max_cells=1_000_000),
                            anchors=AnchorConfig())
        assert survivor.num_diffs() > 0
        assert 0 < survivor.peak_cells < 1_000_000


# -- anchored views ----------------------------------------------------------

operation = st.tuples(st.integers(0, 2), st.integers(0, 2),
                      st.integers(0, 6))
programs = st.lists(operation, max_size=40)

METHODS = ("Widget.spin", "Widget.poke", "Widget.drop")


def build_threaded_trace(program, name=""):
    from repro.core.traces import TraceBuilder
    from repro.core.values import prim

    builder = TraceBuilder(name=name)
    main = builder.main_tid
    obj = builder.record_init(main, "Widget", (), serialization="widget")
    tids = {0: main}
    for thread_at, kind, value in program:
        tid = tids.get(thread_at)
        if tid is None:
            tid = tids[thread_at] = builder.record_fork(main)
        if kind == 0:
            builder.record_set(tid, obj, "v", prim(value))
        elif kind == 1:
            builder.record_call(tid, obj, METHODS[value % len(METHODS)],
                                (prim(value),))
            builder.record_return(tid, prim(value))
        else:
            builder.record_get(tid, obj, "v", prim(value))
    for tid in tids.values():
        builder.record_end(tid)
    return builder.build()


class TestAnchoredViewsIdentity:
    """view_diff's anchored mode is identical by construction — pinned
    over arbitrary random multi-threaded pairs, not just friendly
    ones."""

    @given(programs, programs)
    @settings(max_examples=50, deadline=None)
    def test_bit_identity_on_random_threaded_pairs(self, prog_l, prog_r):
        left = build_threaded_trace(prog_l, name="left")
        right = build_threaded_trace(prog_r, name="right")
        plain = view_diff(left, right)
        anchored = view_diff(left, right,
                             config=ViewDiffConfig(anchored=True))
        assert result_identity(anchored) == result_identity(plain)

    def test_myfaces_pair_identity_and_fewer_compares(self):
        left = myfaces_trace(min_range=32, name="old")
        right = myfaces_trace(min_range=1, new_version=True, name="new")
        plain = view_diff(left, right)
        anchored = view_diff(left, right,
                             config=ViewDiffConfig(anchored=True))
        assert result_identity(anchored) == result_identity(plain)
        assert anchored.counter.total <= plain.counter.total

    @pytest.mark.parametrize("interned", [True, False])
    def test_two_thread_identity(self, interned):
        left = two_thread_trace([1, 2, 3, 4, 5], [7, 8, 9], name="l")
        right = two_thread_trace([1, 2, 9, 4, 5], [7, 8], name="r")
        config = ViewDiffConfig(interned=interned)
        anchored_config = ViewDiffConfig(interned=interned, anchored=True)
        assert result_identity(view_diff(left, right,
                                         config=anchored_config)) == \
            result_identity(view_diff(left, right, config=config))


# -- the anchored meta-engines ----------------------------------------------


class TestAnchoredEngineRegistry:
    def test_builtin_combinations_registered(self):
        names = available_engines()
        assert "anchored:views" in names
        for algorithm in ALGORITHMS:
            assert f"anchored:{algorithm}" in names

    def test_capability_flags(self):
        engine = get_engine("anchored:views")
        assert is_cacheable(engine)
        assert accepts_executor(engine)
        assert accepts_key_table(engine)
        assert accepts_cache(engine)
        # Plain LCS engines know nothing of executors or caches.
        assert not accepts_executor(get_engine("optimized"))
        assert not accepts_cache(get_engine("views"))

    def test_dynamic_resolution_of_custom_inner(self):
        class Constant:
            name = "anchor-test-constant"

            def diff(self, left, right, *, config=None, counter=None,
                     budget=None, **kwargs):
                return get_engine("optimized").diff(
                    left, right, config=config, counter=counter)

        register_engine(Constant())
        try:
            engine = get_engine("anchored:anchor-test-constant")
            assert isinstance(engine, AnchoredEngine)
            assert engine.name == "anchored:anchor-test-constant"
            # Not registered: resolved dynamically each time.
            assert "anchored:anchor-test-constant" not in \
                available_engines()
            # Purity is not assumed for third-party inners.
            assert not is_cacheable(engine)
        finally:
            unregister_engine("anchor-test-constant")

    def test_unknown_inner_still_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_engine("anchored:bogus")

    def test_session_runs_anchored_engine(self):
        left = simple_trace(list(range(60)), name="l")
        right = simple_trace(mutate(list(range(60)), [(20, 777)]),
                             name="r")
        result = Session(engine="anchored:optimized").diff(left, right)
        reference = Session(engine="optimized").diff(left, right)
        assert result_identity(result) == result_identity(reference)


# -- segment-parallel execution ----------------------------------------------


@pytest.fixture(scope="module")
def thread_pool():
    with ThreadExecutor(max_workers=2) as executor:
        yield executor


@pytest.fixture(scope="module")
def process_pool():
    with ProcessExecutor(max_workers=2) as executor:
        yield executor


@pytest.fixture(scope="module")
def gapped_pair():
    """A near-identical pair with several two-sided (modify) gaps, so
    gap diffs actually execute."""
    base = list(range(2000))
    edits = [(100, 9001), (101, 9002), (700, 9003), (1400, 9004),
             (1401, 9005), (1900, 9006)]
    return (simple_trace(base, name="l"),
            simple_trace(mutate(base, edits), name="r"))


class TestSegmentExecution:
    def test_threads_identical_to_serial(self, gapped_pair, thread_pool):
        left, right = gapped_pair
        inner = get_engine("optimized")
        serial = anchored_segment_diff(left, right, inner)
        workers: list[str] = []
        threaded = anchored_segment_diff(left, right, inner,
                                         executor=thread_pool,
                                         workers=workers)
        assert result_identity(threaded) == result_identity(serial)
        assert workers and all(w.startswith("thread:") for w in workers)
        assert threaded.counter.total == serial.counter.total

    def test_gap_segments_execute_in_worker_processes(self, gapped_pair,
                                                      process_pool):
        left, right = gapped_pair
        inner = get_engine("optimized")
        serial = anchored_segment_diff(left, right, inner)
        workers: list[str] = []
        processed = anchored_segment_diff(left, right, inner,
                                          executor=process_pool,
                                          workers=workers)
        assert result_identity(processed) == result_identity(serial)
        parent = f"pid:{os.getpid()}"
        assert workers
        assert all(w.startswith("pid:") for w in workers)
        assert any(w != parent for w in workers)
        assert processed.counter.total == serial.counter.total

    def test_engine_executor_kwarg_routes_segments(self, gapped_pair,
                                                   process_pool):
        left, right = gapped_pair
        engine = get_engine("anchored:optimized")
        result = engine.diff(left, right, executor=process_pool)
        reference = get_engine("optimized").diff(left, right)
        assert result_identity(result) == result_identity(reference)

    def test_unresolvable_inner_falls_back_to_inline(self, gapped_pair):
        """An inner engine the worker processes cannot resolve by name
        (registered after the pool was spawned, or any spawn-start
        platform) must not fail the diff — the gaps run inline."""
        left, right = gapped_pair

        class LateRegistered:
            name = "anchor-test-late"

            def diff(self, inner_left, inner_right, *, config=None,
                     counter=None, budget=None, **kwargs):
                return get_engine("optimized").diff(
                    inner_left, inner_right, config=config,
                    counter=counter)

        with ProcessExecutor(max_workers=2) as pool:
            register_engine(LateRegistered())
            try:
                workers: list[str] = []
                result = anchored_segment_diff(
                    left, right, get_engine("anchor-test-late"),
                    executor=pool, workers=workers)
            finally:
                unregister_engine("anchor-test-late")
        assert workers and all(w == "inline" for w in workers)
        reference = get_engine("optimized").diff(left, right)
        assert result_identity(result) == result_identity(reference)

    def test_budget_calls_stay_serial_and_budgeted(self, gapped_pair,
                                                   process_pool):
        left, right = gapped_pair
        budget = MemoryBudget(max_cells=10_000)
        result = anchored_segment_diff(left, right,
                                       get_engine("optimized"),
                                       budget=budget,
                                       executor=process_pool)
        assert budget.peak_cells > 0  # gap tables were really requested
        assert result.peak_cells == budget.peak_cells


# -- segment-granular caching ------------------------------------------------


class TestSegmentDigest:
    def test_position_independent(self):
        trace = simple_trace(list(range(40)), name="t")
        assert segment_digest(trace[5:15]) != segment_digest(trace[5:16])
        # Same content at different offsets digests the same once the
        # entry ids are rebased (here: identical values re-built at an
        # offset).
        shifted = simple_trace([0] * 7 + list(range(40)), name="s")
        assert segment_digest(trace[8:12]) == segment_digest(
            shifted[15:19])

    def test_empty_trace_digest(self):
        assert segment_digest(Trace([])) == segment_digest(Trace([]))

    def test_key_namespaced_from_whole_result_keys(self):
        left = simple_trace([1, 2, 3], name="l")
        right = simple_trace([1, 2, 4], name="r")
        from repro.cache import cache_key
        assert segment_key(left, right, "optimized", None) != \
            cache_key(left, right, "optimized", None)


class TestShiftResultWire:
    def test_round_trip(self):
        left = simple_trace([1, 2, 9], name="l")
        right = simple_trace([1, 2, 8], name="r")
        wire = result_to_wire(lcs_diff(left, right))
        shifted = shift_result_wire(wire, 10, 20)
        back = shift_result_wire(shifted, -10, -20)
        assert back == wire
        assert shifted != wire

    def test_eof_sentinel_never_shifted(self):
        wire = {"similar_left": [-1, 3], "similar_right": [0],
                "match_pairs": [[-1, -1]], "anchor_pairs": [],
                "sequences": []}
        shifted = shift_result_wire(wire, 5, 5)
        assert shifted["similar_left"] == [-1, 8]
        assert shifted["match_pairs"] == [[-1, -1]]


class TestSegmentCache:
    def test_warm_rerun_hits_every_gap(self, gapped_pair, tmp_path):
        left, right = gapped_pair
        cache = DiffCache(tmp_path / "cache")
        inner = get_engine("optimized")
        cold_workers: list[str] = []
        cold = anchored_segment_diff(left, right, inner, cache=cache,
                                     workers=cold_workers)
        assert cold_workers and "cache" not in cold_workers
        warm_workers: list[str] = []
        warm = anchored_segment_diff(left, right, inner, cache=cache,
                                     workers=warm_workers)
        assert warm_workers and all(w == "cache" for w in warm_workers)
        assert result_identity(warm) == result_identity(cold)
        # Cold totals credited per segment: identical compare counts.
        assert warm.counter.total == cold.counter.total

    def test_disk_tier_survives_fresh_handle(self, gapped_pair, tmp_path):
        left, right = gapped_pair
        inner = get_engine("optimized")
        cold = anchored_segment_diff(left, right, inner,
                                     cache=DiffCache(tmp_path / "c"))
        workers: list[str] = []
        warm = anchored_segment_diff(left, right, inner,
                                     cache=DiffCache(tmp_path / "c"),
                                     workers=workers)
        assert workers and all(w == "cache" for w in workers)
        assert result_identity(warm) == result_identity(cold)

    def test_edited_scenario_rediffs_only_changed_gaps(self, tmp_path):
        """The payoff: an edit early in a scenario shifts every later
        entry id, yet unchanged gaps still hit (position-relative
        digests and rebased wires)."""
        base = list(range(2000))
        edits = [(100, 9001), (700, 9003), (1400, 9004), (1900, 9006)]
        left = simple_trace(base, name="l")
        right = simple_trace(mutate(base, edits), name="r")
        cache = DiffCache(tmp_path / "cache")
        inner = get_engine("optimized")
        anchored_segment_diff(left, right, inner, cache=cache)
        # Insert three entries at the very front of the right trace:
        # every original entry's eid shifts by three.
        edited = simple_trace([55555, 55556, 55557] +
                              mutate(base, edits), name="r2")
        workers: list[str] = []
        rerun = anchored_segment_diff(left, edited, inner, cache=cache,
                                      workers=workers)
        hits = [w for w in workers if w == "cache"]
        misses = [w for w in workers if w != "cache"]
        assert len(hits) >= 3      # unchanged interior gaps reused
        assert len(misses) <= 2    # only the edited region recomputed
        reference = get_engine("optimized").diff(left, edited)
        assert result_identity(rerun) == result_identity(reference)

    def test_corrupt_segment_entry_is_a_miss(self, gapped_pair, tmp_path):
        left, right = gapped_pair
        cache = DiffCache(tmp_path / "cache")
        inner = get_engine("optimized")
        cold = anchored_segment_diff(left, right, inner, cache=cache)
        for entry in (tmp_path / "cache").glob("*.json"):
            entry.write_text(entry.read_text()[:40])
        workers: list[str] = []
        recovered = anchored_segment_diff(left, right, inner,
                                          cache=DiffCache(tmp_path / "cache"),
                                          workers=workers)
        assert workers and all(w != "cache" for w in workers)
        assert result_identity(recovered) == result_identity(cold)

    def test_segment_adapter_rejects_wrong_pair(self, tmp_path):
        left = simple_trace([1, 2, 9, 4], name="l")
        right = simple_trace([1, 2, 8, 4], name="r")
        cache = DiffCache(tmp_path / "cache")
        adapter = SegmentCache(cache)
        result = lcs_diff(left, right)
        key = adapter.key_for(left, right, "optimized", None)
        adapter.put(key, result, left, right)
        assert adapter.get(key, left, right) is not None
        stranger = simple_trace([5], name="s")
        assert adapter.get(key, stranger, stranger) is None

    def test_session_cache_flows_to_segments(self, tmp_path):
        """A whole-result miss (edited trace) still hits at segment
        granularity through Session's one cache handle."""
        base = list(range(1500))
        left = simple_trace(base, name="l")
        right = simple_trace(mutate(base, [(200, 901), (1200, 902)]),
                             name="r")
        session = Session(engine="anchored:optimized",
                          cache=tmp_path / "cache")
        session.diff(left, right)
        edited = simple_trace(
            mutate(base, [(200, 901), (700, 955), (1200, 902)]),
            name="r-edited")
        before = session.cache.stats().hits
        result = session.diff(left, edited)
        assert session.cache.stats().hits > before  # segment hits
        reference = get_engine("optimized").diff(left, edited)
        assert result_identity(result) == result_identity(reference)


# -- degenerate paths (hardening satellite) ---------------------------------


class TestDegenerateSegmentation:
    @pytest.mark.parametrize("engine", ["anchored:views",
                                        "anchored:optimized"])
    def test_empty_vs_empty(self, engine):
        result = get_engine(engine).diff(Trace([], name="a"),
                                         Trace([], name="b"))
        assert result.num_diffs() == 0
        assert result.sequences == []

    @pytest.mark.parametrize("engine", ["anchored:views",
                                        "anchored:optimized"])
    def test_empty_vs_full(self, engine):
        full = simple_trace([1, 2, 3], name="full")
        result = get_engine(engine).diff(Trace([], name="e"), full)
        assert result.num_diffs() == len(full)
        [sequence] = result.sequences
        assert sequence.kind == "insert"

    @pytest.mark.parametrize("engine", available_engines())
    def test_all_common_pair(self, engine):
        left = simple_trace([3, 1, 4, 1, 5], name="l")
        right = simple_trace([3, 1, 4, 1, 5], name="r")
        result = get_engine(engine).diff(left, right)
        assert result.num_diffs() == 0
        assert len(result.match_pairs) == len(left)

    @pytest.mark.parametrize("engine", available_engines())
    def test_single_gap_pair(self, engine):
        left = simple_trace([1, 2, 3, 4, 5, 6], name="l")
        right = simple_trace([1, 2, 9, 4, 5, 6], name="r")
        result = get_engine(engine).diff(left, right)
        assert result.num_diffs() == 2
        [sequence] = result.sequences
        assert sequence.kind == "modify"


# -- the scenario property matrix -------------------------------------------


def _scenario_pairs():
    """One near-identical suspected pair per workload, captured once.

    minidb (Derby) interleaves its lock-daemon thread, so its pairs
    carry genuinely ambiguous repeated-key alignments; minixslt and
    minijs are single-threaded and unambiguous.
    """
    from repro.workloads.harness import SCENARIOS, capture_scenario_traces
    from repro.workloads.minijs import scenario as minijs
    from repro.workloads.minijs.bug_registry import MINIJS_BUGS

    pairs = {}
    for name, key in (("minixslt", "Xalan-1725"), ("minidb", "Derby-1633")):
        old_bad, new_bad, _old_ok, _new_ok = capture_scenario_traces(
            SCENARIOS[key])
        pairs[name] = (old_bad, new_bad)
    old, new = minijs.trace_pair(MINIJS_BUGS.get("MF-STR-COERCE"), 6)
    pairs["minijs"] = (old, new)
    return pairs


@pytest.fixture(scope="module")
def scenario_pairs():
    return _scenario_pairs()


#: Slice budget per engine: sizes at which the quadratic engines reach
#: their exact DP core (identity is only specified where the inner
#: engine is exact).
ENGINE_SLICES = {"views": 4000, "optimized": 1500, "fast": 1500,
                 "dp": 700, "hirschberg": 700}


class TestScenarioIdentityMatrix:
    """The ISSUE's property suite: anchored engine vs inner engine
    across all inner engines x interned on/off x serial/threads/
    processes executors x the three workload scenario pairs."""

    @pytest.mark.parametrize("interned", [True, False])
    @pytest.mark.parametrize("engine", list(ENGINE_SLICES))
    @pytest.mark.parametrize("workload", ["minixslt", "minijs"])
    def test_bit_identity_single_threaded_workloads(
            self, scenario_pairs, workload, engine, interned,
            thread_pool, process_pool):
        size = ENGINE_SLICES[engine]
        left, right = scenario_pairs[workload]
        left, right = left[:size], right[:size]
        config = ViewDiffConfig(interned=interned)
        inner = get_engine(engine).diff(left, right, config=config)
        anchored_engine = get_engine(f"anchored:{engine}")
        for executor in (None, thread_pool, process_pool):
            anchored = anchored_engine.diff(left, right, config=config,
                                            executor=executor)
            assert result_identity(anchored) == result_identity(inner), \
                (workload, engine, interned,
                 executor.name if executor else "serial")

    @pytest.mark.parametrize("engine", list(ENGINE_SLICES))
    def test_minidb_anchored_never_worse(self, scenario_pairs, engine,
                                         process_pool):
        """Derby's interleaved lock-daemon entries make some LCS ties
        genuinely ambiguous, so the contract there is: same or better
        alignment, never worse — and strict bit-identity for views
        (whose anchored mode cannot change the scan trajectory)."""
        size = ENGINE_SLICES[engine]
        left, right = scenario_pairs["minidb"]
        left, right = left[:size], right[:size]
        inner = get_engine(engine).diff(left, right)
        for executor in (None, process_pool):
            anchored = get_engine(f"anchored:{engine}").diff(
                left, right, executor=executor)
            if engine == "views":
                assert result_identity(anchored) == \
                    result_identity(inner)
            assert len(anchored.match_pairs) >= len(inner.match_pairs)
            assert anchored.num_diffs() <= inner.num_diffs()
            assert anchored.counter.total <= inner.counter.total
