"""Tests for capture execution over the executor layer — including the
process-isolated workers that break the global capture lock."""

import os
import threading

import pytest

from repro.api.session import CAPTURE_LOCK, Session
from repro.capture.filters import TraceFilter
from repro.core.keytable import KeyTable
from repro.exec import (CaptureOutcome, CaptureTask, ProcessExecutor,
                        RemoteCaptureError, SerialExecutor, ThreadExecutor,
                        capture_call, run_capture_tasks)
from repro.exec.capture import ensure_portable, resolve_callable


class Service:
    """A small traced workload (module-level, so it pickles)."""

    def __init__(self, seed):
        self.total = seed

    def step(self, value):
        self.total += value
        return self.total


def run_service(values):
    svc = Service(0)
    for value in values:
        svc.step(value)
    return svc.total


def run_failing(values):
    run_service(values)
    raise ValueError("workload exploded")


def run_unpicklable_result(values):
    run_service(values)
    return threading.Lock()  # locks cannot ride the wire home


FILTER = TraceFilter(include_modules=("test_exec_capture",))


def _task(values=(1, 2, 3), func=run_service, name="svc"):
    return CaptureTask(func=func, args=(tuple(values),), name=name,
                       filter=FILTER)


def _keys(trace):
    return [entry.key() for entry in trace.entries]


@pytest.fixture(scope="module")
def process_pool():
    with ProcessExecutor(max_workers=2) as ex:
        yield ex


class TestSerialCapture:
    def test_captures_under_lock(self):
        outcome = run_capture_tasks([_task()], "serial")[0]
        assert outcome.ok
        assert outcome.name == "svc"
        assert outcome.worker.startswith("thread:")
        assert outcome.seconds > 0
        assert any(getattr(e.event, "method", None) == "Service.step"
                   for e in outcome.trace.entries)

    def test_interns_into_caller_table(self):
        table = KeyTable()
        outcome = run_capture_tasks([_task()], None, key_table=table)[0]
        assert outcome.trace.key_table is table
        assert len(outcome.trace.key_ids) == len(outcome.trace)

    def test_result_value_preserved(self):
        outcome = run_capture_tasks([_task(values=(5, 7))], "serial")[0]
        assert outcome.result == 12

    def test_workload_error_captured_not_raised(self):
        outcome = run_capture_tasks([_task(func=run_failing)], "serial")[0]
        assert not outcome.ok
        assert isinstance(outcome.error, ValueError)
        assert outcome.trace is not None
        assert any(getattr(e.event, "method", None) == "Service.step"
                   for e in outcome.trace.entries)


class TestProcessCapture:
    def test_captures_in_worker_process(self, process_pool):
        outcome = run_capture_tasks([_task()], process_pool)[0]
        assert outcome.ok
        assert outcome.worker.startswith("pid:")
        assert int(outcome.worker.split(":")[1]) != os.getpid()
        assert outcome.result == 6

    def test_trace_identical_to_in_process_capture(self, process_pool):
        local = run_capture_tasks([_task()], "serial")[0]
        remote = run_capture_tasks([_task()], process_pool)[0]
        assert _keys(remote.trace) == _keys(local.trace)

    def test_batch_runs_on_distinct_workers(self, process_pool):
        tasks = [_task(name=f"svc{i}") for i in range(4)]
        outcomes = run_capture_tasks(tasks, process_pool)
        assert [o.name for o in outcomes] == [f"svc{i}" for i in range(4)]
        assert all(o.ok for o in outcomes)
        assert {o.worker for o in outcomes} <= {
            f"pid:{pid}" for pid in process_pool.worker_pids}

    def test_rehomes_key_column_into_caller_table(self, process_pool):
        table = KeyTable()
        outcome = run_capture_tasks([_task()], process_pool,
                                    key_table=table)[0]
        trace = outcome.trace
        assert trace.key_table is table
        keys = table.keys()
        assert [keys[kid] for kid in trace.key_ids] == _keys(trace)

    def test_two_captures_share_one_id_space(self, process_pool):
        table = KeyTable()
        outcomes = run_capture_tasks(
            [_task(values=(1, 2)), _task(values=(1, 9))],
            process_pool, key_table=table)
        ids_a = list(table.ids_for(outcomes[0].trace))
        ids_b = list(table.ids_for(outcomes[1].trace))
        # Equal =e keys across the two traces got equal dense ids.
        keys_a, keys_b = _keys(outcomes[0].trace), _keys(outcomes[1].trace)
        for i, ka in enumerate(keys_a):
            for j, kb in enumerate(keys_b):
                assert (ka == kb) == (ids_a[i] == ids_b[j])

    def test_remote_error_round_trips_as_remote_capture_error(
            self, process_pool):
        outcome = run_capture_tasks([_task(func=run_failing)],
                                    process_pool)[0]
        assert not outcome.ok
        assert isinstance(outcome.error, RemoteCaptureError)
        assert outcome.error.error_type == "ValueError"
        assert "workload exploded" in str(outcome.error)
        assert outcome.trace is not None

    def test_unpicklable_result_dropped_not_fatal(self, process_pool):
        outcome = run_capture_tasks([_task(func=run_unpicklable_result)],
                                    process_pool)[0]
        assert outcome.ok
        assert outcome.result is None
        assert outcome.trace is not None

    def test_unpicklable_task_fails_fast_with_guidance(self, process_pool):
        task = CaptureTask(func=lambda x: x, name="closure")
        with pytest.raises(TypeError, match="not picklable"):
            run_capture_tasks([task], process_pool)

    def test_capture_lock_not_needed_by_workers(self, process_pool):
        # Holding the in-process lock must not stall process captures.
        with CAPTURE_LOCK:
            outcome = run_capture_tasks([_task()], process_pool)[0]
        assert outcome.ok

    def test_callable_by_reference(self, process_pool):
        task = CaptureTask(func="test_exec_capture:run_service",
                           args=((2, 3),), name="ref", filter=FILTER)
        outcome = run_capture_tasks([task], process_pool)[0]
        assert outcome.ok
        assert outcome.result == 5


class TestThreadCapture:
    def test_threads_serialise_on_the_lock(self):
        tasks = [_task(name=f"svc{i}") for i in range(3)]
        with ThreadExecutor(max_workers=3) as ex:
            outcomes = run_capture_tasks(tasks, ex)
        assert all(o.ok for o in outcomes)
        for outcome in outcomes:
            assert _keys(outcome.trace) == _keys(outcomes[0].trace)


class TestResolveCallable:
    def test_callables_pass_through(self):
        assert resolve_callable(run_service) is run_service

    def test_dotted_reference(self):
        ref = resolve_callable("repro.core.keytable:KeyTable.for_pair")
        assert callable(ref)

    def test_malformed_reference_rejected(self):
        with pytest.raises(ValueError, match="package.module:attr"):
            resolve_callable("no-colon-here")

    def test_non_callable_target_rejected(self):
        with pytest.raises(TypeError, match="does not name a callable"):
            resolve_callable("repro.analysis.serialize:FORMAT_VERSION")


class TestEnsurePortable:
    def test_portable_task_passes(self):
        ensure_portable(_task())

    def test_closure_rejected_with_actionable_message(self):
        with pytest.raises(TypeError, match="module-level callables"):
            ensure_portable(CaptureTask(func=lambda: None, name="lam"))


class TestCaptureCall:
    def test_one_shot_serial(self):
        result = capture_call(run_service, (1, 2), name="one",
                              filter=FILTER)
        assert result.ok
        assert result.result == 3
        assert result.trace.name == "one"


class TestSessionExecutorIntegration:
    def test_session_capture_through_processes(self, process_pool):
        session = (Session(executor=process_pool)
                   .with_filter(include_modules=("test_exec_capture",)))
        captured = session.capture(run_service, (4, 5), name="s")
        assert captured.result == 9
        assert captured.trace.key_table is session.key_table

    def test_session_default_is_serial(self):
        assert Session().executor.name == "serial"

    def test_with_executor_and_derive_share_pool(self, process_pool):
        session = Session().with_executor(process_pool)
        assert session.derive().executor is process_pool

    def test_capture_batch_outcomes(self, process_pool):
        session = (Session(executor=process_pool)
                   .with_filter(include_modules=("test_exec_capture",)))
        outcomes = session.capture_batch(
            [_task(name="a"), _task(name="b")])
        assert [o.name for o in outcomes] == ["a", "b"]
        assert all(isinstance(o, CaptureOutcome) and o.ok
                   for o in outcomes)
        for outcome in outcomes:
            assert outcome.trace.key_table is session.key_table

    def test_run_scenario_matches_serial(self, process_pool):
        from repro.workloads.minixslt import scenario as xalan
        flt = TraceFilter(include_modules=("repro.workloads.minixslt",))
        parallel = Session(executor=process_pool, filter=flt).run_scenario(
            xalan.run_1725_old, xalan.run_1725_new,
            regressing_input=xalan.REGRESSING_INPUT_1725,
            correct_input=xalan.CORRECT_INPUT_1725)
        serial = Session(filter=flt).run_scenario(
            xalan.run_1725_old, xalan.run_1725_new,
            regressing_input=xalan.REGRESSING_INPUT_1725,
            correct_input=xalan.CORRECT_INPUT_1725)
        assert parallel.report.set_sizes() == serial.report.set_sizes()
        assert sorted(parallel.suspected.similar_left) == \
            sorted(serial.suspected.similar_left)
        assert parallel.workers
        assert all(worker.startswith("pid:")
                   for worker in parallel.workers)

    def test_serial_scenario_reports_thread_workers(self):
        session = (Session()
                   .with_filter(include_modules=("test_exec_capture",)))
        result = session.run_scenario(run_service, run_service, (1, 2))
        assert result.workers
        assert all(worker.startswith("thread:")
                   for worker in result.workers)
