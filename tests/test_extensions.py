"""Tests for the extension analyses (protocol inference, impact)."""

from repro.analysis.impact import ImpactReport, impact_of, impacted_methods
from repro.analysis.protocols import (Protocol, diff_protocols,
                                      infer_protocols)
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.core.view_diff import view_diff

from helpers import myfaces_trace, simple_trace, two_thread_trace


def account_trace(sequences: list[list[str]], name: str = ""):
    """One Account object per sequence, calling methods in order."""
    builder = TraceBuilder(name=name)
    tid = builder.main_tid
    for sequence in sequences:
        obj = builder.record_init(tid, "Account", ())
        for method in sequence:
            builder.record_call(tid, obj, method, ())
            builder.record_return(tid)
    builder.record_end(tid)
    return builder.build()


class TestProtocolInference:
    def test_transitions_from_call_sequences(self):
        trace = account_trace([["open", "deposit", "close"]])
        protocols = infer_protocols(trace)
        protocol = protocols["Account"]
        assert protocol.allows(["open", "deposit", "close"])
        assert not protocol.allows(["deposit"])  # never first
        assert not protocol.allows(["open", "close", "deposit"])

    def test_multiple_instances_merge(self):
        trace = account_trace([["open", "close"],
                               ["open", "deposit", "close"]])
        protocol = infer_protocols(trace)["Account"]
        assert protocol.instances == 2
        assert protocol.allows(["open", "close"])
        assert protocol.allows(["open", "deposit", "close"])

    def test_support_counts(self):
        trace = account_trace([["open", "close"], ["open", "close"]])
        protocol = infer_protocols(trace)["Account"]
        assert protocol.support[("<start>", "open")] == 2

    def test_methods_and_size(self):
        trace = account_trace([["open", "deposit", "close"]])
        protocol = infer_protocols(trace)["Account"]
        assert protocol.methods() == {"open", "deposit", "close"}
        assert protocol.transition_count() == 3

    def test_render(self):
        trace = account_trace([["open"]])
        text = infer_protocols(trace)["Account"].render()
        assert "open" in text
        assert "protocol Account" in text

    def test_objects_without_init_skipped(self):
        builder = TraceBuilder()
        tid = builder.main_tid
        ghost = builder.registry.register(99, "Ghost")
        builder.record_call(tid, ghost, "spook", ())
        builder.record_return(tid)
        trace = builder.build()
        assert "Ghost" not in infer_protocols(trace)


class TestProtocolDiff:
    def test_added_and_removed_transitions(self):
        old = infer_protocols(account_trace([["open", "close"]]))
        new = infer_protocols(account_trace([["open", "audit", "close"]]))
        [diff] = diff_protocols(old, new)
        assert ("open", "audit") in diff.added
        assert ("open", "close") in diff.removed

    def test_identical_protocols_no_diff(self):
        old = infer_protocols(account_trace([["open", "close"]]))
        new = infer_protocols(account_trace([["open", "close"]]))
        assert diff_protocols(old, new) == []

    def test_new_class_all_added(self):
        old: dict[str, Protocol] = {}
        new = infer_protocols(account_trace([["open"]]))
        [diff] = diff_protocols(old, new)
        assert diff.removed == []
        assert diff.added


class TestImpact:
    def test_single_modification_impact(self):
        left = simple_trace([1, 2, 3], name="L")
        right = simple_trace([1, 9, 3], name="R")
        report = impact_of(view_diff(left, right))
        assert report.total_differences == 2
        assert "Cell" in report.classes

    def test_no_differences_empty_impact(self):
        left = simple_trace([1, 2], name="L")
        right = simple_trace([1, 2], name="R")
        report = impact_of(view_diff(left, right))
        assert report.total_differences == 0
        assert report.methods == {}

    def test_motivating_example_impact(self):
        left = myfaces_trace(min_range=32, name="old")
        right = myfaces_trace(min_range=1, new_version=True, name="new")
        report = impact_of(view_diff(left, right))
        assert "NumericEntityUtil" in report.classes
        methods = impacted_methods(view_diff(left, right))
        assert "SP.setRequestType" in methods

    def test_thread_attribution(self):
        left = two_thread_trace([1, 2], [5], name="L")
        right = two_thread_trace([1, 2], [6], name="R")
        report = impact_of(view_diff(left, right))
        assert report.impacted_thread_ids() == [1]

    def test_ranking_order(self):
        report = ImpactReport(methods={"a": 3, "b": 7}, classes={"X": 2})
        assert report.ranked_methods()[0] == ("b", 7)
        assert report.ranked_classes() == [("X", 2)]

    def test_render(self):
        left = simple_trace([1, 2, 3], name="L")
        right = simple_trace([1, 9, 3], name="R")
        text = impact_of(view_diff(left, right)).render()
        assert "impact:" in text
