"""Tests for the Session layer (the new public API entry object)."""

import pytest

from repro import RPrism
from repro.api import Session, SessionResult, TraceStore
from repro.capture.filters import TraceFilter
from repro.core.regression import MODE_SUBTRACT
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig

from helpers import myfaces_trace

MODULE_FILTER = TraceFilter(include_modules=(__name__,))


class Counter:
    """Tiny traced workload: the new version double-increments."""

    def __init__(self):
        self.value = 0

    def bump(self, amount):
        self.value = self.value + amount
        return self.value


def old_version(amounts):
    counter = Counter()
    for amount in amounts:
        counter.bump(amount)
    return counter.value


def new_version(amounts):
    counter = Counter()
    for amount in amounts:
        counter.bump(amount)
        counter.bump(1)  # BUG: spurious extra increment
    return counter.value


class TestFluentConfiguration:
    def test_builders_chain(self, tmp_path):
        session = (Session()
                   .with_config(window=8, relaxed=False)
                   .with_filter(include_modules=("x",))
                   .with_store(tmp_path / "s")
                   .with_engine("optimized")
                   .with_mode(MODE_SUBTRACT))
        assert isinstance(session, Session)
        assert session.config.window == 8
        assert session.config.relaxed is False
        assert session.filter.include_modules == ("x",)
        assert isinstance(session.store, TraceStore)
        assert session.engine.name == "optimized"
        assert session.mode == MODE_SUBTRACT

    def test_with_config_object(self):
        config = ViewDiffConfig(radius=2)
        session = Session().with_config(config)
        assert session.config is config

    def test_with_config_rejects_mixed_forms(self):
        with pytest.raises(ValueError):
            Session().with_config(ViewDiffConfig(), window=3)

    def test_with_filter_rejects_mixed_forms(self):
        with pytest.raises(ValueError):
            Session().with_filter(TraceFilter(), include_modules=("x",))

    def test_derive_overrides_engine_keeps_store(self, tmp_path):
        base = Session(store=tmp_path / "s")
        derived = base.derive(engine="dp")
        assert derived.engine.name == "dp"
        assert derived.store is base.store
        assert base.engine.name == "views"


class TestLifecycle:
    def test_capture_returns_result_and_trace(self):
        session = Session().with_filter(MODULE_FILTER)
        captured = session.capture(old_version, [1, 2], name="run")
        assert captured.result == 3
        assert isinstance(captured.trace, Trace)
        assert captured.trace.name == "run"
        assert session.trace_call(old_version, [1]).entries

    def test_capture_store_as(self, tmp_path):
        session = (Session().with_filter(MODULE_FILTER)
                   .with_store(tmp_path / "s"))
        session.capture(old_version, [1, 2], name="r", store_as="runs/r")
        assert "runs/r" in session.store

    def test_store_as_without_store_raises(self):
        session = Session().with_filter(MODULE_FILTER)
        with pytest.raises(RuntimeError, match="store"):
            session.capture(old_version, [1], store_as="x")

    def test_ingest_and_resolve(self, tmp_path):
        from repro.analysis.serialize import save_trace
        trace = myfaces_trace(name="m")
        path = tmp_path / "m.jsonl"
        save_trace(trace, path)
        session = Session().with_store(tmp_path / "s")
        ingested = session.ingest(path, store_as="m")
        assert len(ingested) == len(trace)
        assert len(session.resolve_trace("m")) == len(trace)  # store key
        assert len(session.resolve_trace(str(path))) == len(trace)  # path
        assert session.resolve_trace(trace) is trace  # passthrough

    def test_resolve_unknown_reference(self, tmp_path):
        session = Session().with_store(tmp_path / "s")
        with pytest.raises(KeyError):
            session.resolve_trace("absent")
        with pytest.raises(FileNotFoundError):
            Session().resolve_trace("absent.jsonl")

    def test_diff_accepts_store_keys(self, tmp_path):
        session = Session().with_store(tmp_path / "s")
        session.ingest(myfaces_trace(min_range=32, name="old"),
                       store_as="old")
        session.ingest(myfaces_trace(min_range=1, new_version=True,
                                     name="new"), store_as="new")
        result = session.diff("old", "new")
        assert result.num_diffs() > 0
        assert session.web("old").counts()["total"] > 0

    def test_diff_engine_override(self):
        old = myfaces_trace(min_range=32, name="old")
        new = myfaces_trace(min_range=1, new_version=True, name="new")
        session = Session()
        assert session.diff(old, new).algorithm == "views"
        assert session.diff(old, new,
                            engine="dp").algorithm == "lcs-dp"


class TestRunScenario:
    def test_full_recipe(self):
        session = Session().with_filter(MODULE_FILTER)
        result = session.run_scenario(old_version, new_version,
                                      [1, 2, 3], [0], name="counter")
        assert isinstance(result, SessionResult)
        assert result.scenario == "counter"
        assert result.engine == "views"
        assert result.suspected.num_diffs() > 0
        assert result.expected is not None
        assert result.regression is not None
        assert sorted(result.traces) == ["new/correct", "new/regressing",
                                         "old/correct", "old/regressing"]
        assert result.compares() > 0
        assert len(result.diffs()) == 3
        assert "suspected diff" in result.render()

    def test_unattended_configuration(self):
        session = Session().with_filter(MODULE_FILTER)
        result = session.run_scenario(old_version, new_version, [1, 2])
        assert result.expected is None
        assert result.regression is None
        assert len(result.diffs()) == 1
        assert sorted(result.traces) == ["new/regressing", "old/regressing"]

    def test_store_prefix_persists_all_roles(self, tmp_path):
        session = (Session().with_filter(MODULE_FILTER)
                   .with_store(tmp_path / "s"))
        result = session.run_scenario(old_version, new_version,
                                      [1, 2], [0],
                                      store_prefix="counter")
        assert result.store_keys == (
            "counter/old/regressing", "counter/new/regressing",
            "counter/old/correct", "counter/new/correct")
        for key in result.store_keys:
            assert key in session.store

    def test_stored_scenario_matches_live(self, tmp_path):
        session = (Session().with_filter(MODULE_FILTER)
                   .with_store(tmp_path / "s"))
        live = session.run_scenario(old_version, new_version,
                                    [1, 2], [0], store_prefix="c")
        offline = session.run_stored_scenario(
            suspected=("c/old/regressing", "c/new/regressing"),
            expected=("c/old/correct", "c/new/correct"),
            regression=("c/new/correct", "c/new/regressing"))
        assert offline.suspected.num_diffs() == live.suspected.num_diffs()
        assert (offline.report.set_sizes() == live.report.set_sizes())

    def test_engine_override_recorded(self):
        session = Session().with_filter(MODULE_FILTER)
        result = session.run_scenario(old_version, new_version,
                                      [1, 2], engine="optimized")
        assert result.engine == "optimized"
        assert result.suspected.algorithm == "lcs-optimized"


class TestRPrismShim:
    def test_same_candidates_as_session(self):
        tool = RPrism(filter=MODULE_FILTER)
        session = Session().with_filter(MODULE_FILTER)
        via_shim = tool.analyze_regression_scenario(
            old_version, new_version, [1, 2, 3], [0])
        via_session = session.run_scenario(old_version, new_version,
                                           [1, 2, 3], [0])
        assert isinstance(via_shim, SessionResult)
        assert (via_shim.report.set_sizes()
                == via_session.report.set_sizes())

    def test_legacy_surface_still_works(self):
        tool = RPrism(filter=MODULE_FILTER)
        old = tool.trace_call(old_version, [1, 2], name="old")
        new = tool.trace_call(new_version, [1, 2], name="new")
        result = tool.diff(old, new)
        assert result.num_diffs() > 0
        assert tool.diff(old, new, algorithm="dp").algorithm == "lcs-dp"
        assert tool.web(old).counts()["total"] > 0
        report = tool.analyze(result)
        assert report.candidates
        assert tool.config.window == ViewDiffConfig().window
        assert tool.filter is MODULE_FILTER

    def test_record_fields_passthrough(self):
        tool = RPrism(filter=MODULE_FILTER, record_fields=True)
        assert tool.record_fields is True
        # Writing through the legacy attribute must reach the session
        # the shim delegates to, not land on a dead shadow attribute.
        tool.record_fields = False
        assert tool.session.record_fields is False
        assert RPrism(record_fields=False).record_fields is False
