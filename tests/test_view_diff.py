"""Tests for the views-based differencing semantics (Fig. 12)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcs_diff import lcs_diff
from repro.core.view_diff import ViewDiffConfig, view_diff

from helpers import myfaces_trace, simple_trace, two_thread_trace

value_lists = st.lists(st.integers(min_value=0, max_value=9), max_size=25)


class TestLockStep:
    def test_identical_traces(self):
        left = simple_trace([1, 2, 3], name="L")
        right = simple_trace([1, 2, 3], name="R")
        result = view_diff(left, right)
        assert result.num_diffs() == 0
        assert len(result.match_pairs) == len(left)

    def test_single_modification(self):
        left = simple_trace([1, 2, 3])
        right = simple_trace([1, 7, 3])
        result = view_diff(left, right)
        assert result.num_diffs() == 2
        [seq] = result.sequences
        assert seq.kind == "modify"

    def test_insertion(self):
        left = simple_trace([1, 2, 3])
        right = simple_trace([1, 2, 99, 3])
        result = view_diff(left, right)
        assert result.num_diffs() == 1
        [seq] = result.sequences
        assert seq.kind == "insert"

    def test_trailing_difference(self):
        left = simple_trace([1, 2])
        right = simple_trace([1, 2, 3, 4])
        result = view_diff(left, right)
        assert result.num_diffs() == 2


class TestSimilaritySetInvariants:
    @given(value_lists, value_lists)
    @settings(max_examples=60, deadline=None)
    def test_similar_plus_diff_partitions_traces(self, a, b):
        left = simple_trace(a)
        right = simple_trace(b)
        result = view_diff(left, right)
        assert len(result.similar_left) + len(result.left_diff_eids()) == \
            len(left)
        assert len(result.similar_right) + len(result.right_diff_eids()) == \
            len(right)

    @given(value_lists, value_lists)
    @settings(max_examples=60, deadline=None)
    def test_match_pairs_have_equal_keys(self, a, b):
        left = simple_trace(a)
        right = simple_trace(b)
        result = view_diff(left, right)
        for l_eid, r_eid in result.match_pairs:
            assert left.entries[l_eid].key() == right.entries[r_eid].key()

    @given(value_lists, value_lists)
    @settings(max_examples=60, deadline=None)
    def test_anchor_pairs_have_equal_keys(self, a, b):
        left = simple_trace(a)
        right = simple_trace(b)
        result = view_diff(left, right)
        for l_eid, r_eid in result.anchor_pairs:
            assert left.entries[l_eid].key() == right.entries[r_eid].key()

    @given(value_lists)
    @settings(max_examples=40, deadline=None)
    def test_self_diff_is_empty(self, a):
        left = simple_trace(a, name="L")
        right = simple_trace(a, name="R")
        assert view_diff(left, right).num_diffs() == 0


class TestReorderingResilience:
    @staticmethod
    def cross_object_pair(swapped: bool, name: str):
        """Two objects whose operation blocks interleave differently in
        the thread view while each object's own order is unchanged."""
        from repro.core.traces import TraceBuilder
        from repro.core.values import prim
        builder = TraceBuilder(name=name)
        tid = builder.main_tid
        obj_x = builder.record_init(tid, "X", (), serialization="x")
        obj_y = builder.record_init(tid, "Y", (), serialization="y")
        for block in range(4):
            base = block * 5
            first, second = ((obj_y, obj_x) if swapped
                             else (obj_x, obj_y))
            for at in range(5):
                builder.record_set(tid, first,
                                   "f" if first is obj_x else "g",
                                   prim(base + at))
            for at in range(5):
                builder.record_set(tid, second,
                                   "f" if second is obj_x else "g",
                                   prim(base + at))
        builder.record_end(tid)
        return builder.build()

    def test_cross_object_reordering_recovered_via_views(self):
        # The LCS counts the swapped interleaving as differences; the
        # views-based differ anchors the entries through each object's
        # (unchanged) target-object view.
        left = self.cross_object_pair(False, "L")
        right = self.cross_object_pair(True, "R")
        from repro.core.view_diff import ViewDiffConfig
        views_result = view_diff(left, right, config=ViewDiffConfig(
            window=12, radius=4))
        lcs_result = lcs_diff(left, right)
        assert views_result.num_diffs() < lcs_result.num_diffs()
        assert views_result.anchor_pairs

    def test_motivating_example(self):
        left = myfaces_trace(min_range=32, name="orig")
        right = myfaces_trace(min_range=1, new_version=True, name="new")
        result = view_diff(left, right)
        # The regression manifests in the changed init/set values plus the
        # structural BinaryCharFilter insertion.
        diff_keys = {left.entries[eid].key()
                     for eid in result.left_diff_eids()}
        assert any("_minCharRange" in str(k) for k in diff_keys)
        # Unchanged surroundings (Logger calls) stay similar.
        log_eids = [e.eid for e in left
                    if e.event.kind == "call"
                    and "addMsg" in getattr(e.event, "method", "")]
        for eid in log_eids:
            assert eid in result.similar_left


class TestThreads:
    def test_two_threads_diffed_independently(self):
        left = two_thread_trace([1, 2, 3], [7, 8], name="L")
        right = two_thread_trace([1, 2, 3], [7, 9], name="R")
        result = view_diff(left, right)
        # Only the worker thread's value differs.
        assert result.num_diffs() == 2
        [seq] = result.sequences
        assert {e.tid for e in seq.left_entries} == {1}

    def test_unmatched_thread_is_whole_difference(self):
        left = two_thread_trace([1, 2], [5], name="L")
        b = simple_trace([1, 2], name="R")
        result = view_diff(left, b)
        kinds = {s.kind for s in result.sequences}
        assert "delete" in kinds  # the worker thread only exists on left


class TestConfig:
    def test_zero_radius_disables_anchoring(self):
        left = simple_trace([10, 11, 1, 2, 3, 4, 5, 6])
        right = simple_trace([1, 2, 3, 4, 5, 6, 10, 11])
        config = ViewDiffConfig(radius=0, window=0, view_types=())
        result = view_diff(left, right, config=config)
        assert result.anchor_pairs == []

    def test_linear_compare_growth(self):
        # Doubling the trace length should roughly double compare count
        # (O(n) claim of Sec. 3.3) for a fixed difference density.
        def run(n):
            values = list(range(n))
            values[n // 2] = -1
            left = simple_trace(range(n))
            right = simple_trace(values)
            return view_diff(left, right).compares()

        small = run(400)
        large = run(800)
        assert large < small * 4  # comfortably sub-quadratic


class TestDegeneratePairs:
    """Hardening for the degenerate shapes segmentation exposes: empty
    traces, all-common pairs, and single-gap pairs (ISSUE 5)."""

    def test_empty_vs_empty(self):
        from repro.core.traces import Trace
        result = view_diff(Trace([], name="a"), Trace([], name="b"))
        assert result.num_diffs() == 0
        assert result.sequences == []

    def test_empty_vs_full_each_way(self):
        from repro.core.traces import Trace
        full = simple_trace([1, 2, 3], name="full")
        for left, right, kind in ((Trace([]), full, "insert"),
                                  (full, Trace([]), "delete")):
            result = view_diff(left, right)
            assert result.num_diffs() == len(full)
            [sequence] = result.sequences
            assert sequence.kind == kind

    @settings(max_examples=30, deadline=None)
    @given(value_lists)
    def test_all_common_pair_matches_everything(self, values):
        left = simple_trace(values, name="l")
        right = simple_trace(values, name="r")
        for config in (None, ViewDiffConfig(anchored=True)):
            result = view_diff(left, right, config=config)
            assert result.num_diffs() == 0
            assert len(result.match_pairs) == len(left)

    def test_single_gap_pair_anchored_and_plain(self):
        left = simple_trace([1, 2, 3, 4, 5], name="l")
        right = simple_trace([1, 2, 9, 4, 5], name="r")
        plain = view_diff(left, right)
        anchored = view_diff(left, right,
                             config=ViewDiffConfig(anchored=True))
        assert plain.num_diffs() == anchored.num_diffs() == 2
        assert [s.kind for s in plain.sequences] == ["modify"]
        assert [s.kind for s in anchored.sequences] == ["modify"]
