"""Tests for trace events and entries (=e keys, eof sentinel)."""

from repro.core.entries import EOF, TraceEntry, entries_equal
from repro.core.events import (Call, End, FieldGet, FieldSet, Fork, Init,
                               Return, StackFrame)
from repro.core.values import ValueRep, prim


def obj(class_name="C", location=1, seq=1, serialization=None):
    return ValueRep(class_name=class_name, serialization=serialization,
                    location=location, creation_seq=seq)


def entry(event, eid=0, tid=0, method="m", active=None):
    return TraceEntry(eid=eid, tid=tid, method=method, active=active,
                      event=event)


class TestEventKeys:
    def test_get_and_set_keys_differ(self):
        g = FieldGet(obj=obj(), field="f", value=prim(1))
        s = FieldSet(obj=obj(), field="f", value=prim(1))
        assert g.key() != s.key()

    def test_location_free_equality(self):
        a = Call(obj=obj(location=1), method="m", args=(prim(1),))
        b = Call(obj=obj(location=500), method="m", args=(prim(1),))
        assert a.key() == b.key()

    def test_args_participate(self):
        a = Call(obj=obj(), method="m", args=(prim(1),))
        b = Call(obj=obj(), method="m", args=(prim(2),))
        assert a.key() != b.key()

    def test_return_value_participates(self):
        a = Return(obj=obj(), method="m", value=prim(True))
        b = Return(obj=obj(), method="m", value=prim(False))
        assert a.key() != b.key()

    def test_init_key_contains_class_and_args(self):
        a = Init(class_name="C", args=(prim(32),), obj=obj())
        b = Init(class_name="C", args=(prim(1),), obj=obj())
        assert a.key() != b.key()

    def test_serialization_participates_via_obj(self):
        a = FieldSet(obj=obj(serialization="x"), field="f", value=prim(1))
        b = FieldSet(obj=obj(serialization="y"), field="f", value=prim(1))
        assert a.key() != b.key()

    def test_fork_key_over_ancestry(self):
        frame = StackFrame(method="m", caller=None, callee=obj())
        a = Fork(child_tid=1, ancestry=((frame,),))
        b = Fork(child_tid=9, ancestry=((frame,),))
        assert a.key() == b.key()  # child tid is per-trace, excluded
        c = Fork(child_tid=1, ancestry=((),))
        assert a.key() != c.key()

    def test_end_vs_fork(self):
        a = Fork(child_tid=1, ancestry=())
        b = End(tid=1, ancestry=())
        assert a.key() != b.key()

    def test_targets(self):
        o = obj()
        assert FieldGet(obj=o, field="f", value=prim(1)).target() is o
        assert Call(obj=o, method="m", args=()).target() is o
        assert Init(class_name="C", args=(), obj=o).target() is o
        assert Fork(child_tid=1, ancestry=()).target() is None


class TestEntries:
    def test_key_delegates_to_event(self):
        e = Call(obj=obj(), method="m", args=())
        t1 = entry(e, eid=0, tid=0, method="a")
        t2 = entry(e, eid=99, tid=3, method="b")
        assert entries_equal(t1, t2)

    def test_eof_is_special(self):
        assert EOF.is_eof
        assert EOF.key() == ("eof",)
        regular = entry(Call(obj=obj(), method="m", args=()))
        assert not regular.is_eof
        assert not entries_equal(EOF, regular)

    def test_brief_is_printable(self):
        e = entry(FieldSet(obj=obj(), field="f", value=prim(3)))
        assert "set" in e.brief()
        assert "f" in e.brief()
