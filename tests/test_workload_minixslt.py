"""Tests for the Xalan-analogue workload."""

import pytest

from repro.workloads.minixslt.compiler import (LiteralElementCompiler,
                                               TemplateCompiler)
from repro.workloads.minixslt.engine import XsltEngine, transform
from repro.workloads.minixslt.namespaces import (FlatResolver,
                                                 NamespaceError,
                                                 ScopedResolver,
                                                 make_resolver)
from repro.workloads.minixslt.stylesheet import (LiteralElement,
                                                 StylesheetError,
                                                 parse_stylesheet)
from repro.workloads.minixslt.scenario import (CORRECT_INPUT_1725,
                                               CORRECT_INPUT_1802,
                                               REGRESSING_INPUT_1725,
                                               REGRESSING_INPUT_1802,
                                               regression_1725_manifests,
                                               regression_1802_manifests,
                                               run_1725_new, run_1725_old,
                                               run_1802_new, run_1802_old)
from repro.workloads.minixslt.xmldoc import XmlError, parse_xml


class TestXmlParser:
    def test_basic_structure(self):
        root = parse_xml("<a><b>hi</b><b>ho</b><c/></a>")
        assert root.tag == "a"
        assert len(root.children) == 3
        assert [b.text for b in root.children_named("b")] == ["hi", "ho"]

    def test_attributes_ordered(self):
        root = parse_xml('<a x="1" y="2" x2="3"/>')
        assert root.attributes == [("x", "1"), ("y", "2"), ("x2", "3")]
        assert root.attribute("y") == "2"
        assert root.attribute("nope", "d") == "d"

    def test_namespace_declarations(self):
        root = parse_xml('<a xmlns:n="urn:x" xmlns="urn:d"/>')
        assert ("n", "urn:x") in root.namespace_declarations()
        assert ("", "urn:d") in root.namespace_declarations()

    def test_prefix_and_local_name(self):
        root = parse_xml("<ns:tag/>")
        assert root.prefix() == "ns"
        assert root.local_name() == "tag"

    def test_comments_and_prolog(self):
        root = parse_xml("<?xml version='1.0'?><!-- hi --><a/>")
        assert root.tag == "a"

    def test_entity_unescaping(self):
        root = parse_xml("<a>&lt;x&gt; &amp; y</a>")
        assert root.text == "<x> & y"

    def test_mismatched_tags(self):
        with pytest.raises(XmlError):
            parse_xml("<a></b>")

    def test_unterminated(self):
        with pytest.raises(XmlError):
            parse_xml("<a>")

    def test_trailing_content(self):
        with pytest.raises(XmlError):
            parse_xml("<a/><b/>")


class TestNamespaces:
    def test_flat_resolver_shadowing(self):
        resolver = FlatResolver()
        resolver.push_scope([("a", "urn:outer")])
        resolver.push_scope([("a", "urn:inner")])
        assert resolver.resolve("a") == "urn:inner"
        resolver.pop_scope()
        assert resolver.resolve("a") == "urn:outer"

    def test_scoped_resolver_correct_pop(self):
        resolver = ScopedResolver(buggy_pop=False)
        resolver.push_scope([("a", "urn:outer")])
        resolver.push_scope([("a", "urn:inner")])
        assert resolver.resolve("a") == "urn:inner"
        resolver.pop_scope()
        assert resolver.resolve("a") == "urn:outer"

    def test_scoped_resolver_buggy_pop_drops_outer(self):
        resolver = ScopedResolver(buggy_pop=True)
        resolver.push_scope([("a", "urn:outer")])
        resolver.push_scope([("a", "urn:inner")])
        resolver.pop_scope()
        with pytest.raises(NamespaceError):
            resolver.resolve("a")

    def test_buggy_pop_harmless_without_shadowing(self):
        resolver = ScopedResolver(buggy_pop=True)
        resolver.push_scope([("a", "urn:outer")])
        resolver.push_scope([])
        resolver.pop_scope()
        assert resolver.resolve("a") == "urn:outer"

    def test_unbound_prefix(self):
        with pytest.raises(NamespaceError):
            FlatResolver().resolve("zzz")

    def test_factory(self):
        assert isinstance(make_resolver("flat"), FlatResolver)
        assert isinstance(make_resolver("scoped"), ScopedResolver)
        with pytest.raises(ValueError):
            make_resolver("cubist")


class TestStylesheet:
    def test_parse_templates(self):
        sheet = parse_stylesheet("""
            <xsl:stylesheet>
              <xsl:template match="a"><xsl:value-of select="."/></xsl:template>
              <xsl:template match="*"><xsl:apply-templates select="*"/></xsl:template>
            </xsl:stylesheet>""")
        assert len(sheet.templates) == 2
        assert sheet.templates[0].match == "a"

    def test_literal_elements_with_attributes(self):
        sheet = parse_stylesheet("""
            <xsl:stylesheet>
              <xsl:template match="a"><out x="1" y="2">t</out></xsl:template>
            </xsl:stylesheet>""")
        [literal] = sheet.templates[0].body
        assert isinstance(literal, LiteralElement)
        assert literal.attributes == [("x", "1"), ("y", "2")]

    def test_not_a_stylesheet(self):
        with pytest.raises(StylesheetError):
            parse_stylesheet("<html/>")

    def test_template_without_match(self):
        with pytest.raises(StylesheetError):
            parse_stylesheet(
                "<xsl:stylesheet><xsl:template/></xsl:stylesheet>")

    def test_value_of_requires_select(self):
        with pytest.raises(StylesheetError):
            parse_stylesheet("""
                <xsl:stylesheet>
                  <xsl:template match="a"><xsl:value-of/></xsl:template>
                </xsl:stylesheet>""")


class TestCompiler:
    def sheet(self, body: str):
        return parse_stylesheet(f"""
            <xsl:stylesheet>
              <xsl:template match="a">{body}</xsl:template>
            </xsl:stylesheet>""")

    def test_correct_attribute_emission(self):
        compiler = TemplateCompiler(buggy_attribute_emission=False)
        [compiled] = compiler.compile_stylesheet(
            self.sheet('<out x="1" y="2" z="3"/>'))
        attrs = [op for op in compiled.ops if op.kind == "ATTR"]
        assert [a.arg1 for a in attrs] == ["x", "y", "z"]

    def test_buggy_emission_drops_last_attribute(self):
        compiler = TemplateCompiler(buggy_attribute_emission=True)
        [compiled] = compiler.compile_stylesheet(
            self.sheet('<out x="1" y="2" z="3"/>'))
        attrs = [op for op in compiled.ops if op.kind == "ATTR"]
        assert [a.arg1 for a in attrs] == ["x", "y"]

    def test_buggy_emission_spares_single_attribute(self):
        compiler = TemplateCompiler(buggy_attribute_emission=True)
        [compiled] = compiler.compile_stylesheet(self.sheet('<out x="1"/>'))
        attrs = [op for op in compiled.ops if op.kind == "ATTR"]
        assert len(attrs) == 1

    def test_duplicate_attributes_rejected(self):
        checker = LiteralElementCompiler(buggy_attribute_emission=False)
        with pytest.raises(StylesheetError):
            checker.check_attributes_unique([("x", "1"), ("x", "2")])

    def test_peephole_fuses_text(self):
        compiler = TemplateCompiler(peephole=True)
        from repro.workloads.minixslt.compiler import Op
        fused = compiler.fuse_adjacent_text(
            [Op("TEXT", "a"), Op("TEXT", "b"), Op("START_ELEM", "x")])
        assert len(fused) == 2
        assert fused[0].arg1 == "ab"


class TestEngine:
    def test_simple_transform(self):
        output = transform("2.4.1", """
            <xsl:stylesheet>
              <xsl:template match="doc"><r><xsl:value-of select="."/></r></xsl:template>
            </xsl:stylesheet>""", "<doc>hello</doc>")
        assert output == "<r>hello</r>"

    def test_for_each(self):
        output = transform("2.4.1", """
            <xsl:stylesheet>
              <xsl:template match="doc">
                <xsl:for-each select="i"><xsl:value-of select="."/></xsl:for-each>
              </xsl:template>
            </xsl:stylesheet>""", "<doc><i>1</i><i>2</i></doc>")
        assert output == "12"

    def test_builtin_rule_copies_text(self):
        output = transform("2.4.1", """
            <xsl:stylesheet>
              <xsl:template match="nomatch"><x/></xsl:template>
            </xsl:stylesheet>""", "<doc>plain</doc>")
        assert output == "plain"

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            XsltEngine("9.9")

    def test_versions_agree_on_simple_input(self):
        sheet = """
            <xsl:stylesheet>
              <xsl:template match="doc"><r a="1"><xsl:value-of select="."/></r></xsl:template>
            </xsl:stylesheet>"""
        doc = "<doc>x</doc>"
        outputs = {transform(v, sheet, doc)
                   for v in ("2.4.1", "2.5.1", "2.5.2")}
        assert len(outputs) == 1


class TestScenarios:
    def test_1725_manifests(self):
        assert regression_1725_manifests()

    def test_1725_drops_role_attribute(self):
        old = run_1725_old(REGRESSING_INPUT_1725)
        new = run_1725_new(REGRESSING_INPUT_1725)
        assert 'role="data"' in old
        assert 'role="data"' not in new

    def test_1725_versions_agree_on_safe_stylesheet(self):
        assert run_1725_old(CORRECT_INPUT_1725) == \
            run_1725_new(CORRECT_INPUT_1725)

    def test_1802_manifests(self):
        assert regression_1802_manifests()

    def test_1802_unresolved_after_shadowing(self):
        new = run_1802_new(REGRESSING_INPUT_1802)
        assert "urn:unresolved" in new
        old = run_1802_old(REGRESSING_INPUT_1802)
        assert "urn:unresolved" not in old

    def test_1802_versions_agree_without_shadowing(self):
        assert run_1802_old(CORRECT_INPUT_1802) == \
            run_1802_new(CORRECT_INPUT_1802)
