"""Tests for the view correlation functions X_chi (Sec. 3.1)."""

from repro.core.correlation import ViewCorrelator, ancestry_similarity
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.core.views import ViewType
from repro.core.web import ThreadInfo, ViewWeb

from helpers import myfaces_trace, two_thread_trace


def webs(left, right):
    return ViewWeb(left), ViewWeb(right)


class TestAncestrySimilarity:
    def test_main_threads_identical(self):
        a = ThreadInfo(tid=0, ancestry=(), fork_eid=None)
        b = ThreadInfo(tid=0, ancestry=(), fork_eid=None)
        assert ancestry_similarity(a, b) == 1.0

    def test_main_vs_forked(self):
        a = ThreadInfo(tid=0, ancestry=(), fork_eid=None)
        b = ThreadInfo(tid=1, ancestry=((),), fork_eid=3)
        assert ancestry_similarity(a, b) == 0.0

    def test_same_spawn_stack_scores_high(self):
        from repro.core.events import StackFrame
        frame = StackFrame(method="Server.start", caller=None, callee=None)
        a = ThreadInfo(tid=1, ancestry=((frame,),), fork_eid=1)
        b = ThreadInfo(tid=2, ancestry=((frame,),), fork_eid=9)
        assert ancestry_similarity(a, b) == 1.0

    def test_different_spawn_stack_scores_lower(self):
        from repro.core.events import StackFrame
        fa = StackFrame(method="Server.start", caller=None, callee=None)
        fb = StackFrame(method="Pool.grow", caller=None, callee=None)
        a = ThreadInfo(tid=1, ancestry=((fa,),), fork_eid=1)
        b = ThreadInfo(tid=2, ancestry=((fb,),), fork_eid=9)
        assert ancestry_similarity(a, b) < 1.0


class TestThreadCorrelation:
    def test_main_threads_correlate(self):
        left = myfaces_trace(name="L")
        right = myfaces_trace(new_version=True, name="R")
        correlator = ViewCorrelator(*webs(left, right))
        assert (0, 0) in correlator.thread_pairs()

    def test_forked_threads_correlate(self):
        left = two_thread_trace([1, 2], [3])
        right = two_thread_trace([1, 2], [3, 4])
        correlator = ViewCorrelator(*webs(left, right))
        assert correlator.correlated_thread(1) == 1

    def test_assignment_is_injective(self):
        left = two_thread_trace([1], [2])
        right = two_thread_trace([1], [2])
        correlator = ViewCorrelator(*webs(left, right))
        targets = [r for _, r in correlator.thread_pairs()]
        assert len(targets) == len(set(targets))


class TestMethodCorrelation:
    def test_same_signature_correlates(self):
        left = myfaces_trace()
        right = myfaces_trace(new_version=True)
        correlator = ViewCorrelator(*webs(left, right))
        entry_l = next(e for e in left if e.method == "SP.setRequestType")
        entry_r = next(e for e in right if e.method == "SP.setRequestType")
        names = correlator.correlate(entry_l, entry_r, ViewType.METHOD)
        assert names is not None
        assert names[0].key == names[1].key == "SP.setRequestType"

    def test_different_signature_does_not(self):
        left = myfaces_trace()
        right = myfaces_trace(new_version=True)
        correlator = ViewCorrelator(*webs(left, right))
        entry_l = next(e for e in left if e.method == "SP.setRequestType")
        entry_r = next(e for e in right if e.method == "<main>")
        assert correlator.correlate(entry_l, entry_r,
                                    ViewType.METHOD) is None


class TestObjectCorrelation:
    def test_by_value_representation(self):
        left = myfaces_trace()
        right = myfaces_trace(new_version=True)
        web_l, web_r = webs(left, right)
        correlator = ViewCorrelator(web_l, web_r)
        log_l = next(loc for loc, i in web_l.objects.items()
                     if i.class_name == "Logger")
        log_r = next(loc for loc, i in web_r.objects.items()
                     if i.class_name == "Logger")
        assert correlator.correlated_object(log_l) == log_r

    def test_by_creation_seq_when_reps_differ(self):
        # NumericEntityUtil serialisations differ (32 vs 1) but the
        # (class, creation seq) pair still correlates them.
        left = myfaces_trace(min_range=32)
        right = myfaces_trace(min_range=1, new_version=True)
        web_l, web_r = webs(left, right)
        correlator = ViewCorrelator(web_l, web_r)
        num_l = next(loc for loc, i in web_l.objects.items()
                     if i.class_name == "NumericEntityUtil")
        num_r = next(loc for loc, i in web_r.objects.items()
                     if i.class_name == "NumericEntityUtil")
        assert correlator.correlated_object(num_l) == num_r

    def test_unrelated_classes_never_correlate(self):
        left = myfaces_trace()
        right = myfaces_trace(new_version=True)
        web_l, web_r = webs(left, right)
        correlator = ViewCorrelator(web_l, web_r)
        log_l = next(loc for loc, i in web_l.objects.items()
                     if i.class_name == "Logger")
        num_r = next(loc for loc, i in web_r.objects.items()
                     if i.class_name == "NumericEntityUtil")
        assert correlator.correlated_object(log_l) != num_r

    def test_right_objects_used_at_most_once(self):
        b = TraceBuilder()
        tid = b.main_tid
        for _ in range(3):
            b.record_init(tid, "A", (), serialization="same")
        left = b.build()
        b2 = TraceBuilder()
        b2.record_init(b2.main_tid, "A", (), serialization="same")
        right = b2.build()
        correlator = ViewCorrelator(*webs(left, right))
        mapped = [correlator.correlated_object(loc)
                  for loc in ViewWeb(left).objects]
        real = [m for m in mapped if m is not None]
        assert len(real) == len(set(real)) == 1


class TestCorrelatedViewPairs:
    def test_thread_view_pairs(self):
        left = two_thread_trace([1], [2])
        right = two_thread_trace([1], [2])
        correlator = ViewCorrelator(*webs(left, right))
        pairs = correlator.correlated_view_pairs(ViewType.THREAD)
        assert len(pairs) == 2

    def test_method_view_pairs(self):
        left = myfaces_trace()
        right = myfaces_trace(new_version=True)
        correlator = ViewCorrelator(*webs(left, right))
        pairs = correlator.correlated_view_pairs(ViewType.METHOD)
        keys = {p[0].key for p in pairs}
        assert "SP.setRequestType" in keys

    def test_target_object_view_pairs(self):
        left = myfaces_trace()
        right = myfaces_trace(new_version=True)
        correlator = ViewCorrelator(*webs(left, right))
        pairs = correlator.correlated_view_pairs(ViewType.TARGET_OBJECT)
        assert pairs  # Logger, SP, NumericEntityUtil all correlate
