"""Tests for the sys.settrace capture layer."""

import threading

import pytest

from repro.capture import TraceFilter, Tracer, trace_call, traced
from repro.capture.values import LiveRegistry, has_custom_repr, live_value_rep
from repro.core.events import (Call, End, FieldGet, FieldSet, Fork, Init,
                               Return)

MODULE_FILTER = TraceFilter(include_modules=(__name__,))


@traced
class Account:
    """Test subject with custom repr (meaningful value representation)."""

    def __init__(self, owner, balance):
        self.owner = owner
        self.balance = balance

    def deposit(self, amount):
        self.balance = self.balance + amount
        return self.balance

    def __repr__(self):
        return f"Account({self.owner})"


class Opaque:
    """No custom repr: representation must be empty (paper's rule for
    default Object.toString)."""

    def __init__(self):
        self.x = 1


class TestLiveValues:
    def test_primitives(self):
        registry = LiveRegistry()
        assert live_value_rep(5, registry).class_name == "Int"
        assert live_value_rep("s", registry).class_name == "Str"
        assert live_value_rep(None, registry).class_name == "Unit"

    def test_containers_are_value_like(self):
        registry = LiveRegistry()
        rep = live_value_rep([1, 2], registry)
        assert rep.class_name == "list"
        assert rep.location is None
        assert "1, 2" in rep.serialization

    def test_custom_repr_detected(self):
        assert has_custom_repr(Account("a", 0))
        assert not has_custom_repr(Opaque())

    def test_opaque_objects_have_empty_serialization(self):
        registry = LiveRegistry()
        rep = live_value_rep(Opaque(), registry)
        assert rep.serialization is None
        assert rep.location is not None

    def test_same_object_same_location(self):
        registry = LiveRegistry()
        account = Account("a", 0)
        rep1 = live_value_rep(account, registry)
        rep2 = live_value_rep(account, registry)
        assert rep1.location == rep2.location

    def test_creation_seq_per_class(self):
        registry = LiveRegistry()
        rep1 = live_value_rep(Opaque(), registry)
        rep2 = live_value_rep(Opaque(), registry)
        assert (rep1.creation_seq, rep2.creation_seq) == (1, 2)


class TestTracer:
    def run_scenario(self):
        account = Account("kim", 100)
        account.deposit(50)
        return account.balance

    def test_calls_and_returns_recorded(self):
        capture = trace_call(self.run_scenario, filter=MODULE_FILTER)
        assert capture.ok
        trace = capture.trace
        methods = [e.event.method for e in trace
                   if isinstance(e.event, Call)]
        assert "Account.deposit" in methods
        rets = [e for e in trace if isinstance(e.event, Return)
                and e.event.method == "Account.deposit"]
        assert rets[0].event.value.serialization == 150

    def test_init_event_recorded(self):
        capture = trace_call(self.run_scenario, filter=MODULE_FILTER)
        inits = [e for e in capture.trace if isinstance(e.event, Init)]
        assert any(i.event.class_name == "Account" for i in inits)

    def test_field_events_recorded(self):
        capture = trace_call(self.run_scenario, filter=MODULE_FILTER)
        sets = [e for e in capture.trace if isinstance(e.event, FieldSet)]
        fields = {s.event.field for s in sets}
        assert {"owner", "balance"} <= fields
        gets = [e for e in capture.trace if isinstance(e.event, FieldGet)]
        assert any(g.event.field == "balance" for g in gets)

    def test_field_recording_disabled(self):
        capture = trace_call(self.run_scenario, filter=MODULE_FILTER,
                             record_fields=False)
        kinds = capture.trace.event_kinds()
        assert "set" not in kinds

    def test_method_context_tracked(self):
        capture = trace_call(self.run_scenario, filter=MODULE_FILTER)
        sets = [e for e in capture.trace if isinstance(e.event, FieldSet)
                and e.event.field == "balance"
                and e.method == "Account.deposit"]
        assert sets

    def test_exception_captured_not_raised(self):
        def boom():
            account = Account("x", 1)
            raise ValueError("kaboom")

        capture = trace_call(boom, filter=MODULE_FILTER)
        assert not capture.ok
        assert isinstance(capture.error, ValueError)
        # The trace is still complete and balanced.
        assert len(capture.trace) > 0

    def test_filter_excludes_module(self):
        capture = trace_call(self.run_scenario,
                             filter=TraceFilter(include_modules=("nowhere",)))
        calls = [e for e in capture.trace if isinstance(e.event, Call)]
        assert calls == []

    def test_exclude_methods(self):
        deny = TraceFilter(include_modules=(__name__,),
                           exclude_methods=("Account.deposit",))
        capture = trace_call(self.run_scenario, filter=deny)
        methods = [e.event.method for e in capture.trace
                   if isinstance(e.event, Call)]
        assert "Account.deposit" not in methods

    def test_nested_tracer_rejected(self):
        with Tracer(filter=MODULE_FILTER):
            with pytest.raises(RuntimeError):
                with Tracer(filter=MODULE_FILTER):
                    pass

    def test_trace_before_exit_rejected(self):
        tracer = Tracer(filter=MODULE_FILTER)
        with tracer:
            with pytest.raises(RuntimeError):
                tracer.trace()

    def test_main_thread_end_recorded(self):
        capture = trace_call(self.run_scenario, filter=MODULE_FILTER)
        ends = [e for e in capture.trace if isinstance(e.event, End)]
        assert ends


class TestThreadCapture:
    def test_fork_and_thread_views(self):
        def scenario():
            results = []

            def worker():
                account = Account("w", 1)
                account.deposit(2)
                results.append(account.balance)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            return results

        capture = trace_call(scenario, filter=MODULE_FILTER)
        trace = capture.trace
        forks = [e for e in trace if isinstance(e.event, Fork)]
        assert len(forks) == 1
        assert len(set(trace.thread_ids())) == 2
        # Worker events landed on the forked tid.
        child_tid = forks[0].event.child_tid
        child_calls = [e for e in trace if e.tid == child_tid
                       and isinstance(e.event, Call)]
        assert any(e.event.method == "Account.deposit"
                   for e in child_calls)

    def test_child_end_recorded(self):
        def scenario():
            thread = threading.Thread(target=lambda: None)
            thread.start()
            thread.join()

        capture = trace_call(scenario, filter=MODULE_FILTER)
        ends = [e for e in capture.trace if isinstance(e.event, End)]
        assert len(ends) == 2  # child + main
