"""The ``repro.cache`` subsystem: key discipline, the two tiers, and —
most importantly — that a cache hit is observably identical to the cold
computation across every registered engine, interning mode, and
executor."""

import json

import pytest

from repro.api import (Session, available_engines, get_engine, is_cacheable,
                       register_engine, unregister_engine)
from repro.api.pipeline import StoredScenarioJob, run_pipeline
from repro.api.store import TraceStore
from repro.cache import (DiffCache, cache_key, cached_engine_diff,
                         canonical_config)
from repro.core.diffs import (result_from_wire, result_signature,
                              result_to_wire)
from repro.core.lcs import OpCounter
from repro.core.view_diff import ViewDiffConfig

from helpers import myfaces_trace, simple_trace, two_thread_trace


@pytest.fixture()
def pair():
    return (myfaces_trace(min_range=32, name="old"),
            myfaces_trace(min_range=1, new_version=True, name="new"))


def cold(engine_name, left, right, config=None):
    return get_engine(engine_name).diff(left, right, config=config)


class TestCanonicalConfig:
    def test_none_means_default(self):
        assert canonical_config(None) == canonical_config(ViewDiffConfig())

    def test_every_knob_participates(self):
        base = canonical_config(None)
        assert canonical_config(ViewDiffConfig(window=9)) != base
        assert canonical_config(ViewDiffConfig(interned=False)) != base

    def test_is_json(self):
        assert isinstance(json.loads(canonical_config(None)), dict)


class TestCacheKey:
    def test_deterministic(self, pair):
        left, right = pair
        assert cache_key(left, right, "views", None) == \
            cache_key(left, right, "views", None)

    def test_order_engine_and_config_matter(self, pair):
        left, right = pair
        base = cache_key(left, right, "views", None)
        assert cache_key(right, left, "views", None) != base
        assert cache_key(left, right, "dp", None) != base
        assert cache_key(left, right, "views",
                         ViewDiffConfig(window=3)) != base


class TestMemoryTier:
    def test_miss_then_hit_rehydrates_on_callers_traces(self, pair):
        left, right = pair
        cache = DiffCache()
        key = cache.key_for(left, right, "views", None)
        assert cache.get(key, left, right) is None
        result = cold("views", left, right)
        cache.put(key, result)
        hit = cache.get(key, left, right)
        assert hit is not None
        assert hit.left is left and hit.right is right
        assert result_signature(hit) == result_signature(result)
        # Sequences reference the caller's very entry objects.
        for seq in hit.sequences:
            for entry in seq.left_entries:
                assert entry is left.entries[entry.eid]

    def test_lru_eviction(self):
        cache = DiffCache(max_memory_entries=2)
        traces = [simple_trace([n, n + 1]) for n in range(4)]
        base = simple_trace([9])
        keys = []
        for trace in traces[:3]:
            key = cache.key_for(base, trace, "views", None)
            cache.put(key, cold("views", base, trace))
            keys.append(key)
        # Memory-only cache: the oldest entry is gone, newest two live.
        assert cache.get(keys[0], base, traces[0]) is None
        assert cache.get(keys[1], base, traces[1]) is not None
        assert cache.get(keys[2], base, traces[2]) is not None

    def test_stats_counters(self, pair):
        left, right = pair
        cache = DiffCache()
        key = cache.key_for(left, right, "views", None)
        cache.get(key, left, right)
        cache.put(key, cold("views", left, right))
        cache.get(key, left, right)
        stats = cache.stats()
        assert (stats.misses, stats.stores, stats.hits_memory) == (1, 1, 1)
        assert stats.hits == 1
        assert "hits" in stats.render()


class TestDiskTier:
    def test_hit_across_handles(self, pair, tmp_path):
        left, right = pair
        first = DiffCache(tmp_path / "cache")
        key = first.key_for(left, right, "views", None)
        result = cold("views", left, right)
        first.put(key, result)

        second = DiffCache(tmp_path / "cache")  # fresh memory tier
        hit = second.get(key, left, right)
        assert hit is not None
        assert result_signature(hit) == result_signature(result)
        assert second.stats().hits_disk == 1
        # Promoted to memory: the next hit is a memory hit.
        second.get(key, left, right)
        assert second.stats().hits_memory == 1

    def _one_entry(self, pair, tmp_path):
        left, right = pair
        cache = DiffCache(tmp_path / "cache")
        key = cache.key_for(left, right, "views", None)
        cache.put(key, cold("views", left, right))
        (entry_path,) = cache._disk_entries()
        return cache, key, entry_path

    def test_truncated_entry_is_a_miss(self, pair, tmp_path):
        cache, key, entry_path = self._one_entry(pair, tmp_path)
        text = entry_path.read_text()
        entry_path.write_text(text[:len(text) // 2])
        fresh = DiffCache(tmp_path / "cache")
        assert fresh.get(key, *pair) is None
        assert fresh.stats().misses == 1

    def test_version_skewed_entry_is_a_miss(self, pair, tmp_path):
        cache, key, entry_path = self._one_entry(pair, tmp_path)
        wire = json.loads(entry_path.read_text())
        wire["result"]["version"] = 999
        entry_path.write_text(json.dumps(wire))
        assert DiffCache(tmp_path / "cache").get(key, *pair) is None

    def test_entry_without_result_field_is_a_miss(self, pair, tmp_path):
        cache, key, entry_path = self._one_entry(pair, tmp_path)
        entry_path.write_text(json.dumps({"key": key}))  # hand-edited
        fresh = DiffCache(tmp_path / "cache")
        assert fresh.get(key, *pair) is None
        assert fresh.stats().misses == 1

    def test_entry_under_wrong_key_is_a_miss(self, pair, tmp_path):
        cache, key, entry_path = self._one_entry(pair, tmp_path)
        wire = json.loads(entry_path.read_text())
        wire["key"] = "somebody-else"
        entry_path.write_text(json.dumps(wire))
        assert DiffCache(tmp_path / "cache").get(key, *pair) is None

    def test_foreign_eids_are_a_miss_not_an_error(self, pair, tmp_path):
        # Rehydrating against traces that do not contain the stored
        # eids (as after a digest collision would) must read as a miss.
        cache, key, entry_path = self._one_entry(pair, tmp_path)
        tiny = simple_trace([1])
        assert DiffCache(tmp_path / "cache").get(key, tiny, tiny) is None

    def test_prune_keeps_newest(self, pair, tmp_path):
        left, right = pair
        cache = DiffCache(tmp_path / "cache")
        others = [simple_trace([n]) for n in range(3)]
        for trace in others:
            key = cache.key_for(left, trace, "views", None)
            cache.put(key, cold("views", left, trace))
        assert cache.stats().disk_entries == 3
        assert cache.prune(max_entries=1) == 2
        assert cache.stats().disk_entries == 1

    def test_prune_combining_age_and_keep_respects_keep(self, pair,
                                                        tmp_path):
        import os as _os
        import time as _time
        left, _ = pair
        cache = DiffCache(tmp_path / "cache")
        traces = [simple_trace([n]) for n in range(10)]
        for trace in traces:
            key = cache.key_for(left, trace, "views", None)
            cache.put(key, cold("views", left, trace))
        # Age six entries past the horizon.
        ancient = _time.time() - 7200
        for path in cache._disk_entries()[:6]:
            _os.utime(path, (ancient, ancient))
        # Only the aged six go: the four age-survivors are within the
        # --keep budget of five and must all stay.
        assert cache.prune(max_entries=5, max_age_seconds=3600) == 6
        assert cache.stats().disk_entries == 4

    def test_unwritable_disk_tier_degrades_to_memory(self, pair,
                                                     tmp_path):
        left, right = pair
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache wants a directory")
        cache = DiffCache(blocker / "cache")  # mkdir can never succeed
        key = cache.key_for(left, right, "views", None)
        cache.put(key, cold("views", left, right))  # must not raise
        assert cache.get(key, left, right) is not None  # memory tier
        assert cache.stats().disk_entries == 0

    def test_clear_empties_both_tiers(self, pair, tmp_path):
        cache, key, _ = self._one_entry(pair, tmp_path)
        assert cache.clear() == 1
        assert cache.stats().disk_entries == 0
        assert cache.get(key, *pair) is None


class _UncacheableEngine:
    name = "test-uncacheable"

    def diff(self, left, right, *, config=None, counter=None, budget=None,
             **kwargs):
        return get_engine("views").diff(left, right, config=config,
                                        counter=counter)


class TestCachedEngineDiff:
    def test_engines_advertise_cacheability(self):
        for name in available_engines():
            assert is_cacheable(get_engine(name)), name
        assert not is_cacheable(_UncacheableEngine())

    def test_uncacheable_engine_bypasses_cache(self, pair):
        left, right = pair
        cache = DiffCache()
        engine = _UncacheableEngine()
        register_engine(engine)
        try:
            cached_engine_diff(cache, engine, left, right)
            cached_engine_diff(cache, engine, left, right)
            stats = cache.stats()
            assert (stats.hits, stats.misses, stats.stores) == (0, 0, 0)
        finally:
            unregister_engine(engine.name)

    def test_hit_credits_the_callers_counter(self, pair):
        # The cache is a transparency layer for the paper's compare
        # metric: a warm run's counter reports the cold run's totals.
        left, right = pair
        cache = DiffCache()
        engine = get_engine("views")
        cold_counter = OpCounter()
        cold_result = cached_engine_diff(cache, engine, left, right,
                                         counter=cold_counter)
        warm_counter = OpCounter()
        warm_result = cached_engine_diff(cache, engine, left, right,
                                         counter=warm_counter)
        assert cold_counter.total > 0
        assert warm_counter.total == cold_counter.total
        assert warm_result.counter.total == cold_result.counter.total

    def test_shared_counter_stores_per_diff_deltas(self, pair):
        # One accumulator driven through several diffs (the harness
        # pattern): each cache entry must record only its own diff's
        # cost, so a warm replay credits exactly the cold totals.
        left, right = pair
        third = simple_trace([1, 2, 3], name="third")
        cache = DiffCache()
        engine = get_engine("views")
        shared = OpCounter()
        cached_engine_diff(cache, engine, left, right, counter=shared)
        cached_engine_diff(cache, engine, left, third, counter=shared)
        cold_total = shared.total
        warm = OpCounter()
        cached_engine_diff(cache, engine, left, right, counter=warm)
        cached_engine_diff(cache, engine, left, third, counter=warm)
        assert cache.stats().hits == 2
        assert warm.total == cold_total  # not inflated by snapshots

    def test_budget_constrained_calls_bypass_the_cache(self, pair):
        # A budget changes observable behaviour (LcsMemoryError, peak
        # cells): a generous cached run must never mask it.
        from repro.core.lcs import LcsMemoryError, MemoryBudget
        left, right = pair
        cache = DiffCache()
        engine = get_engine("dp")
        generous = MemoryBudget(max_cells=10**9)
        cached_engine_diff(cache, engine, left, right, budget=generous)
        stats = cache.stats()
        assert (stats.stores, stats.misses) == (0, 0)  # never consulted
        # Unbudgeted prime, then a tight-budget call: still raises.
        cached_engine_diff(cache, engine, left, right)
        with pytest.raises(LcsMemoryError):
            cached_engine_diff(cache, engine, left, right,
                               budget=MemoryBudget(max_cells=10))


class TestSessionCache:
    def test_cache_true_lives_beside_the_store(self, tmp_path):
        session = Session(store=tmp_path / "store", cache=True)
        assert session.cache.path == tmp_path / "store" / "diffcache"

    def test_cache_true_without_store_is_memory_only(self):
        session = Session(cache=True)
        assert session.cache is not None and session.cache.path is None

    def test_diff_consults_cache(self, pair):
        left, right = pair
        session = Session(cache=True)
        first = session.diff(left, right)
        second = session.diff(left, right)
        assert session.cache.stats().hits == 1
        assert result_signature(first) == result_signature(second)

    def test_use_cache_false_bypasses_entirely(self, pair):
        left, right = pair
        session = Session(cache=True)
        session.diff(left, right)
        before = session.cache.stats()
        session.diff(left, right, use_cache=False)
        after = session.cache.stats()
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_store_keys_hit_across_loads(self, tmp_path, pair):
        # resolve_trace loads a fresh Trace object per call; the digest
        # is content-addressed, so the reload still hits.
        left, right = pair
        store = TraceStore(tmp_path / "store")
        store.save(left, key="l")
        store.save(right, key="r")
        session = Session(store=store, cache=True)
        one = session.diff("l", "r")
        two = session.diff("l", "r")
        assert session.cache.stats().hits == 1
        assert result_signature(one) == result_signature(two)

    def test_derive_shares_the_handle(self, pair):
        session = Session(cache=True)
        assert session.derive().cache is session.cache
        assert session.derive(cache=False).cache is None


class TestPipelineSharedCache:
    def _stored_jobs(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(myfaces_trace(min_range=32, name="ob"), key="ob")
        store.save(myfaces_trace(min_range=1, new_version=True,
                                 name="nb"), key="nb")
        store.save(myfaces_trace(min_range=32, name="oo"), key="oo")
        store.save(myfaces_trace(min_range=32, name="no"), key="no")
        jobs = [StoredScenarioJob(name=f"job-{n}",
                                  suspected=("ob", "nb"),
                                  expected=("oo", "no"))
                for n in range(3)]
        return store, jobs

    def test_jobs_share_one_cache(self, tmp_path):
        store, jobs = self._stored_jobs(tmp_path)
        cache = DiffCache(tmp_path / "cache")
        session = Session(store=store)
        first = run_pipeline(jobs, session=session, cache=cache,
                             max_workers=2)
        assert not first.failed()
        warm = run_pipeline(jobs, session=session, cache=cache,
                            max_workers=2)
        assert not warm.failed()
        # Three identical jobs x two diff pairs x two batches = twelve
        # lookups.  Concurrent first-batch jobs may race to compute the
        # same pair (both miss, both store — harmless, puts are
        # idempotent), but the second batch is warm start to finish.
        stats = cache.stats()
        assert stats.hits + stats.misses == 12
        assert stats.misses == stats.stores <= 6
        assert stats.hits >= 6
        for cold_job, warm_job in zip(first, warm):
            assert result_signature(cold_job.result.suspected) == \
                result_signature(warm_job.result.suspected)


class TestHitIdentityProperty:
    """The ISSUE's property suite: cache-hit results are bit-identical
    to cold runs across all registered engines, interning on/off, and
    every executor."""

    @pytest.mark.parametrize("engine", available_engines())
    @pytest.mark.parametrize("interned", [True, False])
    def test_every_engine_and_interning_mode(self, engine, interned):
        left = two_thread_trace([1, 2, 3, 4], [7, 8], name="l")
        right = two_thread_trace([1, 2, 9, 4], [7, 8, 5], name="r")
        config = ViewDiffConfig(interned=interned)
        session = Session(config=config, engine=engine, cache=True)
        cold_result = session.diff(left, right)
        warm_result = session.diff(left, right)
        assert session.cache.stats().hits == 1, (engine, interned)
        assert result_signature(warm_result) == \
            result_signature(cold_result), (engine, interned)

    @pytest.mark.parametrize("executor", ["serial", "threads:2",
                                          "processes:2"])
    def test_every_executor(self, executor):
        left = myfaces_trace(min_range=32, name="old")
        right = myfaces_trace(min_range=1, new_version=True, name="new")
        baseline = Session().diff(left, right)
        with Session(cache=True, executor=executor) as session:
            cold_result = session.diff(left, right)
            warm_result = session.diff(left, right)
            assert session.cache.stats().hits == 1, executor
        assert result_signature(cold_result) == result_signature(baseline)
        assert result_signature(warm_result) == result_signature(baseline)


class TestWireCodec:
    def test_round_trip(self, pair):
        left, right = pair
        result = cold("views", left, right)
        back = result_from_wire(result_to_wire(result), left, right)
        assert result_signature(back) == result_signature(result)
        assert back.seconds == result.seconds

    def test_wire_is_json_encodable(self, pair):
        wire = result_to_wire(cold("dp", *pair))
        assert json.loads(json.dumps(wire)) == wire

    def test_bad_version_rejected(self, pair):
        with pytest.raises(ValueError, match="wire version"):
            result_from_wire({"version": 99}, *pair)
