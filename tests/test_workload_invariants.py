"""Tests for the Daikon-analogue workload."""

import pytest

from repro.workloads.invariants.diffing import (InvariantPair,
                                                MatchCountVisitor,
                                                XorVisitor, build_pair_tree)
from repro.workloads.invariants.inference import detect_invariants
from repro.workloads.invariants.invariants import (ConstantInvariant,
                                                   EqualityInvariant,
                                                   LessEqualInvariant,
                                                   NonZeroInvariant,
                                                   RangeInvariant)
from repro.workloads.invariants.model import (ProgramPoint, RunData,
                                              build_run)
from repro.workloads.invariants import version_new, version_old
from repro.workloads.invariants.scenario import (CORRECT_DATASET,
                                                 REGRESSING_DATASET,
                                                 regression_manifests,
                                                 run_new_version,
                                                 run_old_version)


class TestModel:
    def test_observe_checks_arity(self):
        run = RunData("r")
        run.declare(ProgramPoint("p", ("x", "y")))
        with pytest.raises(ValueError):
            run.observe("p", 1)

    def test_undeclared_point_rejected(self):
        run = RunData("r")
        with pytest.raises(KeyError):
            run.observe("nope", 1)

    def test_build_run(self):
        run = build_run("r", {"p": (("x",), [(1,), (2,)])})
        assert run.sample_count("p") == 2


class TestInvariants:
    def feed(self, invariant, rows):
        for row in rows:
            invariant.feed(row)
        return invariant

    def test_constant_survives(self):
        inv = self.feed(ConstantInvariant("p", ("x",)),
                        [(5,), (5,), (5,)])
        assert inv.is_justified()
        assert inv.describe() == "x == 5"

    def test_constant_falsified(self):
        inv = self.feed(ConstantInvariant("p", ("x",)),
                        [(5,), (6,), (5,)])
        assert inv.falsified
        assert not inv.is_justified()

    def test_justification_needs_samples(self):
        inv = self.feed(ConstantInvariant("p", ("x",)), [(5,), (5,)])
        assert not inv.is_justified()  # below threshold

    def test_range_tracks_bounds(self):
        inv = self.feed(RangeInvariant("p", ("x",)),
                        [(3,), (1,), (7,), (2,)])
        assert inv.is_justified()
        assert (inv.low, inv.high) == (1, 7)

    def test_range_rejects_non_numeric(self):
        inv = self.feed(RangeInvariant("p", ("x",)), [("a",)])
        assert inv.falsified

    def test_nonzero(self):
        ok = self.feed(NonZeroInvariant("p", ("x",)), [(1,), (2,), (3,)])
        assert ok.is_justified()
        bad = self.feed(NonZeroInvariant("p", ("x",)), [(1,), (0,), (3,)])
        assert bad.falsified

    def test_equality_pair(self):
        inv = self.feed(EqualityInvariant("p", ("x", "y")),
                        [(1, 1), (2, 2), (9, 9)])
        assert inv.is_justified()

    def test_less_equal_pair(self):
        inv = self.feed(LessEqualInvariant("p", ("x", "y")),
                        [(1, 2), (2, 2), (0, 9)])
        assert inv.is_justified()

    def test_identity_stable_across_runs(self):
        a = self.feed(ConstantInvariant("p", ("x",)), [(5,), (5,), (5,)])
        b = self.feed(ConstantInvariant("p", ("x",)), [(5,), (5,), (5,)])
        assert a.identity() == b.identity()

    def test_falsified_stops_counting(self):
        inv = ConstantInvariant("p", ("x",))
        inv.feed((1,))
        inv.feed((2,))
        seen = inv.samples_seen
        inv.feed((1,))
        assert inv.samples_seen == seen


class TestInference:
    def test_detects_expected_invariants(self):
        run = build_run("r", {
            "p": (("x", "y"), [(1, 1), (2, 2), (3, 3)]),
        })
        detected = detect_invariants(run)
        described = {inv.describe() for inv in detected["p"]}
        assert "x == y" in described
        assert "x != 0" in described

    def test_no_justification_with_few_samples(self):
        run = build_run("r", {"p": (("x",), [(1,)])})
        detected = detect_invariants(run)
        assert detected["p"] == []


class TestDiffing:
    def test_pair_tree_alignment(self):
        run1 = build_run("a", {"p": (("x",), [(1,), (1,), (1,)])})
        run2 = build_run("b", {"p": (("x",), [(2,), (2,), (2,)])})
        [node] = build_pair_tree(run1, run2)
        # x==1 only left, x==2 only right, shared: nonzero/range/nonnull.
        keys = {pair.key[0] for pair in node.pairs}
        assert "ConstantInvariant" in keys

    def test_match_count_visitor(self):
        run1 = build_run("a", {"p": (("x",), [(1,), (1,), (1,)])})
        run2 = build_run("b", {"p": (("x",), [(1,), (1,), (1,)])})
        visitor = MatchCountVisitor()
        visitor.walk(build_pair_tree(run1, run2))
        assert visitor.matches > 0

    def test_old_xor_semantics(self):
        predicates = version_old.XorPredicates()
        left_only = InvariantPair(("k",), inv1=object(), inv2=None)
        right_only = InvariantPair(("k",), inv1=None, inv2=object())
        both = InvariantPair(("k",), inv1=object(), inv2=object())
        assert predicates.should_add_inv1(left_only)
        assert predicates.should_add_inv2(right_only)
        assert not predicates.should_add_inv1(both)
        assert not predicates.should_add_inv2(both)

    def test_new_should_add_inv2_never_fires(self):
        # The typo: worth_printing(pair.inv1) with inv1 None.
        predicates = version_new.XorPredicates()
        inv = ConstantInvariant("p", ("x",))
        for _ in range(5):
            inv.feed((1,))
        right_only = InvariantPair(("k",), inv1=None, inv2=inv)
        assert not predicates.should_add_inv2(right_only)

    def test_new_should_add_inv1_requires_support(self):
        predicates = version_new.XorPredicates()
        weak = ConstantInvariant("p", ("x",))
        for _ in range(3):
            weak.feed((1,))
        left_only = InvariantPair(("k",), inv1=weak, inv2=None)
        assert not predicates.should_add_inv1(left_only)
        strong = ConstantInvariant("p", ("x",))
        for _ in range(5):
            strong.feed((1,))
        assert predicates.should_add_inv1(
            InvariantPair(("k",), inv1=strong, inv2=None))


class TestScenario:
    def test_regression_manifests(self):
        assert regression_manifests()

    def test_new_version_drops_run2_invariants(self):
        old_report = run_old_version(REGRESSING_DATASET)
        new_report = run_new_version(REGRESSING_DATASET)
        assert any(line.startswith(">") for line in old_report)
        assert not any(line.startswith(">") for line in new_report)

    def test_versions_agree_on_correct_dataset(self):
        assert run_old_version(CORRECT_DATASET) == \
            run_new_version(CORRECT_DATASET)
