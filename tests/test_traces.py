"""Tests for Trace and TraceBuilder (stack tracking, rule recording)."""

import pytest

from repro.core.events import Call, End, Fork, Init, Return
from repro.core.traces import Trace, TraceBuilder
from repro.core.values import prim

from helpers import simple_trace, two_thread_trace


class TestTraceBuilder:
    def test_eids_are_indices(self):
        trace = simple_trace([1, 2, 3])
        for index, entry in enumerate(trace.entries):
            assert entry.eid == index

    def test_call_context_is_callers(self):
        b = TraceBuilder()
        tid = b.main_tid
        o = b.record_init(tid, "A", ())
        b.record_call(tid, o, "A.m", ())
        trace = b.build()
        call_entry = trace.entries[1]
        # METH-E records the call in the *calling* context.
        assert call_entry.method == TraceBuilder.ROOT_METHOD
        assert isinstance(call_entry.event, Call)

    def test_nested_call_context(self):
        b = TraceBuilder()
        tid = b.main_tid
        o = b.record_init(tid, "A", ())
        b.record_call(tid, o, "A.outer", ())
        b.record_call(tid, o, "A.inner", ())
        inner_get = b.record_get(tid, o, "f", prim(1))
        assert inner_get.method == "A.inner"
        b.record_return(tid)
        after_return = b.record_get(tid, o, "f", prim(1))
        assert after_return.method == "A.outer"

    def test_return_records_method_and_value(self):
        b = TraceBuilder()
        tid = b.main_tid
        o = b.record_init(tid, "A", ())
        b.record_call(tid, o, "A.m", ())
        b.record_return(tid, prim(7))
        entry = b.build().entries[-1]
        assert isinstance(entry.event, Return)
        assert entry.event.method == "A.m"
        assert entry.event.value.serialization == 7

    def test_return_with_empty_stack_raises(self):
        b = TraceBuilder()
        with pytest.raises(RuntimeError):
            b.record_return(b.main_tid)

    def test_fork_captures_ancestry(self):
        b = TraceBuilder()
        tid = b.main_tid
        o = b.record_init(tid, "A", ())
        b.record_call(tid, o, "A.spawner", ())
        child = b.record_fork(tid)
        fork_entry = b.build().entries[-1]
        assert isinstance(fork_entry.event, Fork)
        assert fork_entry.event.child_tid == child
        # One ancestry level (spawned from main), capturing the call stack.
        assert len(fork_entry.event.ancestry) == 1
        assert fork_entry.event.ancestry[0][-1].method == "A.spawner"

    def test_nested_fork_ancestry_depth(self):
        b = TraceBuilder()
        child = b.record_fork(b.main_tid)
        grandchild = b.record_fork(child)
        fork_entries = [e for e in b.build().entries
                        if isinstance(e.event, Fork)]
        assert len(fork_entries[0].event.ancestry) == 1
        assert len(fork_entries[1].event.ancestry) == 2
        assert grandchild != child

    def test_end_event(self):
        b = TraceBuilder()
        b.record_end(b.main_tid)
        entry = b.build().entries[-1]
        assert isinstance(entry.event, End)
        assert entry.event.tid == b.main_tid

    def test_init_registers_creation_seq(self):
        b = TraceBuilder()
        tid = b.main_tid
        a1 = b.record_init(tid, "A", ())
        a2 = b.record_init(tid, "A", ())
        b1 = b.record_init(tid, "B", ())
        assert (a1.creation_seq, a2.creation_seq, b1.creation_seq) == (1, 2, 1)

    def test_register_thread_allocates_fresh_tid(self):
        b = TraceBuilder()
        tid = b.register_thread()
        assert tid != b.main_tid
        b.record_init(tid, "A", ())
        assert b.build().entries[0].tid == tid


class TestTrace:
    def test_len_iter_getitem(self):
        trace = simple_trace([1, 2, 3])
        assert len(trace) == 5  # init + 3 sets + end
        assert list(trace)[0] is trace[0]
        assert isinstance(trace.entries[0].event, Init)

    def test_slice_returns_trace(self):
        trace = simple_trace([1, 2, 3], name="t")
        sub = trace[1:3]
        assert isinstance(sub, Trace)
        assert len(sub) == 2
        assert sub.name == "t"

    def test_thread_ids_in_order(self):
        trace = two_thread_trace([1], [2])
        assert trace.thread_ids() == [0, 1]

    def test_event_kinds_histogram(self):
        trace = simple_trace([1, 2])
        kinds = trace.event_kinds()
        assert kinds["init"] == 1
        assert kinds["set"] == 2
        assert kinds["end"] == 1

    def test_methods(self):
        trace = simple_trace([1])
        assert TraceBuilder.ROOT_METHOD in trace.methods()

    def test_render_limit(self):
        trace = simple_trace(range(10))
        text = trace.render(limit=3)
        assert "more entries" in text


def _interned_trace(values, name=""):
    """A trace carrying a key column (built through a session table)."""
    from repro.core.keytable import KeyTable
    b = TraceBuilder(name=name, key_table=KeyTable())
    tid = b.main_tid
    obj = b.record_init(tid, "Cell", (), serialization="cell")
    for value in values:
        b.record_set(tid, obj, "v", prim(value))
    b.record_end(tid)
    return b.build()


class TestContentDigest:
    def test_equal_content_equal_digest(self):
        assert simple_trace([1, 2]).content_digest() == \
            simple_trace([1, 2]).content_digest()

    def test_name_and_metadata_are_provenance(self):
        # Content-addressed: renaming or annotating a trace does not
        # change what any engine would compute from it.
        a = simple_trace([1, 2], name="a")
        b = simple_trace([1, 2], name="b")
        b.metadata["origin"] = "elsewhere"
        assert a.content_digest() == b.content_digest()
        assert a.fingerprint() != b.fingerprint()  # name is in the fp

    def test_digest_tracks_values(self):
        assert simple_trace([1, 2]).content_digest() != \
            simple_trace([1, 3]).content_digest()

    def test_interned_and_uninterned_digest_identically(self):
        assert _interned_trace([1, 2]).content_digest() == \
            simple_trace([1, 2]).content_digest()

    def test_survives_serialisation(self, tmp_path):
        from repro.analysis.serialize import load_trace, save_trace
        trace = simple_trace([1, 2, 3], name="t")
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        assert load_trace(path).content_digest() == trace.content_digest()

    def test_fingerprint_collision_regression(self):
        """The PR-4 bugfix: equal (name, length, tids, kinds) but
        different methods/values collided under fingerprint() — the
        strong digest must tell such traces apart (this test fails for
        any digest built only from the fingerprint's fields)."""
        b1 = TraceBuilder(name="same")
        o1 = b1.record_init(b1.main_tid, "A", ())
        b1.record_call(b1.main_tid, o1, "A.first", ())
        b1.record_return(b1.main_tid, prim(1))
        b1.record_end(b1.main_tid)
        left = b1.build()

        b2 = TraceBuilder(name="same")
        o2 = b2.record_init(b2.main_tid, "A", ())
        b2.record_call(b2.main_tid, o2, "A.second", ())
        b2.record_return(b2.main_tid, prim(2))
        b2.record_end(b2.main_tid)
        right = b2.build()

        # Same shape: the cheap fingerprint cannot tell them apart ...
        assert left.fingerprint() == right.fingerprint()
        # ... which is exactly why it is provenance-only; the strong
        # digest (store metadata, cache keys, `store diff` hint) must.
        assert left.content_digest() != right.content_digest()

    def test_digest_cached_once(self):
        trace = simple_trace([1])
        first = trace.content_digest()
        assert trace.content_digest() is first  # cached string object


class TestSliceKeyColumn:
    def assert_synced(self, sliced):
        """key_ids[i] must be the interned id of entries[i].key()."""
        table = sliced.key_table
        assert len(sliced.key_ids) == len(sliced.entries)
        for entry, kid in zip(sliced.entries, sliced.key_ids):
            assert table.key_of(kid) == entry.key()

    def test_plain_slice_keeps_column_synced(self):
        trace = _interned_trace([1, 2, 3, 4, 5])
        self.assert_synced(trace[2:5])

    @pytest.mark.parametrize("index", [
        slice(None, None, 2), slice(1, 6, 2), slice(None, None, -1),
        slice(6, 1, -2), slice(None, None, 3)])
    def test_extended_slices_keep_column_synced(self, index):
        trace = _interned_trace([1, 2, 3, 4, 5])
        sliced = trace[index]
        assert [e.eid for e in sliced.entries] == \
            [e.eid for e in trace.entries[index]]
        self.assert_synced(sliced)

    def test_uninterned_slice_has_no_column(self):
        sliced = simple_trace([1, 2, 3])[::2]
        assert sliced.key_ids is None

    def test_desynchronised_column_is_rejected(self):
        trace = _interned_trace([1, 2, 3])
        trace.entries.append(trace.entries[-1])  # convention violation
        with pytest.raises(ValueError, match="mutated"):
            trace[::2]
        with pytest.raises(ValueError, match="mutated"):
            trace[1:2]
