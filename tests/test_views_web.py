"""Tests for view projections (Fig. 7) and the view web."""

from repro.core.events import Fork, Init
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.core.views import (ViewName, ViewType, nu_active_object,
                              nu_method, nu_target_object, nu_thread,
                              view_names)
from repro.core.web import ViewWeb

from helpers import myfaces_trace, two_thread_trace


class TestNameMappings:
    def setup_method(self):
        b = TraceBuilder()
        tid = b.main_tid
        self.a = b.record_init(tid, "A", ())
        b.record_call(tid, self.a, "A.m", ())
        self.b_obj = b.record_init(tid, "B", ())
        b.record_get(tid, self.b_obj, "f", prim(1))
        b.record_return(tid)
        self.trace = b.build()

    def test_thread_mapping(self):
        assert nu_thread(self.trace[0]) == ViewName(ViewType.THREAD, 0)

    def test_method_mapping_tracks_top_of_stack(self):
        get_entry = self.trace[3]
        assert nu_method(get_entry) == ViewName(ViewType.METHOD, "A.m")

    def test_target_object_mapping(self):
        get_entry = self.trace[3]
        name = nu_target_object(get_entry)
        assert name == ViewName(ViewType.TARGET_OBJECT,
                                self.b_obj.location)

    def test_target_object_none_for_thread_events(self):
        b = TraceBuilder()
        b.record_fork(b.main_tid)
        fork_entry = b.build()[0]
        assert isinstance(fork_entry.event, Fork)
        assert nu_target_object(fork_entry) is None

    def test_active_object_mapping(self):
        # Inside A.m, the active object is the A instance.
        get_entry = self.trace[3]
        assert nu_active_object(get_entry) == ViewName(
            ViewType.ACTIVE_OBJECT, self.a.location)

    def test_active_object_none_at_root(self):
        init_entry = self.trace[0]
        assert nu_active_object(init_entry) is None

    def test_view_names_union(self):
        names = view_names(self.trace[3])
        types = {n.vtype for n in names}
        assert types == {ViewType.THREAD, ViewType.METHOD,
                         ViewType.TARGET_OBJECT, ViewType.ACTIVE_OBJECT}


class TestView:
    def test_every_entry_in_exactly_one_thread_view(self):
        trace = two_thread_trace([1, 2], [3])
        web = ViewWeb(trace)
        thread_views = web.views_of_type(ViewType.THREAD)
        covered = sorted(eid for view in thread_views
                         for eid in view.indices)
        assert covered == list(range(len(trace)))

    def test_position_of_and_window(self):
        trace = myfaces_trace()
        web = ViewWeb(trace)
        view = web.thread_view(0)
        assert view is not None
        eid = view.indices[5]
        assert view.position_of(eid) == 5
        window = view.window(eid, radius=2)
        assert len(window) == 5
        assert window[2].eid == eid

    def test_window_clipped_at_edges(self):
        trace = myfaces_trace()
        web = ViewWeb(trace)
        view = web.thread_view(0)
        window = view.window(view.indices[0], radius=3)
        assert len(window) == 4  # position 0 .. 3

    def test_window_absent_eid(self):
        trace = myfaces_trace()
        web = ViewWeb(trace)
        view = web.method_view("SP.setRequestType")
        assert view.window(10**9, radius=3) == []

    def test_project_preserves_order(self):
        trace = myfaces_trace()
        web = ViewWeb(trace)
        view = web.method_view("SP.setRequestType")
        projected = view.project()
        eids = [e.eid for e in projected]
        assert eids == sorted(eids)


class TestViewWeb:
    def test_method_view_contents(self):
        trace = myfaces_trace()
        web = ViewWeb(trace)
        view = web.method_view("SP.setRequestType")
        assert view is not None
        # Every member entry fired while setRequestType was on top.
        for entry in view:
            assert entry.method == "SP.setRequestType"

    def test_target_object_view_for_num(self):
        trace = myfaces_trace()
        web = ViewWeb(trace)
        num_loc = next(loc for loc, info in web.objects.items()
                       if info.class_name == "NumericEntityUtil")
        view = web.target_object_view(num_loc)
        kinds = {e.event.kind for e in view}
        assert "init" in kinds
        assert "set" in kinds
        assert "call" in kinds

    def test_object_info_from_init(self):
        trace = myfaces_trace()
        web = ViewWeb(trace)
        infos = [i for i in web.objects.values()
                 if i.class_name == "NumericEntityUtil"]
        assert len(infos) == 1
        assert infos[0].creation_seq == 1
        assert infos[0].init_eid is not None
        init_entry = trace[infos[0].init_eid]
        assert isinstance(init_entry.event, Init)

    def test_thread_info_for_forked_thread(self):
        trace = two_thread_trace([1], [2])
        web = ViewWeb(trace)
        assert set(web.threads) == {0, 1}
        assert web.threads[0].ancestry == ()
        assert web.threads[1].fork_eid is not None

    def test_counts_shape(self):
        trace = myfaces_trace()
        web = ViewWeb(trace)
        counts = web.counts()
        assert counts["thread"] == 1
        assert counts["total"] == (counts["thread"] + counts["method"]
                                   + counts["target_object"]
                                   + counts["active_object"])
        # Only contexts with entries *inside* them materialise as method
        # views: <main> and SP.setRequestType here.
        assert counts["method"] == 2

    def test_views_of_entry_navigation(self):
        trace = myfaces_trace()
        web = ViewWeb(trace)
        entry = trace[6]  # inside setRequestType
        views = web.views_of_entry(entry)
        for view in views:
            assert view.position_of(entry.eid) >= 0
