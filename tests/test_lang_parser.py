"""Tests for the core-language lexer and parser."""

import pytest

from repro.lang.ast import (Block, ClassDecl, FieldAssign, FieldRead, If,
                            Lit, LocalAssign, MethodCall, New, Return,
                            Spawn, This, Var, VarDecl, While)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program, tokenize


class TestTokenizer:
    def test_names_keywords_punct(self):
        tokens = tokenize("class Foo { }")
        kinds = [(t.kind, t.text) for t in tokens]
        assert kinds[0] == ("kw", "class")
        assert kinds[1] == ("name", "Foo")
        assert kinds[-1] == ("eof", "")

    def test_numbers(self):
        tokens = tokenize("1 2.5 -3")
        assert [(t.kind, t.text) for t in tokens[:3]] == [
            ("int", "1"), ("float", "2.5"), ("int", "-3")]

    def test_strings_with_escapes(self):
        [token, _eof] = tokenize(r"'a\nb'")
        assert token.kind == "string"
        assert token.text == "a\nb"

    def test_comments_skipped(self):
        tokens = tokenize("x // comment\ny")
        assert [t.text for t in tokens[:2]] == ["x", "y"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("@")

    def test_line_numbers(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 2


class TestParser:
    def test_minimal_program(self):
        program = parse_program("thread { }")
        assert program.classes == {}
        assert program.main == Block(terms=())

    def test_class_with_fields_and_methods(self):
        program = parse_program("""
            class Point extends Object {
                Int x;
                Int y;
                Int getX() { return this.x; }
            }
            thread { var p = new Point(1, 2); p.getX(); }
        """)
        decl = program.classes["Point"]
        assert isinstance(decl, ClassDecl)
        assert [f.name for f in decl.fields] == ["x", "y"]
        assert decl.method("getX") is not None
        assert decl.superclass == "Object"

    def test_extends(self):
        program = parse_program("""
            class A { }
            class B extends A { }
            thread { }
        """)
        assert program.classes["B"].superclass == "A"

    def test_inherited_fields_order(self):
        program = parse_program("""
            class A { Int a; }
            class B extends A { Int b; }
            thread { }
        """)
        assert [f.name for f in program.fields_of("B")] == ["a", "b"]

    def test_mbody_walks_superclass(self):
        program = parse_program("""
            class A { Int m() { return 1; } }
            class B extends A { }
            thread { }
        """)
        _method, owner = program.mbody("m", "B")
        assert owner == "A"

    def test_field_assign_vs_local_assign(self):
        program = parse_program("""
            thread { var x = 1; x = 2; }
        """)
        decl, assign = program.main.terms
        assert isinstance(decl, VarDecl)
        assert isinstance(assign, LocalAssign)

    def test_field_read_and_assign(self):
        program = parse_program("""
            class C { Int f; Unit m() { this.f = this.f; return unit; } }
            thread { }
        """)
        method = program.classes["C"].method("m")
        assign = method.body.terms[0]
        assert isinstance(assign, FieldAssign)
        assert isinstance(assign.value, FieldRead)

    def test_chained_calls(self):
        program = parse_program("thread { var s = 'a'.concat('b').len(); }")
        decl = program.main.terms[0]
        call = decl.value
        assert isinstance(call, MethodCall)
        assert call.method == "len"
        assert isinstance(call.obj, MethodCall)

    def test_control_flow(self):
        program = parse_program("""
            thread {
                if (true) { 1; } else { 2; }
                while (false) { 3; }
            }
        """)
        if_term, while_term = program.main.terms
        assert isinstance(if_term, If)
        assert if_term.else_block is not None
        assert isinstance(while_term, While)

    def test_spawn(self):
        program = parse_program("thread { spawn { 1; } }")
        [spawn] = program.main.terms
        assert isinstance(spawn, Spawn)

    def test_return_statement(self):
        program = parse_program("""
            class C { Int m() { return 7; } }
            thread { }
        """)
        method = program.classes["C"].method("m")
        [ret] = method.body.terms
        assert isinstance(ret, Return)
        assert ret.value == Lit(7)

    def test_literals(self):
        program = parse_program(
            "thread { 1; 2.5; 'hi'; true; false; null; unit; this; x; }")
        terms = program.main.terms
        assert terms[0] == Lit(1)
        assert terms[1] == Lit(2.5)
        assert terms[2] == Lit("hi")
        assert terms[3] == Lit(True)
        assert terms[4] == Lit(False)
        assert terms[5] == Lit(None)
        assert terms[6] == Lit(None)
        assert isinstance(terms[7], This)
        assert terms[8] == Var("x")

    def test_new_expression(self):
        program = parse_program("thread { new Foo(1, 'x'); }")
        [new] = program.main.terms
        assert isinstance(new, New)
        assert new.class_name == "Foo"
        assert len(new.args) == 2

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse_program("thread { 1 = 2; }")

    def test_duplicate_class_rejected(self):
        with pytest.raises(ParseError):
            parse_program("class A { } class A { } thread { }")

    def test_missing_thread_rejected(self):
        with pytest.raises(ParseError):
            parse_program("class A { }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_program("thread { } extra")
