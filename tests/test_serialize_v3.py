"""Binary v3 wire format: property tests over generated traces.

Hypothesis drives the same trace "programs" as ``test_properties``
through the v3 encode/decode pair and asserts the invariants the rest
of the system leans on: round-trips preserve entries and the content
digest, re-encoding is byte-stable, all three formats agree on the
digest, lazy decode equals eager decode entry-for-entry, and corrupt
frames fail loudly.  Plain tests cover the store-facing surface
(mixed-format stores, ``migrate_format``/``format_stats``) and the
``REPRO_WIRE_FORMAT`` override.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.serialize import (FORMAT_VERSION, SUPPORTED_VERSIONS,
                                      WIRE_FORMAT_ENV, dumps_trace_bytes,
                                      load_trace, loads_trace, read_header,
                                      read_key_table, save_trace, wire_format)
from repro.api.store import TraceStore
from repro.core.entries import entries_equal
from repro.core.view_diff import view_diff

from test_properties import build_trace, programs

# Programs that always yield at least one real event (the empty trace
# is covered explicitly below).
nonempty_programs = st.tuples(
    st.just(("new",)), st.just(("call", 0, 0, 1))).map(list)
any_programs = st.one_of(programs, nonempty_programs)


def entries_match(a, b):
    assert len(a) == len(b)
    for entry_a, entry_b in zip(a.entries, b.entries):
        assert entry_a.eid == entry_b.eid
        assert entry_a.tid == entry_b.tid
        assert entry_a.method == entry_b.method
        assert entries_equal(entry_a, entry_b)


class TestV3RoundTrip:
    @given(any_programs)
    @settings(max_examples=60, deadline=None)
    def test_wire_round_trip_preserves_entries_and_digest(self, program):
        trace = build_trace(program, "t")
        blob = dumps_trace_bytes(trace, version=3)
        loaded = loads_trace(blob)
        entries_match(trace, loaded)
        assert loaded.content_digest() == trace.content_digest()

    @given(any_programs)
    @settings(max_examples=40, deadline=None)
    def test_reencode_is_byte_stable(self, program):
        # decode(encode(t)) re-encodes to the *same bytes* — the wire
        # memo keyed on content digest depends on this.
        trace = build_trace(program, "t")
        blob = dumps_trace_bytes(trace, version=3)
        assert dumps_trace_bytes(loads_trace(blob), version=3) == blob

    @given(program=any_programs)
    @settings(max_examples=30, deadline=None)
    def test_all_formats_agree_on_digest(self, program, tmp_path_factory):
        trace = build_trace(program, "t")
        digests = set()
        base = tmp_path_factory.mktemp("fmt")
        for version in SUPPORTED_VERSIONS:
            path = base / f"v{version}.trace"
            save_trace(trace, path, version=version)
            reborn = load_trace(path)
            entries_match(trace, reborn)
            digests.add(reborn.content_digest())
        assert digests == {trace.content_digest()}

    @given(any_programs, st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_lazy_equals_eager_under_random_access(self, program, seed):
        trace = build_trace(program, "t")
        lazy = loads_trace(dumps_trace_bytes(trace, version=3))
        if len(trace):
            # Touch entries out of order first: materialisation order
            # must not affect what comes back.
            position = seed % len(trace)
            assert lazy.entries[position].eid == position
            assert entries_equal(lazy.entries[position],
                                 trace.entries[position])
        entries_match(trace, lazy)

    @given(any_programs)
    @settings(max_examples=30, deadline=None)
    def test_digest_formula_is_the_documented_one(self, program):
        # The digest hashes one repr per entry; the hand-written
        # __repr__s must keep producing exactly these strings or every
        # stored digest silently changes.
        trace = build_trace(program, "t")
        digest = hashlib.blake2b(digest_size=16)
        digest.update(b"trace-content-v1;")
        digest.update(len(trace.entries).to_bytes(8, "little"))
        for entry in trace.entries:
            digest.update(repr(entry).encode("utf-8", "replace"))
            digest.update(b";")
        assert trace.content_digest() == digest.hexdigest()

    def test_empty_trace_round_trips(self):
        trace = build_trace([], "empty")
        loaded = loads_trace(dumps_trace_bytes(trace, version=3))
        entries_match(trace, loaded)

    @given(any_programs, any_programs)
    @settings(max_examples=25, deadline=None)
    def test_diff_identical_across_wire(self, left_ops, right_ops):
        left, right = build_trace(left_ops, "L"), build_trace(right_ops, "R")
        direct = view_diff(left, right)
        wired = view_diff(loads_trace(dumps_trace_bytes(left, version=3)),
                          loads_trace(dumps_trace_bytes(right, version=3)))
        assert wired.similar_left == direct.similar_left
        assert wired.similar_right == direct.similar_right
        assert wired.num_diffs() == direct.num_diffs()


class TestV3Files:
    def test_read_header_and_key_table(self, tmp_path):
        trace = build_trace([("new",), ("call", 0, 0, 1), ("set", 0, 1, 2)],
                            "t")
        path = tmp_path / "t.trace"
        save_trace(trace, path, extra_metadata={"tag": "x"}, version=3)
        header = read_header(path)
        assert header["format"] == 3
        assert header["name"] == "t"
        assert header["entries"] == len(trace)
        assert header["metadata"]["tag"] == "x"
        meta, table = read_key_table(path)
        assert meta["format"] == 3
        assert len(table) == header["keys"] > 0
        loaded = load_trace(path)
        for entry, kid in zip(loaded.entries, loaded.key_ids):
            assert table.key_of(kid) == entry.key()

    def test_truncated_file_raises(self, tmp_path):
        trace = build_trace([("new",), ("call", 0, 0, 1)], "t")
        path = tmp_path / "t.trace"
        save_trace(trace, path, version=3)
        blob = path.read_bytes()
        for cut in (2, 6, len(blob) - 1):
            clipped = tmp_path / f"cut{cut}.trace"
            clipped.write_bytes(blob[:cut])
            with pytest.raises(ValueError):
                load_trace(clipped)

    def test_corrupt_section_table_raises(self, tmp_path):
        trace = build_trace([("new",), ("call", 0, 0, 1)], "t")
        blob = bytearray(dumps_trace_bytes(trace, version=3))
        # Flip a byte inside the header JSON: either the JSON parse or
        # the section-bounds validation must reject it.
        blob[12] ^= 0xFF
        with pytest.raises(ValueError):
            loads_trace(bytes(blob))

    def test_wrong_magic_falls_back_to_text_parse_error(self, tmp_path):
        trace = build_trace([("new",)], "t")
        blob = bytearray(dumps_trace_bytes(trace, version=3))
        blob[:4] = b"XXXX"
        with pytest.raises(ValueError):
            loads_trace(bytes(blob))


class TestWireFormatSelection:
    def test_env_override(self, monkeypatch):
        monkeypatch.delenv(WIRE_FORMAT_ENV, raising=False)
        assert wire_format() == FORMAT_VERSION == 3
        monkeypatch.setenv(WIRE_FORMAT_ENV, "2")
        assert wire_format() == 2
        assert wire_format(1) == 1  # explicit beats the environment
        trace = build_trace([("new",), ("call", 0, 0, 1)], "t")
        blob = dumps_trace_bytes(trace)
        assert not blob.startswith(b"RPV3")  # env picked the text wire
        entries_match(trace, loads_trace(blob))

    def test_invalid_versions_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="version 9"):
            wire_format(9)
        monkeypatch.setenv(WIRE_FORMAT_ENV, "banana")
        with pytest.raises(ValueError, match=WIRE_FORMAT_ENV):
            wire_format()


class TestStoreFormats:
    def test_mixed_format_store_diffs(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path / "store")
        old = build_trace([("new",), ("call", 0, 0, 1)], "old")
        new = build_trace([("new",), ("call", 0, 0, 2)], "new")
        monkeypatch.setenv(WIRE_FORMAT_ENV, "2")
        store.save(old)
        monkeypatch.delenv(WIRE_FORMAT_ENV)
        store.save(new)
        formats = {r.key: r.format for r in store.records()}
        assert formats == {"old": 2, "new": 3}
        result = view_diff(store.load("old"), store.load("new"))
        assert result.num_diffs() == view_diff(old, new).num_diffs()

    def test_migrate_format_and_stats(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path / "store")
        monkeypatch.setenv(WIRE_FORMAT_ENV, "2")
        for index in range(3):
            store.save(build_trace([("new",), ("call", 0, 0, index)],
                                   f"t{index}"))
        monkeypatch.delenv(WIRE_FORMAT_ENV)
        before = {r.key: store.load(r.key).content_digest()
                  for r in store.records()}
        stats = store.format_stats()
        assert stats["formats"]["2"]["traces"] == 3
        outcome = store.migrate_format(3)
        assert outcome == {"version": 3, "migrated": 3, "skipped": 0,
                           "failed": 0}
        stats = store.format_stats()
        assert list(stats["formats"]) == ["3"]
        assert stats["traces"] == 3
        # Digests (and therefore identity) survive the rewrite.
        after = {r.key: store.load(r.key).content_digest()
                 for r in store.records()}
        assert after == before
        # A second migration is a no-op.
        assert store.migrate_format(3)["skipped"] == 3
