"""Tests for the offline CLI."""

import pytest

from repro.analysis.cli import main
from repro.analysis.serialize import save_trace

from helpers import myfaces_trace, simple_trace


@pytest.fixture()
def trace_files(tmp_path):
    old = myfaces_trace(min_range=32, name="old")
    new = myfaces_trace(min_range=1, new_version=True, name="new")
    old_path = tmp_path / "old.jsonl"
    new_path = tmp_path / "new.jsonl"
    save_trace(old, old_path)
    save_trace(new, new_path)
    return str(old_path), str(new_path)


class TestInfo:
    def test_summary(self, trace_files, capsys):
        old_path, _ = trace_files
        assert main(["info", old_path]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert "call" in out

    def test_tree(self, trace_files, capsys):
        old_path, _ = trace_files
        main(["info", old_path, "--tree"])
        out = capsys.readouterr().out
        assert "-->" in out


class TestViews:
    def test_lists_views(self, trace_files, capsys):
        old_path, _ = trace_files
        assert main(["views", old_path]) == 0
        out = capsys.readouterr().out
        assert "views:" in out
        assert "TH" in out


class TestDiff:
    def test_diff_finds_regression(self, trace_files, capsys):
        old_path, new_path = trace_files
        status = main(["diff", old_path, new_path])
        out = capsys.readouterr().out
        assert status == 1  # differences found
        assert "semantic diff" in out
        assert "_minCharRange" in out

    def test_identical_traces_exit_zero(self, tmp_path, capsys):
        trace = simple_trace([1, 2, 3], name="t")
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        save_trace(trace, a)
        save_trace(trace, b)
        assert main(["diff", str(a), str(b)]) == 0

    def test_lcs_algorithm(self, trace_files, capsys):
        old_path, new_path = trace_files
        main(["diff", old_path, new_path, "--algorithm", "optimized"])
        out = capsys.readouterr().out
        assert "lcs-optimized" in out


class TestAnalyze:
    def test_suspected_only(self, trace_files, capsys):
        old_path, new_path = trace_files
        status = main(["analyze", "--suspected-old", old_path,
                       "--suspected-new", new_path])
        out = capsys.readouterr().out
        assert status == 0
        assert "|A|=" in out

    def test_full_recipe(self, tmp_path, capsys):
        old_bad = myfaces_trace(min_range=32, name="ob")
        new_bad = myfaces_trace(min_range=1, new_version=True, name="nb")
        old_ok = myfaces_trace(min_range=32, name="oo")
        new_ok = myfaces_trace(min_range=32, new_version=True, name="no")
        paths = {}
        for key, trace in [("ob", old_bad), ("nb", new_bad),
                           ("oo", old_ok), ("no", new_ok)]:
            path = tmp_path / f"{key}.jsonl"
            save_trace(trace, path)
            paths[key] = str(path)
        status = main([
            "analyze",
            "--suspected-old", paths["ob"], "--suspected-new", paths["nb"],
            "--expected-old", paths["oo"], "--expected-new", paths["no"],
            "--regression-left", paths["no"],
            "--regression-right", paths["nb"],
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "|D|=" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
