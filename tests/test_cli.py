"""Tests for the offline CLI."""

import json

import pytest

from repro.analysis.cli import main, parse_config_flags
from repro.analysis.serialize import load_trace, save_trace
from repro.core.view_diff import ViewDiffConfig, view_diff
from repro.core.views import ViewType

from helpers import myfaces_trace, simple_trace


@pytest.fixture()
def trace_files(tmp_path):
    old = myfaces_trace(min_range=32, name="old")
    new = myfaces_trace(min_range=1, new_version=True, name="new")
    old_path = tmp_path / "old.jsonl"
    new_path = tmp_path / "new.jsonl"
    save_trace(old, old_path)
    save_trace(new, new_path)
    return str(old_path), str(new_path)


class TestInfo:
    def test_summary(self, trace_files, capsys):
        old_path, _ = trace_files
        assert main(["info", old_path]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert "call" in out

    def test_tree(self, trace_files, capsys):
        old_path, _ = trace_files
        main(["info", old_path, "--tree"])
        out = capsys.readouterr().out
        assert "-->" in out


class TestViews:
    def test_lists_views(self, trace_files, capsys):
        old_path, _ = trace_files
        assert main(["views", old_path]) == 0
        out = capsys.readouterr().out
        assert "views:" in out
        assert "TH" in out


class TestDiff:
    def test_diff_finds_regression(self, trace_files, capsys):
        old_path, new_path = trace_files
        status = main(["diff", old_path, new_path])
        out = capsys.readouterr().out
        assert status == 1  # differences found
        assert "semantic diff" in out
        assert "_minCharRange" in out

    def test_identical_traces_exit_zero(self, tmp_path, capsys):
        trace = simple_trace([1, 2, 3], name="t")
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        save_trace(trace, a)
        save_trace(trace, b)
        assert main(["diff", str(a), str(b)]) == 0

    def test_lcs_algorithm(self, trace_files, capsys):
        old_path, new_path = trace_files
        main(["diff", old_path, new_path, "--algorithm", "optimized"])
        out = capsys.readouterr().out
        assert "lcs-optimized" in out

    def test_engine_flag(self, trace_files, capsys):
        old_path, new_path = trace_files
        main(["diff", old_path, new_path, "--engine", "hirschberg"])
        out = capsys.readouterr().out
        assert "lcs-hirschberg" in out

    def test_config_flags_pass_through(self, trace_files, capsys):
        old_path, new_path = trace_files
        main(["diff", old_path, new_path, "--config", "skip_lcs_cells=0",
              "--config", "window=4"])
        out = capsys.readouterr().out
        expected = view_diff(
            load_trace(old_path), load_trace(new_path),
            config=ViewDiffConfig(skip_lcs_cells=0, window=4))
        assert f"{expected.num_diffs()} differences" in out

    def test_bad_config_key_rejected(self, trace_files):
        old_path, new_path = trace_files
        with pytest.raises(SystemExit):
            main(["diff", old_path, new_path, "--config", "bogus=1"])

    def test_bad_config_value_rejected(self, trace_files):
        old_path, new_path = trace_files
        with pytest.raises(SystemExit):
            main(["diff", old_path, new_path, "--config", "window=soon"])


class TestParseConfigFlags:
    def test_none_when_no_flags(self):
        assert parse_config_flags(None) is None
        assert parse_config_flags([]) is None

    def test_every_scalar_knob(self):
        config = parse_config_flags([
            "window=6", "radius=2", "relaxed=false",
            "max_secondary_pairs=9", "scan_limit=none",
            "skip_lcs_cells=128"])
        assert config == ViewDiffConfig(
            window=6, radius=2, relaxed=False, max_secondary_pairs=9,
            scan_limit=None, skip_lcs_cells=128)

    def test_view_types_list(self):
        config = parse_config_flags(["view_types=method,target_object"])
        assert config.view_types == (ViewType.METHOD,
                                     ViewType.TARGET_OBJECT)

    def test_unknown_view_type(self):
        with pytest.raises(SystemExit):
            parse_config_flags(["view_types=sideways"])

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            parse_config_flags(["window"])


class TestAnalyze:
    def test_suspected_only(self, trace_files, capsys):
        old_path, new_path = trace_files
        status = main(["analyze", "--suspected-old", old_path,
                       "--suspected-new", new_path])
        out = capsys.readouterr().out
        assert status == 0
        assert "|A|=" in out

    def test_full_recipe(self, tmp_path, capsys):
        old_bad = myfaces_trace(min_range=32, name="ob")
        new_bad = myfaces_trace(min_range=1, new_version=True, name="nb")
        old_ok = myfaces_trace(min_range=32, name="oo")
        new_ok = myfaces_trace(min_range=32, new_version=True, name="no")
        paths = {}
        for key, trace in [("ob", old_bad), ("nb", new_bad),
                           ("oo", old_ok), ("no", new_ok)]:
            path = tmp_path / f"{key}.jsonl"
            save_trace(trace, path)
            paths[key] = str(path)
        status = main([
            "analyze",
            "--suspected-old", paths["ob"], "--suspected-new", paths["nb"],
            "--expected-old", paths["oo"], "--expected-new", paths["no"],
            "--regression-left", paths["no"],
            "--regression-right", paths["nb"],
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "|D|=" in out


@pytest.fixture()
def populated_store(tmp_path):
    """A store directory holding the full four-trace recipe."""
    store_dir = tmp_path / "store"
    traces = {
        "ob": myfaces_trace(min_range=32, name="ob"),
        "nb": myfaces_trace(min_range=1, new_version=True, name="nb"),
        "oo": myfaces_trace(min_range=32, name="oo"),
        "no": myfaces_trace(min_range=32, new_version=True, name="no"),
    }
    for key, trace in traces.items():
        path = tmp_path / f"{key}.jsonl"
        save_trace(trace, path)
        assert main(["store", "add", str(store_dir), str(path),
                     "--key", key, "--tag", "myfaces"]) == 0
    return store_dir


class TestStore:
    def test_add_and_list(self, populated_store, capsys):
        capsys.readouterr()
        assert main(["store", "list", str(populated_store)]) == 0
        out = capsys.readouterr().out
        assert "4 trace(s)" in out
        assert "ob" in out and "[myfaces]" in out

    def test_list_filters_by_tag(self, populated_store, capsys):
        main(["store", "tag", str(populated_store), "ob", "bad"])
        capsys.readouterr()
        assert main(["store", "list", str(populated_store),
                     "--tag", "bad"]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s)" in out

    def test_show_tree(self, populated_store, capsys):
        assert main(["store", "show", str(populated_store), "ob",
                     "--tree"]) == 0
        out = capsys.readouterr().out
        assert "ob" in out
        assert "-->" in out

    def test_untag(self, populated_store, capsys):
        assert main(["store", "tag", str(populated_store), "ob",
                     "myfaces", "--remove"]) == 0
        out = capsys.readouterr().out
        assert "[myfaces]" not in out

    def test_rm(self, populated_store, capsys):
        assert main(["store", "rm", str(populated_store), "ob"]) == 0
        capsys.readouterr()
        main(["store", "list", str(populated_store)])
        assert "3 trace(s)" in capsys.readouterr().out

    def test_rm_missing_key_fails(self, populated_store, capsys):
        assert main(["store", "rm", str(populated_store), "nope"]) == 1
        assert "no trace" in capsys.readouterr().err

    def test_show_missing_key_fails(self, populated_store, capsys):
        assert main(["store", "show", str(populated_store), "nope"]) == 1
        assert "no trace" in capsys.readouterr().err

    def test_tag_missing_key_fails(self, populated_store, capsys):
        assert main(["store", "tag", str(populated_store), "nope",
                     "t"]) == 1
        assert "no trace" in capsys.readouterr().err

    def test_list_missing_dir_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace store"):
            main(["store", "list", str(tmp_path / "nowhere")])


class TestStoreDiff:
    def test_diff_stored_traces_without_recapture(self, populated_store,
                                                  capsys):
        status = main(["store", "diff", str(populated_store), "ob", "nb"])
        out = capsys.readouterr().out
        assert status == 1  # differences found
        assert "content digests:" in out and "differ" in out
        assert "_minCharRange" in out

    def test_identical_stored_traces_exit_zero(self, populated_store,
                                               capsys):
        status = main(["store", "diff", str(populated_store), "ob", "oo"])
        out = capsys.readouterr().out
        assert status == 0
        assert "content digests:" in out

    def test_equal_digests_flagged(self, populated_store, capsys):
        from repro.api.store import TraceStore
        store = TraceStore(populated_store, create=False)
        store.save(store.load("ob"), key="ob-copy")
        assert main(["store", "diff", str(populated_store), "ob",
                     "ob-copy"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_engine_and_config_flags(self, populated_store, capsys):
        assert main(["store", "diff", str(populated_store), "ob", "oo",
                     "--engine", "optimized",
                     "--config", "window=4"]) == 0
        assert "0 difference" in capsys.readouterr().out

    def test_missing_key_exits_two_not_one(self, populated_store, capsys):
        # 1 means "differences found"; a missing key must be distinct.
        assert main(["store", "diff", str(populated_store), "ob",
                     "nope"]) == 2
        assert "no trace" in capsys.readouterr().err


class TestBatch:
    def _spec(self, tmp_path, scenarios):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"scenarios": scenarios}),
                        encoding="utf-8")
        return str(path)

    def test_full_batch(self, tmp_path, populated_store, capsys):
        spec = self._spec(tmp_path, [
            {"name": "full", "suspected": ["ob", "nb"],
             "expected": ["oo", "no"], "regression": ["no", "nb"]},
            {"name": "baseline", "suspected": ["ob", "nb"],
             "engine": "optimized"},
        ])
        assert main(["batch", spec, "--store", str(populated_store),
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "2/2 scenarios ok" in out
        assert "engine=views" in out
        assert "engine=optimized" in out

    def test_failing_scenario_sets_exit_code(self, tmp_path,
                                             populated_store, capsys):
        spec = self._spec(tmp_path, [
            {"name": "ok", "suspected": ["ob", "nb"]},
            {"name": "broken", "suspected": ["ob", "missing"]},
        ])
        assert main(["batch", spec, "--store", str(populated_store)]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "1/2 scenarios ok" in out

    def test_engine_and_config_flags(self, tmp_path, populated_store,
                                     capsys):
        spec = self._spec(tmp_path,
                          [{"name": "s", "suspected": ["ob", "nb"]}])
        assert main(["batch", spec, "--store", str(populated_store),
                     "--engine", "views", "--config", "window=4"]) == 0
        assert "engine=views" in capsys.readouterr().out

    def test_empty_spec_rejected(self, tmp_path, populated_store):
        spec = self._spec(tmp_path, [])
        with pytest.raises(SystemExit):
            main(["batch", spec, "--store", str(populated_store)])

    def test_bad_pair_rejected(self, tmp_path, populated_store):
        spec = self._spec(tmp_path, [{"name": "s", "suspected": ["ob"]}])
        with pytest.raises(SystemExit):
            main(["batch", spec, "--store", str(populated_store)])

    def test_string_pair_rejected(self, tmp_path, populated_store):
        # "suspected": "ob" is len-2-iterable-adjacent JSON mistakes'
        # favourite shape; it must fail validation, not become ('o','b').
        spec = self._spec(tmp_path, [{"name": "s", "suspected": "ob"}])
        with pytest.raises(SystemExit, match="two trace keys"):
            main(["batch", spec, "--store", str(populated_store)])

    def test_missing_spec_file(self, tmp_path, populated_store):
        with pytest.raises(SystemExit, match="no batch spec"):
            main(["batch", str(tmp_path / "nope.json"),
                  "--store", str(populated_store)])

    def test_invalid_spec_json(self, tmp_path, populated_store):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope", encoding="utf-8")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["batch", str(bad), "--store", str(populated_store)])

    def test_missing_store_dir(self, tmp_path):
        spec = self._spec(tmp_path, [{"suspected": ["a", "b"]}])
        with pytest.raises(SystemExit, match="no trace store"):
            main(["batch", spec, "--store", str(tmp_path / "nowhere")])

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_executor_flag(self, tmp_path, populated_store, capsys,
                           executor):
        spec = self._spec(tmp_path, [
            {"name": "full", "suspected": ["ob", "nb"],
             "expected": ["oo", "no"], "regression": ["no", "nb"]},
        ])
        assert main(["batch", spec, "--store", str(populated_store),
                     "--executor", f"{executor}:2"]) == 0
        assert "1/1 scenarios ok" in capsys.readouterr().out

    def test_unknown_executor_rejected(self, tmp_path, populated_store):
        spec = self._spec(tmp_path, [{"suspected": ["ob", "nb"]}])
        with pytest.raises(SystemExit):
            main(["batch", spec, "--store", str(populated_store),
                  "--executor", "gpu"])


class TestSerializeRoundTripProperty:
    """Capture -> save -> load must preserve the view-diff verdict."""

    @pytest.mark.parametrize("min_range,new_version",
                             [(32, False), (1, True), (16, True)])
    def test_roundtrip_preserves_view_diff(self, tmp_path, min_range,
                                           new_version):
        reference = myfaces_trace(min_range=32, name="reference")
        trace = myfaces_trace(min_range=min_range,
                              new_version=new_version, name="probe")
        direct = view_diff(reference, trace)

        ref_path = tmp_path / "ref.jsonl"
        probe_path = tmp_path / "probe.jsonl"
        save_trace(reference, ref_path)
        save_trace(trace, probe_path)
        reloaded = view_diff(load_trace(ref_path), load_trace(probe_path))

        assert reloaded.num_diffs() == direct.num_diffs()
        assert reloaded.similar_left == direct.similar_left
        assert reloaded.similar_right == direct.similar_right
        assert reloaded.match_pairs == direct.match_pairs
        assert ([s.signature() for s in reloaded.sequences]
                == [s.signature() for s in direct.sequences])

    def test_roundtrip_of_captured_trace(self, tmp_path):
        # A real sys.settrace capture (not a hand-built trace): entry
        # keys must survive serialisation exactly.
        from repro.api import Session
        from repro.capture.filters import TraceFilter

        def program(n):
            return sum(range(n))

        session = Session().with_filter(
            TraceFilter(include_modules=(__name__,)))
        left = session.trace_call(program, 4, name="left")
        right = session.trace_call(program, 7, name="right")
        direct = view_diff(left, right)

        for trace, path in ((left, tmp_path / "l.jsonl"),
                            (right, tmp_path / "r.jsonl")):
            save_trace(trace, path)
        reloaded = view_diff(load_trace(tmp_path / "l.jsonl"),
                             load_trace(tmp_path / "r.jsonl"))
        assert reloaded.num_diffs() == direct.num_diffs()
        assert reloaded.match_pairs == direct.match_pairs


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["store"])

    def test_unknown_engine_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["diff", "a", "b", "--engine", "bogus"])


class TestCacheCli:
    def test_store_diff_populates_sidecar_cache(self, populated_store,
                                                capsys):
        main(["store", "diff", str(populated_store), "ob", "nb"])
        cache_dir = populated_store / "diffcache"
        assert len(list(cache_dir.glob("*.json"))) == 1
        # Warm re-run: same report, still exactly one entry.
        capsys.readouterr()
        status = main(["store", "diff", str(populated_store), "ob", "nb"])
        assert status == 1
        assert "_minCharRange" in capsys.readouterr().out
        assert len(list(cache_dir.glob("*.json"))) == 1

    def test_no_cache_flag_skips_the_sidecar(self, populated_store):
        main(["store", "diff", str(populated_store), "ob", "nb",
              "--no-cache"])
        assert not (populated_store / "diffcache").exists()

    def test_diff_caches_only_with_explicit_dir(self, trace_files,
                                                tmp_path):
        old_path, new_path = trace_files
        main(["diff", old_path, new_path])
        cache_dir = tmp_path / "cli-cache"
        main(["diff", old_path, new_path, "--cache", str(cache_dir)])
        assert len(list(cache_dir.glob("*.json"))) == 1

    def test_batch_reports_cache_hits(self, populated_store, tmp_path,
                                      capsys):
        spec = {"scenarios": [
            {"name": "s", "suspected": ["ob", "nb"],
             "expected": ["oo", "no"]}]}
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        args = ["batch", str(spec_path), "--store", str(populated_store)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cache:" in first
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "2 hit(s)" in warm and "0 miss(es)" in warm

    def test_cache_stats_prune_clear(self, populated_store, capsys):
        main(["store", "diff", str(populated_store), "ob", "nb"])
        main(["store", "diff", str(populated_store), "ob", "oo"])
        capsys.readouterr()
        # A store path resolves to its diffcache sidecar.
        assert main(["cache", "stats", str(populated_store)]) == 0
        assert "2 entr(ies)" in capsys.readouterr().out
        assert main(["cache", "prune", str(populated_store),
                     "--keep", "1"]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert main(["cache", "clear", str(populated_store)]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert main(["cache", "stats", str(populated_store)]) == 0
        assert "0 entr(ies)" in capsys.readouterr().out

    def test_cache_prune_needs_a_criterion(self, populated_store):
        with pytest.raises(SystemExit, match="--keep"):
            main(["cache", "prune", str(populated_store)])

    def test_truncated_cache_entry_is_recovered_from(self,
                                                     populated_store,
                                                     capsys):
        main(["store", "diff", str(populated_store), "ob", "nb"])
        (entry,) = (populated_store / "diffcache").glob("*.json")
        entry.write_text(entry.read_text()[:40])  # truncate on disk
        capsys.readouterr()
        status = main(["store", "diff", str(populated_store), "ob", "nb"])
        assert status == 1  # recomputed: same differences as cold
        assert "_minCharRange" in capsys.readouterr().out


class TestEngines:
    def test_lists_every_registered_engine(self, capsys):
        from repro.api.engines import available_engines
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in available_engines():
            assert name in out

    def test_shows_capability_flags(self, capsys):
        main(["engines"])
        out = capsys.readouterr().out
        assert "cacheable" in out
        assert "accepts_executor" in out
        assert "accepts_key_table" in out
        assert "accepts_cache" in out


class TestAnchoredDiff:
    def test_anchored_engine_matches_inner(self, trace_files, capsys):
        old_path, new_path = trace_files
        assert main(["diff", old_path, new_path,
                     "--engine", "views"]) == 1
        plain = capsys.readouterr().out
        assert main(["diff", old_path, new_path,
                     "--engine", "anchored:views"]) == 1
        anchored = capsys.readouterr().out
        assert "_minCharRange" in anchored
        # Same differences, same sequence report.
        assert anchored == plain

    def test_anchor_stats_flag(self, trace_files, capsys):
        old_path, new_path = trace_files
        main(["diff", old_path, new_path, "--engine", "anchored:views",
              "--anchor-stats"])
        out = capsys.readouterr().out
        assert "anchors:" in out
        assert "candidates:" in out
        assert "gaps:" in out

    def test_anchor_knobs_via_config_flags(self, trace_files, capsys):
        old_path, new_path = trace_files
        status = main(["diff", old_path, new_path,
                       "--engine", "anchored:optimized",
                       "--config", "anchor_min_run=4",
                       "--config", "anchor_max_occurrence=2",
                       "--anchor-stats"])
        assert status == 1
        assert "anchors:" in capsys.readouterr().out
