"""The interned data layer: KeyTable semantics and the lazy ViewWeb."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keytable import KeyTable
from repro.core.lcs import OpCounter
from repro.core.lcs_diff import lcs_diff
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.core.view_diff import ViewDiffConfig, view_diff
from repro.core.views import ViewType
from repro.core.web import ViewWeb

from helpers import myfaces_trace

# Small entry "programs" reusing the shape of test_properties.
operation = st.one_of(
    st.tuples(st.just("new")),
    st.tuples(st.just("call"), st.integers(0, 3), st.integers(0, 2),
              st.integers(0, 5)),
    st.tuples(st.just("set"), st.integers(0, 3), st.integers(0, 1),
              st.integers(0, 5)),
)
programs = st.lists(operation, max_size=40)

CLASSES = ("Alpha", "Beta")
METHODS = ("m0", "m1", "m2")
FIELDS = ("f0", "f1")


def build_trace(program, name="", key_table=None):
    builder = TraceBuilder(name=name, key_table=key_table)
    tid = builder.main_tid
    objects = []
    for op in program:
        if op[0] == "new":
            cls = CLASSES[len(objects) % len(CLASSES)]
            objects.append(builder.record_init(
                tid, cls, (), serialization=(cls, len(objects))))
        elif not objects:
            continue
        elif op[0] == "call":
            _, obj_at, method_at, value = op
            obj = objects[obj_at % len(objects)]
            builder.record_call(tid, obj, METHODS[method_at], (prim(value),))
            builder.record_return(tid, prim(value))
        else:
            _, obj_at, field_at, value = op
            obj = objects[obj_at % len(objects)]
            builder.record_set(tid, obj, FIELDS[field_at], prim(value))
    builder.record_end(tid)
    return builder.build()


class TestKeyTable:
    @given(programs)
    @settings(max_examples=80, deadline=None)
    def test_interning_preserves_event_equality(self, program):
        """Two entries intern to the same id iff their keys are equal."""
        trace = build_trace(program)
        table = KeyTable()
        ids = table.ids_for(trace)
        entries = trace.entries
        for i, entry_i in enumerate(entries):
            for j, entry_j in enumerate(entries):
                assert ((ids[i] == ids[j])
                        == (entry_i.key() == entry_j.key()))

    @given(programs, programs)
    @settings(max_examples=40, deadline=None)
    def test_shared_table_aligns_two_traces(self, left_ops, right_ops):
        table = KeyTable()
        left = build_trace(left_ops, "L")
        right = build_trace(right_ops, "R")
        ids_l = table.ids_for(left)
        ids_r = table.ids_for(right)
        for i, entry_l in enumerate(left.entries):
            for j, entry_r in enumerate(right.entries):
                assert ((ids_l[i] == ids_r[j])
                        == (entry_l.key() == entry_r.key()))

    def test_ids_for_reuses_carried_column(self):
        table = KeyTable()
        trace = build_trace([("new",), ("set", 0, 0, 1)], key_table=table)
        assert trace.key_table is table
        assert table.ids_for(trace) is trace.key_ids

    def test_translation_from_foreign_table(self):
        """A trace interned against another table translates per distinct
        key, and the translated column agrees with direct interning."""
        own = KeyTable()
        trace = build_trace([("new",), ("set", 0, 0, 1), ("set", 0, 0, 1),
                             ("call", 0, 1, 2)], key_table=own)
        pair = KeyTable()
        pair.intern(("unrelated",))  # offset the id space
        column = pair.ids_for(trace)
        fresh = KeyTable()
        fresh.intern(("unrelated",))
        assert list(column) == list(fresh.intern_entries(trace.entries))

    def test_for_pair_prefers_common_carried_table(self):
        table = KeyTable()
        left = build_trace([("new",)], "L", key_table=table)
        right = build_trace([("new",)], "R", key_table=table)
        assert KeyTable.for_pair(left, right) is table
        foreign = build_trace([("new",)], "F")
        assert KeyTable.for_pair(left, foreign) is not table

    @given(programs, programs)
    @settings(max_examples=25, deadline=None)
    def test_interned_diffing_is_result_identical(self, left_ops, right_ops):
        left = build_trace(left_ops, "L")
        right = build_trace(right_ops, "R")
        for diff in (
            lambda interned, counter: view_diff(
                left, right, counter=counter,
                config=ViewDiffConfig(interned=interned)),
            lambda interned, counter: lcs_diff(
                left, right, interned=interned, counter=counter),
        ):
            counter_t, counter_i = OpCounter(), OpCounter()
            tupled = diff(False, counter_t)
            interned = diff(True, counter_i)
            assert tupled.similar_left == interned.similar_left
            assert tupled.similar_right == interned.similar_right
            assert counter_t.total == counter_i.total


class TestTraceCaches:
    def test_thread_ids_cached_and_fresh_per_build(self):
        builder = TraceBuilder(name="t")
        tid = builder.main_tid
        obj = builder.record_init(tid, "A", (), serialization=("A", 1))
        builder.record_set(tid, obj, "f", prim(1))
        first = builder.build()
        assert first.thread_ids() == [0]
        assert first.thread_ids() == [0]  # cached path
        child = builder.record_fork(tid)
        builder.record_set(child, obj, "f", prim(2))
        second = builder.build()
        # The earlier snapshot's cache is not polluted by later recording.
        assert first.thread_ids() == [0]
        assert second.thread_ids() == [0, child]

    def test_fingerprint_stable_and_content_sensitive(self):
        a1 = myfaces_trace(name="a")
        a2 = myfaces_trace(name="a")
        b = myfaces_trace(new_version=True, name="a")
        assert a1.fingerprint() == a1.fingerprint()
        assert a1.fingerprint() == a2.fingerprint()
        assert a1.fingerprint() != b.fingerprint()


class TestLazyViewWeb:
    def test_unused_view_types_never_built(self):
        web = ViewWeb(myfaces_trace())
        assert web.built_view_types() == frozenset()
        assert web.thread_view(0) is not None
        assert web.built_view_types() == {ViewType.THREAD}
        assert ViewType.METHOD not in web.built_view_types()
        assert ViewType.TARGET_OBJECT not in web.built_view_types()
        assert ViewType.ACTIVE_OBJECT not in web.built_view_types()

    def test_counts_builds_everything(self):
        web = ViewWeb(myfaces_trace())
        counts = web.counts()
        assert web.built_view_types() == frozenset(ViewType)
        assert counts["total"] == sum(
            counts[k] for k in ("thread", "method", "target_object",
                                "active_object"))

    def test_identical_trace_diff_stays_thread_only(self):
        """Lock-step matching of equal traces never touches secondary
        views — the laziness pay-off the motivation promises."""
        left = myfaces_trace(name="L")
        right = myfaces_trace(name="R")
        web_l, web_r = ViewWeb(left), ViewWeb(right)
        result = view_diff(left, right, web_left=web_l, web_right=web_r)
        assert result.num_diffs() == 0
        assert web_l.built_view_types() == {ViewType.THREAD}
        assert web_r.built_view_types() == {ViewType.THREAD}

    def test_index_columns_are_compact(self):
        from array import array
        web = ViewWeb(myfaces_trace())
        for view in web.all_views():
            assert isinstance(view.indices, array)
            assert view.indices.typecode == "I"
