"""Tests for the Rhino-analogue engine (lexer, parser, compiler, VM)."""

import pytest

from repro.workloads.bugs import ROOT_CAUSE_DISTRIBUTION
from repro.workloads.minijs.bug_registry import MINIJS_BUGS, scaled
from repro.workloads.minijs.engine import Engine, run_script
from repro.workloads.minijs.icode import CALL, JUMP, PUSH
from repro.workloads.minijs.jscompiler import JsCompiler
from repro.workloads.minijs.jsparser import parse_js
from repro.workloads.minijs.tokens import JsSyntaxError, tokenize_js
from repro.workloads.minijs.vm import JsRuntimeError, display, truthy


def run(source: str, **kwargs) -> list[str]:
    return run_script(source, **kwargs)


class TestLexer:
    def test_tokens(self):
        kinds = [(t.kind, t.text) for t in tokenize_js("var x = 1.5;")]
        assert kinds[:4] == [("kw", "var"), ("name", "x"), ("op", "="),
                             ("num", "1.5")]

    def test_two_char_ops(self):
        texts = [t.text for t in tokenize_js("a <= b && c == d")]
        assert "<=" in texts
        assert "&&" in texts
        assert "==" in texts

    def test_string_escapes(self):
        [token, _] = tokenize_js(r"'a\nb'")
        assert token.text == "a\nb"

    def test_comments(self):
        texts = [t.text for t in tokenize_js("a // hi\nb")]
        assert texts[:2] == ["a", "b"]

    def test_unterminated_string(self):
        with pytest.raises(JsSyntaxError):
            tokenize_js("'oops")

    def test_bad_char(self):
        with pytest.raises(JsSyntaxError):
            tokenize_js("a @ b")


class TestParser:
    def test_precedence(self):
        script = parse_js("var x = 1 + 2 * 3;")
        decl = script.body[0]
        assert decl.value.op == "+"
        assert decl.value.right.op == "*"

    def test_else_if_chain(self):
        script = parse_js("""
            if (a == 1) { b = 1; } else if (a == 2) { b = 2; }
            else { b = 3; }
        """)
        outer = script.body[0]
        assert outer.else_body is not None

    def test_function_and_call(self):
        script = parse_js("function f(a, b) { return a; } f(1, 2);")
        decl, call = script.body
        assert decl.params == ("a", "b")
        assert call.expr.func == "f"

    def test_array_literal_and_index(self):
        script = parse_js("var a = [1, 2, 3]; a[0] = a[1];")
        assert len(script.body[0].value.items) == 3

    def test_invalid_assignment(self):
        with pytest.raises(JsSyntaxError):
            parse_js("1 = 2;")


class TestCompiler:
    def test_folding_only_when_enabled(self):
        script = parse_js("var x = 2 + 3;")
        plain = JsCompiler(fold_constants=False).compile_script(script)
        folded = JsCompiler(fold_constants=True).compile_script(script)
        assert len(folded.main.instrs) < len(plain.main.instrs)
        assert folded.main.instrs[0].op == PUSH
        assert folded.main.instrs[0].arg1 == 5

    def test_break_emits_jump(self):
        script = parse_js("while (true) { break; }")
        unit = JsCompiler().compile_script(script)
        assert any(i.op == JUMP for i in unit.main.instrs)

    def test_break_outside_loop(self):
        with pytest.raises(JsSyntaxError):
            JsCompiler().compile_script(parse_js("break;"))

    def test_function_compiled_separately(self):
        script = parse_js("function f() { return 1; } f();")
        unit = JsCompiler().compile_script(script)
        assert unit.function("f") is not None
        assert any(i.op == CALL for i in unit.main.instrs)


class TestVm:
    def test_arithmetic_and_print(self):
        assert run("print(1 + 2 * 3 - 4 / 2);") == ["5"]

    def test_string_concat_coercion(self):
        assert run("print('n=' + 42);") == ["n=42"]

    def test_comparisons(self):
        assert run("print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4, 1 == 1.0, "
                   "1 != 2);") == ["true true false true true true"]

    def test_logical_short_circuit(self):
        out = run("""
            var calls = 0;
            function side() { calls = calls + 1; return true; }
            var r = false && side();
            print(calls);
            var s = true || side();
            print(calls);
        """)
        assert out == ["0", "0"]

    def test_while_and_for(self):
        assert run("""
            var sum = 0;
            for (var i = 0; i < 5; i = i + 1) { sum = sum + i; }
            print(sum);
        """) == ["10"]

    def test_break_and_continue(self):
        assert run("""
            var sum = 0;
            for (var i = 0; i < 10; i = i + 1) {
                if (i == 2) { continue; }
                if (i == 5) { break; }
                sum = sum + i;
            }
            print(sum);
        """) == ["8"]  # 0+1+3+4

    def test_recursion(self):
        assert run("""
            function fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            print(fib(10));
        """) == ["55"]

    def test_arrays(self):
        assert run("""
            var a = [1, 2, 3];
            push(a, 4);
            a[0] = 9;
            print(a[0] + a[3], len(a), a[0 - 1]);
        """) == ["13 4 4"]

    def test_globals_visible_in_functions(self):
        assert run("""
            var counter = 0;
            function bump() { counter = counter + 1; return counter; }
            bump(); bump();
            print(counter);
        """) == ["2"]

    def test_locals_shadow_globals(self):
        assert run("""
            var x = 1;
            function f() { var x = 99; return x; }
            f();
            print(x);
        """) == ["1"]

    def test_negative_modulo_js_semantics(self):
        assert run("print((0 - 7) % 3);") == ["-1"]

    def test_builtins(self):
        assert run("print(substr('hello', 1, 3), charAt('hi', 0), "
                   "abs(0 - 5), str(2.0));") == ["el h 5 2"]

    def test_runtime_errors(self):
        for source in ("print(missing);", "missingFn();",
                       "print(1 / 0);", "print('a' - 1);",
                       "var a = 1; print(a[0]);"):
            with pytest.raises(JsRuntimeError):
                run(source)

    def test_step_budget(self):
        from repro.workloads.minijs.vm import Interpreter
        unit = JsCompiler().compile_script(parse_js("while (true) { }"))
        interpreter = Interpreter(unit)
        interpreter.MAX_STEPS = 100
        with pytest.raises(JsRuntimeError):
            interpreter.run()

    def test_display(self):
        assert display(None) == "null"
        assert display(True) == "true"
        assert display(2.0) == "2"
        assert display([1, None]) == "[1, null]"

    def test_truthy(self):
        assert not truthy(None)
        assert not truthy(0)
        assert not truthy("")
        assert truthy([])  # arrays are objects: truthy


class TestEngineVersions:
    def test_old_rejects_bugs(self):
        with pytest.raises(ValueError):
            Engine(version="old", bug="T-LE-TYPO")

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            Engine(version="vintage")

    def test_versions_agree_without_bug(self):
        source = "var x = 10 - 3; print(x + 1);"
        assert run(source, version="old") == run(source, version="new")


class TestBugRegistry:
    def test_fourteen_bugs(self):
        assert len(MINIJS_BUGS.all()) == 14

    def test_category_mix_tracks_distribution(self):
        mix = MINIJS_BUGS.category_mix()
        for category, target in ROOT_CAUSE_DISTRIBUTION.items():
            assert category in mix
            assert abs(mix[category] - target) < 0.12

    @pytest.mark.parametrize("spec", MINIJS_BUGS.all(),
                             ids=lambda s: s.bug_id)
    def test_bug_manifests_and_alternate_agrees(self, spec):
        failing = scaled(str(spec.failing_input), 10)
        passing = scaled(str(spec.passing_input), 10)

        def outcome(source, version, bug=None):
            try:
                return ("ok", run(source, version=version, bug=bug))
            except Exception as exc:  # noqa: BLE001 - outcome capture
                return ("error", str(exc))

        assert outcome(failing, "old") != \
            outcome(failing, "new", spec.bug_id)
        assert outcome(passing, "old") == \
            outcome(passing, "new", spec.bug_id)

    def test_scaled_substitution(self):
        assert "{N}" not in scaled("work({N});", 7)
        assert "work(7);" in scaled("work({N});", 7)
