"""End-to-end coverage of the trace-diff service (:mod:`repro.service`).

Everything drives a real server over real sockets — the in-thread
:class:`ServiceThread` harness for speed, plus one subprocess test for
the ``repro serve`` CLI entry point.  The acceptance bar: ≥ 32
concurrent submit-diff requests against a *sharded* store must produce
results bit-identical to direct :meth:`Session.diff` signatures.
"""

import json
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.api.session import Session
from repro.api.store import TraceStore
from repro.core.diffs import result_signature
from repro.service import (ReproService, ServiceClient, ServiceError,
                           ServiceThread)

from helpers import simple_trace


@pytest.fixture()
def service(tmp_path):
    svc = ReproService(tmp_path / "store", workers=2)
    with ServiceThread(svc) as running:
        yield running, ServiceClient(running.url)


class TestEndpoints:
    def test_health_and_stats(self, service):
        _svc, client = service
        health = client.health()
        assert health["ok"] and not health["draining"]
        stats = client.stats()
        assert stats["workers"]["count"] == 2
        assert stats["workers"]["executor"] == "serial"
        assert "shm_bytes_shipped" in stats["workers"]
        assert "index" in stats and "cache" in stats

    def test_capture_upload_roundtrip(self, service):
        svc, client = service
        trace = simple_trace([1, 2, 3], name="up")
        job = client.submit_capture(trace=trace, key="up",
                                    tags=("fresh",), scenario="s1")
        record = client.wait(job)
        assert record["state"] == "done"
        result = record["result"]
        assert result["key"] == "up"
        assert result["digest"] == trace.content_digest()
        assert result["tags"] == ["fresh"]
        assert svc.store.load("up").content_digest() == \
            trace.content_digest()

    def test_capture_dedup_lands_on_existing_key(self, service):
        _svc, client = service
        trace = simple_trace([5, 6], name="t")
        client.wait(client.submit_capture(trace=trace, key="first"))
        record = client.wait(client.submit_capture(
            trace=trace, key="second", dedup=True))
        assert record["result"]["key"] == "first"
        assert record["result"]["deduped"] is True

    def test_registered_workload_capture(self, service):
        svc, client = service

        def workload(n):
            return sum(range(n))

        svc.register_workload("sums", workload)
        record = client.wait(client.submit_capture(
            workload="sums", args=(4,), key="sums/4"))
        assert record["result"]["key"] == "sums/4"
        assert record["result"]["entries"] > 0

    def test_unregistered_workload_fails_the_job(self, service):
        _svc, client = service
        job = client.submit_capture(workload="ghost", key="x")
        with pytest.raises(ServiceError, match="ghost"):
            client.wait(job)

    def test_diff_and_cached_rerun(self, service):
        _svc, client = service
        client.wait(client.submit_capture(
            trace=simple_trace([1, 2, 3], name="a"), key="a"))
        client.wait(client.submit_capture(
            trace=simple_trace([1, 9, 3], name="b"), key="b"))
        cold = client.wait(client.submit_diff("a", "b"))["result"]
        assert cold["num_diffs"] == 2
        assert cold["cached"] is False
        warm = client.wait(client.submit_diff("a", "b"))["result"]
        assert warm["cached"] is True
        assert warm["signature"] == cold["signature"]
        assert warm["num_diffs"] == cold["num_diffs"]

    def test_diff_against_baseline_tag(self, service):
        _svc, client = service
        client.wait(client.submit_capture(
            trace=simple_trace([1, 2], name="old"), key="old",
            tags=("baseline",)))
        client.wait(client.submit_capture(
            trace=simple_trace([1, 7], name="new"), key="new"))
        record = client.wait(client.submit_diff(
            "new", baseline_tag="baseline"))
        assert record["result"]["right"] == "old"
        assert record["result"]["num_diffs"] > 0

    def test_diff_missing_key_errors_the_job(self, service):
        _svc, client = service
        with pytest.raises(ServiceError):
            client.wait(client.submit_diff("ghost", "ghost2"))

    def test_query_and_similar(self, service):
        _svc, client = service
        trace = simple_trace(list(range(20)), name="q1")
        client.wait(client.submit_capture(trace=trace, key="q1",
                                          tags=("qt",),
                                          scenario="checkout"))
        client.wait(client.submit_capture(
            trace=simple_trace(list(range(20)), name="q2"), key="q2"))
        assert [r["key"] for r in client.query(tag="qt")] == ["q1"]
        assert {r["key"] for r in client.query(scenario="checkout")} \
            == {"q1"}
        prefix = trace.content_digest()[:10]
        assert any(r["key"] == "q1"
                   for r in client.query(digest_prefix=prefix))
        similar = client.similar("q1")
        assert similar and similar[0]["key"] == "q2"
        assert similar[0]["score"] >= 1.0  # identical content

    def test_jobs_listing(self, service):
        _svc, client = service
        job = client.submit_capture(
            trace=simple_trace([1], name="x"), key="x")
        client.wait(job)
        listed = client.jobs()
        assert any(entry["id"] == job for entry in listed)

    def test_http_error_codes(self, service):
        svc, client = service
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/jobs/ghost")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/v1/query")
        assert err.value.status == 405
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/similar")  # missing ?key=
        assert err.value.status == 400
        import http.client
        connection = http.client.HTTPConnection(svc.host, svc.port)
        try:
            connection.request(
                "POST", "/v1/diffs", body=b"{not json",
                headers={"Content-Type": "application/json"})
            assert connection.getresponse().status == 400
        finally:
            connection.close()


class TestGracefulShutdown:
    def test_shutdown_drains_queued_jobs(self, tmp_path):
        svc = ReproService(tmp_path / "store", workers=1)
        with ServiceThread(svc) as running:
            client = ServiceClient(running.url)
            jobs = [client.submit_capture(
                trace=simple_trace([n], name=f"t{n}"), key=f"t{n}")
                for n in range(5)]
            client.shutdown()
        # The thread joined: every queued job must have completed.
        for job_id in jobs:
            assert running.jobs[job_id].state == "done"
        assert set(TraceStore(tmp_path / "store").keys()) == \
            {f"t{n}" for n in range(5)}

    def test_draining_refuses_new_submissions(self, tmp_path):
        svc = ReproService(tmp_path / "store", workers=1)
        thread = ServiceThread(svc)
        with thread as running:
            client = ServiceClient(running.url)
            client.shutdown()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    client.submit_capture(
                        trace=simple_trace([1], name="x"), key="x")
                except (ServiceError, OSError):
                    break  # 503 while draining, refused once closed
                time.sleep(0.01)
            else:
                pytest.fail("submissions were never refused")


class TestConcurrentDiffAcceptance:
    """≥ 32 concurrent submit-diff requests against a sharded store,
    bit-identical to direct ``Session.diff`` signatures."""

    PAIRS = 8
    REQUESTS = 32

    def test_32_concurrent_diffs_bit_identical(self, tmp_path):
        store = TraceStore(tmp_path / "store", layout="sharded")
        session = Session(store=store, cache=False)
        pairs = []
        for n in range(self.PAIRS):
            base = list(range(12))
            base[4 + (n % 6)] = 99 + n
            left = simple_trace(list(range(12)), name=f"left{n}")
            right = simple_trace(base, name=f"right{n}")
            store.save(left, key=f"pair{n}/left")
            store.save(right, key=f"pair{n}/right")
            pairs.append((f"pair{n}/left", f"pair{n}/right"))
        expected = {
            (left, right): json.dumps(
                result_signature(session.diff(left, right)),
                sort_keys=True, default=list)
            for left, right in pairs
        }

        svc = ReproService(store, workers=4)
        with ServiceThread(svc) as running:
            def one_request(n):
                client = ServiceClient(running.url)
                left, right = pairs[n % len(pairs)]
                job = client.submit_diff(left, right)
                record = client.wait(job, timeout=120)
                return (left, right), record["result"]["signature"]

            with ThreadPoolExecutor(max_workers=self.REQUESTS) as pool:
                outcomes = list(pool.map(one_request,
                                         range(self.REQUESTS)))
        assert len(outcomes) == self.REQUESTS
        for pair, signature in outcomes:
            assert signature == expected[pair], pair


class TestServeCli:
    def test_serve_boots_and_answers(self, tmp_path):
        store_dir = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.analysis.cli", "serve",
             str(store_dir), "--port", "0", "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line, line
            url = line.split("listening on ", 1)[1].split()[0]
            client = ServiceClient(url)
            assert client.health()["ok"]
            record = client.wait(client.submit_capture(
                trace=simple_trace([1, 2], name="cli"), key="cli"))
            assert record["result"]["key"] == "cli"
            assert [r["key"] for r in client.query(key_prefix="cli")] \
                == ["cli"]
            client.shutdown()
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
