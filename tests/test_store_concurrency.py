"""TraceStore atomicity under concurrent writers.

Process capture workers persist traces from wherever they run, so the
store must stay consistent when many threads *and* many processes write
at once: every file lands via write-to-unique-temp + ``os.replace``,
and index read-modify-writes serialise through an advisory ``flock``.
"""

import json
import multiprocessing
import threading

import pytest

from repro.api.store import INDEX_NAME, LOCK_NAME, TraceStore

from helpers import simple_trace


def _no_temp_litter(root):
    return [p.name for p in root.iterdir()
            if p.name.endswith(".tmp")] == []


def _write_burst(root, writer_id, keys_per_writer):
    store = TraceStore(root)
    for at in range(keys_per_writer):
        trace = simple_trace([writer_id, at], name=f"w{writer_id}-{at}")
        store.save(trace, key=f"w{writer_id}/t{at}",
                   tags=(f"writer-{writer_id}",))


class TestAtomicWrites:
    def test_save_leaves_no_temp_files(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace([1, 2]), key="a")
        assert _no_temp_litter(store.root)

    def test_failed_write_leaves_target_intact(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace([1, 2], name="keep"), key="a")
        with pytest.raises(RuntimeError, match="boom"):
            def _explode(tmp):
                tmp.write_text("partial", encoding="utf-8")
                raise RuntimeError("boom")
            store._atomic_write(store._path_for("a"), _explode)
        assert store.load("a").name == "keep"
        assert _no_temp_litter(store.root)

    def test_lock_file_is_not_listed_as_a_trace(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace([1]), key="a")
        store.tag("a", "x")  # takes the flock, creating the lock file
        assert (store.root / LOCK_NAME).exists()
        assert store.keys() == ["a"]

    def test_overwrite_is_atomic_for_readers(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace(list(range(50)), name="v1"), key="a")
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    trace = store.load("a")
                    assert trace.name in ("v1", "v2")
                    assert len(trace) in (52, 102)
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(10):
                store.save(simple_trace(list(range(100)), name="v2"),
                           key="a")
                store.save(simple_trace(list(range(50)), name="v1"),
                           key="a")
        finally:
            stop.set()
            thread.join()
        assert not failures


class TestConcurrentWriters:
    WRITERS = 4
    KEYS_EACH = 5

    def _verify(self, root):
        store = TraceStore(root, create=False)
        expected = {f"w{w}/t{k}" for w in range(self.WRITERS)
                    for k in range(self.KEYS_EACH)}
        assert set(store.keys()) == expected
        index = json.loads((root / INDEX_NAME).read_text(encoding="utf-8"))
        assert set(index["traces"]) == expected
        for key in expected:
            record = store.get(key)
            assert record.tags == (f"writer-{key[1]}",)
            assert store.load(key).name
        assert _no_temp_litter(root)

    def test_concurrent_thread_writers(self, tmp_path):
        root = tmp_path / "store"
        TraceStore(root)
        threads = [threading.Thread(target=_write_burst,
                                    args=(root, w, self.KEYS_EACH))
                   for w in range(self.WRITERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self._verify(root)

    def test_concurrent_process_writers(self, tmp_path):
        root = tmp_path / "store"
        TraceStore(root)
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        workers = [context.Process(target=_write_burst,
                                   args=(root, w, self.KEYS_EACH))
                   for w in range(self.WRITERS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(worker.exitcode == 0 for worker in workers)
        self._verify(root)

    def test_mixed_writers_one_key_each_tag_set_survives(self, tmp_path):
        # Many writers tagging the *same* key: all tags must survive
        # the read-modify-write races.
        root = tmp_path / "store"
        store = TraceStore(root)
        store.save(simple_trace([1]), key="shared")

        def tagger(n):
            TraceStore(root).tag("shared", f"tag-{n}")

        threads = [threading.Thread(target=tagger, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(store.get("shared").tags) == {
            f"tag-{n}" for n in range(8)}


class TestPortableLockFallback:
    """Where ``fcntl`` is unavailable, :func:`repro.api.store.locked_file`
    must fall back to the O_CREAT|O_EXCL lockfile protocol instead of
    silently skipping cross-process exclusion."""

    @pytest.fixture()
    def no_fcntl(self, monkeypatch):
        from repro.api import store as store_module
        monkeypatch.setattr(store_module, "fcntl", None)
        return store_module

    def test_store_operations_work_without_fcntl(self, no_fcntl, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace([1, 2], name="t"), key="a", tags=("x",))
        store.tag("a", "y")
        assert set(store.get("a").tags) == {"x", "y"}
        # The sidecar lock is released (no .held file left behind).
        assert not (store.root / (LOCK_NAME + ".held")).exists()

    def test_lock_excludes_and_releases(self, no_fcntl, tmp_path):
        from repro.api.store import locked_file
        target = tmp_path / "some.lock"
        held_path = tmp_path / "some.lock.held"
        with locked_file(target):
            assert held_path.exists()
            # A competing acquirer with a tiny timeout must give up.
            with pytest.raises(TimeoutError):
                with locked_file(target, timeout=0.05):
                    pass
        assert not held_path.exists()
        with locked_file(target, timeout=0.05):  # reacquirable
            pass

    def test_stale_lock_is_broken(self, no_fcntl, tmp_path):
        import os
        from repro.api.store import locked_file
        target = tmp_path / "some.lock"
        held_path = tmp_path / "some.lock.held"
        held_path.write_text("12345")
        ancient = 0  # epoch: far older than any stale horizon
        os.utime(held_path, (ancient, ancient))
        with locked_file(target, timeout=0.5, stale=5.0):
            assert held_path.read_text() != "12345"  # ours now

    def test_concurrent_taggers_without_fcntl(self, no_fcntl, tmp_path):
        root = tmp_path / "store"
        store = TraceStore(root)
        store.save(simple_trace([1]), key="shared")

        def tagger(n):
            TraceStore(root).tag("shared", f"tag-{n}")

        threads = [threading.Thread(target=tagger, args=(n,))
                   for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(store.get("shared").tags) == {
            f"tag-{n}" for n in range(6)}

    def test_break_stale_lock_never_deletes_a_fresh_lock(self, no_fcntl,
                                                         tmp_path):
        import os
        from repro.api.store import _break_stale_lock
        held = tmp_path / "x.lock.held"
        # A genuinely stale lock is broken ...
        held.write_text("dead")
        os.utime(held, (0, 0))
        _break_stale_lock(held, stale=5.0)
        assert not held.exists()
        # ... but one that turns out fresh at break time (the race the
        # blind-unlink protocol lost) is restored, not deleted.
        held.write_text("alive")
        _break_stale_lock(held, stale=5.0)
        assert held.exists() and held.read_text() == "alive"
        assert not list(tmp_path.glob("*.stale"))  # no tombstone litter
