"""TraceStore atomicity under concurrent writers.

Process capture workers persist traces from wherever they run, so the
store must stay consistent when many threads *and* many processes write
at once: every file lands via write-to-unique-temp + ``os.replace``,
and index read-modify-writes serialise through an advisory ``flock``.
"""

import json
import multiprocessing
import threading

import pytest

from repro.api.store import INDEX_NAME, LOCK_NAME, TraceStore

from helpers import simple_trace


def _no_temp_litter(root):
    return [p.name for p in root.iterdir()
            if p.name.endswith(".tmp")] == []


def _write_burst(root, writer_id, keys_per_writer):
    store = TraceStore(root)
    for at in range(keys_per_writer):
        trace = simple_trace([writer_id, at], name=f"w{writer_id}-{at}")
        store.save(trace, key=f"w{writer_id}/t{at}",
                   tags=(f"writer-{writer_id}",))


class TestAtomicWrites:
    def test_save_leaves_no_temp_files(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace([1, 2]), key="a")
        assert _no_temp_litter(store.root)

    def test_failed_write_leaves_target_intact(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace([1, 2], name="keep"), key="a")
        with pytest.raises(RuntimeError, match="boom"):
            def _explode(tmp):
                tmp.write_text("partial", encoding="utf-8")
                raise RuntimeError("boom")
            store._atomic_write(store._path_for("a"), _explode)
        assert store.load("a").name == "keep"
        assert _no_temp_litter(store.root)

    def test_lock_file_is_not_listed_as_a_trace(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace([1]), key="a")
        store.tag("a", "x")  # takes the flock, creating the lock file
        assert (store.root / LOCK_NAME).exists()
        assert store.keys() == ["a"]

    def test_overwrite_is_atomic_for_readers(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.save(simple_trace(list(range(50)), name="v1"), key="a")
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    trace = store.load("a")
                    assert trace.name in ("v1", "v2")
                    assert len(trace) in (52, 102)
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(10):
                store.save(simple_trace(list(range(100)), name="v2"),
                           key="a")
                store.save(simple_trace(list(range(50)), name="v1"),
                           key="a")
        finally:
            stop.set()
            thread.join()
        assert not failures


class TestConcurrentWriters:
    WRITERS = 4
    KEYS_EACH = 5

    def _verify(self, root):
        store = TraceStore(root, create=False)
        expected = {f"w{w}/t{k}" for w in range(self.WRITERS)
                    for k in range(self.KEYS_EACH)}
        assert set(store.keys()) == expected
        index = json.loads((root / INDEX_NAME).read_text(encoding="utf-8"))
        assert set(index["traces"]) == expected
        for key in expected:
            record = store.get(key)
            assert record.tags == (f"writer-{key[1]}",)
            assert store.load(key).name
        assert _no_temp_litter(root)

    def test_concurrent_thread_writers(self, tmp_path):
        root = tmp_path / "store"
        TraceStore(root)
        threads = [threading.Thread(target=_write_burst,
                                    args=(root, w, self.KEYS_EACH))
                   for w in range(self.WRITERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self._verify(root)

    def test_concurrent_process_writers(self, tmp_path):
        root = tmp_path / "store"
        TraceStore(root)
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        workers = [context.Process(target=_write_burst,
                                   args=(root, w, self.KEYS_EACH))
                   for w in range(self.WRITERS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(worker.exitcode == 0 for worker in workers)
        self._verify(root)

    def test_mixed_writers_one_key_each_tag_set_survives(self, tmp_path):
        # Many writers tagging the *same* key: all tags must survive
        # the read-modify-write races.
        root = tmp_path / "store"
        store = TraceStore(root)
        store.save(simple_trace([1]), key="shared")

        def tagger(n):
            TraceStore(root).tag("shared", f"tag-{n}")

        threads = [threading.Thread(target=tagger, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(store.get("shared").tags) == {
            f"tag-{n}" for n in range(8)}
