"""Quickstart: trace two versions of a program, diff them semantically,
and localise the regression cause.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import render_diff_report
from repro.api import Session
from repro.capture import traced
from repro.core.regression import evaluate_against_truth


# --- the program under study -------------------------------------------------

@traced
class PriceTable:
    """Computes discounted prices; the discount threshold is dynamic
    state fixed at construction."""

    def __init__(self, threshold, discount):
        self.threshold = threshold
        self.discount = discount

    def price_of(self, base):
        if base >= self.threshold:
            return base - self.discount
        return base

    def __repr__(self):
        return f"PriceTable(>={self.threshold}: -{self.discount})"


def old_version(basket):
    """Original: discounts apply from 100 upward."""
    table = PriceTable(100, 15)
    return sum(table.price_of(item) for item in basket)


def new_version(basket):
    """Refactored: a config indirection was added — and initialised with
    the wrong threshold (10 instead of 100)."""
    config = {"threshold": 10, "discount": 15}  # BUG: 10 should be 100
    table = PriceTable(config["threshold"], config["discount"])
    return sum(table.price_of(item) for item in basket)


# --- the analysis ---------------------------------------------------------------

def main():
    session = Session().with_filter(include_modules=("__main__",))

    # A regressing input (items between 10 and 100 now get discounted)
    # and a similar correct one (all items above 100 behave the same).
    regressing_basket = [40, 120, 60]
    correct_basket = [120, 150]

    print("old:", old_version(regressing_basket),
          " new:", new_version(regressing_basket), "(regression!)")

    outcome = session.run_scenario(
        old_version, new_version,
        regressing_input=regressing_basket,
        correct_input=correct_basket)

    print()
    print(outcome.render())
    print()
    print(render_diff_report(outcome.suspected, max_sequences=3))

    evaluation = evaluate_against_truth(
        outcome.report,
        lambda e: getattr(e.event, "value", None) is not None
        and e.event.value.serialization == 10)
    print()
    print(f"ground truth: {evaluation.true_positives} candidate(s) touch "
          f"the wrong threshold, {evaluation.false_positives} do not")


if __name__ == "__main__":
    main()
