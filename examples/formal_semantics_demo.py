"""The formal model (Sec. 2): run a core-language program, inspect its
trace, views, and a views-based diff between two program versions.

Run with::

    python examples/formal_semantics_demo.py
"""

from repro.analysis import render_trace_tree
from repro.core.view_diff import view_diff
from repro.core.web import ViewWeb
from repro.lang import run_source

PROGRAM = """
class Logger extends Object {
    Str name;
    Unit addMsg(Str msg) {
        this.name;
        return unit;
    }
}

class NumericEntityUtil extends Object {
    Int minCharRange;
    Int maxCharRange;
    Bool needsConversion(Int c) {
        var lo = this.minCharRange;
        var hi = this.maxCharRange;
        return c.lt(lo).or_(c.gt(hi));
    }
}

class ServletProcessor extends Object {
    Logger log;
    NumericEntityUtil conv;
    Unit setRequestType(Str kind) {
        this.log.addMsg("Setting request type");
        if (kind.equals("text/html")) {
            this.conv = new NumericEntityUtil(%LO%, 127);
        }
        this.log.addMsg("Set request type");
        return unit;
    }
    Int process(Int c) {
        var util = this.conv;
        if (util.needsConversion(c)) {
            return 0.sub(c);
        }
        return c;
    }
}

thread {
    var log = new Logger("app");
    var sp = new ServletProcessor(log, null);
    sp.setRequestType("text/html");
    sp.process(7);
    sp.process(64);
    spawn {
        log.addMsg("from worker thread");
    }
}
"""


def main():
    old_trace = run_source(PROGRAM.replace("%LO%", "32"), name="old")
    new_trace = run_source(PROGRAM.replace("%LO%", "1"), name="new")

    print(f"evaluation produced {len(old_trace)} trace entries "
          f"on {len(old_trace.thread_ids())} threads")
    print()
    print("the execution trace as a call tree (first 18 entries):")
    print(render_trace_tree(old_trace, limit=18))
    print()

    web = ViewWeb(old_trace)
    counts = web.counts()
    print(f"view web: {counts['total']} views "
          f"({counts['thread']} TH / {counts['method']} CM / "
          f"{counts['target_object']} TO / {counts['active_object']} AO)")
    method_view = web.method_view("ServletProcessor.setRequestType")
    print(f"CM view of ServletProcessor.setRequestType "
          f"({len(method_view)} entries):")
    for entry in list(method_view)[:5]:
        print("   ", entry.brief())
    print()

    result = view_diff(old_trace, new_trace)
    print(f"views-based diff old vs new: {result.num_diffs()} differences "
          f"in {len(result.sequences)} sequences "
          f"({len(result.anchor_pairs)} anchors via secondary views)")
    for sequence in result.sequences[:3]:
        print(sequence.brief(limit=3))

    # Navigate a link: from a differing entry to all views containing it.
    first_diff_eid = result.left_diff_eids()[0]
    entry = old_trace.entries[first_diff_eid]
    views = web.views_of_entry(entry)
    names = ", ".join(f"{v.name.vtype.value}:{v.name.key}" for v in views)
    print()
    print(f"entry {first_diff_eid} belongs to views: {names}")


if __name__ == "__main__":
    main()
