"""The Derby-1633 analogue: a multithreaded database regression.

The new engine version's subquery-flattening optimisation aborts query
compilation for a predicated IN subquery whose inner column shadows an
outer column.  Worker threads and a background lock daemon give the
traces multiple thread views; the analysis correlates them across runs
and discards daemon activity unrelated to the regression.

Run with::

    python examples/minidb_regression.py
"""

from repro.analysis.rprism import RPrism
from repro.capture import TraceFilter
from repro.core.regression import evaluate_against_truth
from repro.workloads.minidb.scenario import (CORRECT_INPUT,
                                             REGRESSING_INPUT,
                                             REGRESSING_QUERIES,
                                             is_cause_entry,
                                             run_new_version,
                                             run_old_version)


def main():
    print("the regressing query:")
    print("   ", REGRESSING_QUERIES[3])
    print()
    old_outcomes = run_old_version(REGRESSING_INPUT)
    new_outcomes = run_new_version(REGRESSING_INPUT)
    for index, (old, new) in enumerate(zip(old_outcomes, new_outcomes)):
        marker = "  <-- regression" if old != new else ""
        print(f"query {index}: old={old[:60]}")
        print(f"         new={new[:60]}{marker}")
    print()

    tool = RPrism(filter=TraceFilter(
        include_modules=("repro.workloads.minidb",)))
    outcome = tool.analyze_regression_scenario(
        run_old_version, run_new_version,
        regressing_input=REGRESSING_INPUT,
        correct_input=CORRECT_INPUT)

    trace = outcome.traces["new/regressing"]
    print(f"traces: {len(trace)} entries, "
          f"{len(trace.thread_ids())} threads "
          f"(main, query workers, lock daemon)")
    sizes = outcome.report.set_sizes()
    print(f"A={sizes['A']} B={sizes['B']} C={sizes['C']} -> "
          f"D={sizes['D']} candidate sequences")
    evaluation = evaluate_against_truth(outcome.report, is_cause_entry)
    print(f"{evaluation.true_positives} candidates point into the "
          f"flattening optimisation (the true cause); "
          f"{evaluation.false_positives} false positives")
    print()
    for candidate in outcome.report.candidates[:4]:
        print(candidate.brief())


if __name__ == "__main__":
    main()
