"""Beyond diffing: protocol inference and impact analysis on the same
view substrate (the further applications Sec. 4 envisions).

Mines the observed usage protocol of the minidb lock objects from a
traced session, diffs protocols across engine versions, and ranks the
methods/classes a regression impacts.

Run with::

    python examples/protocol_mining.py
"""

from repro.analysis.impact import impact_of
from repro.analysis.protocols import diff_protocols, infer_protocols
from repro.capture import TraceFilter, trace_call
from repro.core.view_diff import view_diff
from repro.workloads.minidb.scenario import (REGRESSING_INPUT,
                                             run_new_version,
                                             run_old_version)

FILTER = TraceFilter(include_modules=("repro.workloads.minidb",))


def main():
    old = trace_call(run_old_version, REGRESSING_INPUT, filter=FILTER,
                     name="10.1.2.1").trace
    new = trace_call(run_new_version, REGRESSING_INPUT, filter=FILTER,
                     name="10.1.3.1").trace
    print(f"traced sessions: {len(old)} / {len(new)} entries")
    print()

    # 1. Protocol inference: how are TableLock objects used?
    old_protocols = infer_protocols(old)
    lock_protocol = old_protocols.get("TableLock")
    if lock_protocol is not None:
        print(lock_protocol.render())
        print()
        print("protocol check: init/acquire/release is observed:",
              lock_protocol.allows(
                  ["TableLock.__init__",
                   "TableLock.acquire_exclusive",
                   "TableLock.release_exclusive"]))
        print("protocol check: release-before-acquire is novel:",
              not lock_protocol.allows(
                  ["TableLock.__init__",
                   "TableLock.release_exclusive"]))
    print()

    # 2. Protocol diff across versions: which usage transitions changed?
    new_protocols = infer_protocols(new)
    changes = diff_protocols(old_protocols, new_protocols)
    print(f"protocol changes between versions: {len(changes)} class(es)")
    for change in changes[:5]:
        added = ", ".join(f"{a}->{b}" for a, b in change.added[:3])
        removed = ", ".join(f"{a}->{b}" for a, b in change.removed[:3])
        print(f"  {change.class_name}: +[{added}] -[{removed}]")
    print()

    # 3. Impact analysis: where does the behaviour change concentrate?
    result = view_diff(old, new)
    report = impact_of(result)
    print(report.render(limit=6))


if __name__ == "__main__":
    main()
