"""The Xalan-1725 analogue: a regression in dynamically generated code.

The stylesheet compiler (2.5.2) emits one attribute op too few for
literal result elements — wrong *generated code*.  Nothing misbehaves
until the generated ops execute against a document, the paper's extreme
separation of cause and effect.  Static tools cannot connect the two;
the trace differencing follows the compiled code as a value from the
compiler into the VM.

Run with::

    python examples/xslt_codegen_regression.py
"""

from repro.analysis.rprism import RPrism
from repro.capture import TraceFilter
from repro.core.regression import evaluate_against_truth
from repro.workloads.minixslt.engine import XsltEngine
from repro.workloads.minixslt.scenario import (CORRECT_INPUT_1725,
                                               REGRESSING_INPUT_1725,
                                               STYLESHEET_1725,
                                               is_cause_entry_1725,
                                               run_1725_new, run_1725_old)


def main():
    stylesheet, document = REGRESSING_INPUT_1725
    print("old (2.5.1):", run_1725_old(REGRESSING_INPUT_1725)[:70])
    print("new (2.5.2):", run_1725_new(REGRESSING_INPUT_1725)[:70])
    print('   (the role="data" attribute vanished)')
    print()

    # Show the cause at the codegen level: the compiled ops differ.
    for version in ("2.5.1", "2.5.2"):
        templates = XsltEngine(version).compile(STYLESHEET_1725)
        item_template = next(t for t in templates if t.match == "item")
        ops = ", ".join(op.kind for op in item_template.ops)
        print(f"{version} compiled <item> template: {ops}")
    print()

    tool = RPrism(filter=TraceFilter(
        include_modules=("repro.workloads.minixslt",)))
    outcome = tool.analyze_regression_scenario(
        run_1725_old, run_1725_new,
        regressing_input=REGRESSING_INPUT_1725,
        correct_input=CORRECT_INPUT_1725)

    sizes = outcome.report.set_sizes()
    print(f"A={sizes['A']} B={sizes['B']} C={sizes['C']} -> "
          f"D={sizes['D']} candidate sequences")
    evaluation = evaluate_against_truth(outcome.report,
                                        is_cause_entry_1725)
    print(f"{evaluation.true_positives} candidates trace the missing "
          f"attribute from LiteralElementCompiler.translate through the "
          f"VM; {evaluation.false_positives} false positives; "
          f"{evaluation.false_negatives} missed")
    print()
    # The first candidate shows the compiler producing the wrong code.
    print(outcome.report.candidates[0].brief())


if __name__ == "__main__":
    main()
