"""The paper's motivating example (Fig. 1 / Sec. 4.2), end to end.

MYFACES-1130 pattern: the refactored servlet pipeline initialises the
numeric-entity converter with the exempt range [1, 127] instead of
[32, 127]; control characters stop being escaped, but only for text/html
documents — the cause (a constructor argument) and the effect (wrong
response bytes) are far apart in the execution.

Driven through the ``repro.api`` session layer: every captured trace is
persisted to a :class:`~repro.api.store.TraceStore`, and the analysis is
re-run offline from the stored traces with a different engine to show
the capture-now / diff-later workflow.

Run with::

    python examples/myfaces_regression.py
"""

import tempfile

from repro.analysis import render_diff_report
from repro.api import Session
from repro.core.regression import evaluate_against_truth
from repro.core.views import ViewType
from repro.workloads.myfaces.scenario import (CORRECT_REQUEST,
                                              REGRESSING_REQUEST,
                                              is_cause_entry,
                                              run_new_version,
                                              run_old_version)


def main():
    print("regressing input:", REGRESSING_REQUEST)
    print("old output:", run_old_version(REGRESSING_REQUEST))
    print("new output:", run_new_version(REGRESSING_REQUEST))
    print()

    store_dir = tempfile.mkdtemp(prefix="rprism-store-")
    session = (Session()
               .with_filter(include_modules=("repro.workloads.myfaces",))
               .with_store(store_dir))
    outcome = session.run_scenario(
        run_old_version, run_new_version,
        regressing_input=REGRESSING_REQUEST,
        correct_input=CORRECT_REQUEST,
        name="MYFACES-1130", store_prefix="myfaces-1130")

    sizes = outcome.report.set_sizes()
    print(f"suspected differences (A): {sizes['A']} sequences")
    print(f"expected differences  (B): {sizes['B']} sequences")
    print(f"regression differences(C): {sizes['C']} sequences")
    print(f"candidate causes      (D): {sizes['D']} sequences")
    print()

    evaluation = evaluate_against_truth(outcome.report, is_cause_entry)
    print(f"{evaluation.true_positives} candidate(s) pinpoint the wrong "
          f"[1..127] range, {evaluation.false_positives} are unrelated "
          f"side effects, {evaluation.false_negatives} cause(s) missed")
    print()

    # The offline half: every trace landed in the store, so the same
    # scenario re-runs later — here against the LCS baseline engine.
    print(f"trace store at {store_dir}:")
    for record in session.store.records():
        print("   ", record.brief())
    offline = session.run_stored_scenario(
        suspected=("myfaces-1130/old/regressing",
                   "myfaces-1130/new/regressing"),
        expected=("myfaces-1130/old/correct", "myfaces-1130/new/correct"),
        regression=("myfaces-1130/new/correct",
                    "myfaces-1130/new/regressing"),
        engine="optimized", name="MYFACES-1130/offline")
    print(f"offline re-analysis ({offline.engine}): "
          f"|D|={offline.report.set_sizes()['D']} candidate sequences, "
          f"{offline.compares()} compares")
    print()

    # Navigate the view web like Fig. 2: the converter object's
    # target-object view collects its events across the whole run.
    web = session.web("myfaces-1130/new/regressing")
    for location, info in web.objects.items():
        if info.class_name == "NumericEntityUtil":
            view = web.target_object_view(location)
            print(f"target-object view of {info.class_name}-"
                  f"{info.creation_seq} ({len(view)} entries):")
            for entry in list(view)[:6]:
                print("   ", entry.brief())
            break
    print()
    print(render_diff_report(outcome.suspected, max_sequences=2))
    print()
    thread_views = web.views_of_type(ViewType.THREAD)
    print(f"web: {web.counts()['total']} views total "
          f"({len(thread_views)} thread / {web.counts()['method']} method "
          f"/ {web.counts()['target_object']} target-object)")


if __name__ == "__main__":
    main()
