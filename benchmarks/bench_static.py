"""Static analysis layer: prediction accuracy, lint determinism, cost.

The accuracy claim of :mod:`repro.static`: for every bundled
``repro.lang`` scenario pair the static change-impact prediction is
cross-validated against the dynamic ImpactReport (both program versions
interpreted end to end, traces diffed, impacted methods read back) —
**recall >= 0.9 is asserted** per scenario; precision is recorded.  The
static side is also timed against the dynamic side it approximates (it
never runs the program, so it should be well under the interpret+diff
cost).

Two more sections exercise determinism and scale:

* the shared-state race lint runs twice from freshly parsed programs
  and the rendered reports are asserted **byte-identical** (the CI
  baseline gate depends on this), and
* whole-program CFG + call-graph + transitive-effect construction is
  timed over every bundled program version.

One JSON document lands in ``results/static.json`` (uploaded by the CI
``static-smoke`` job; ``check_budgets.py`` reads the recall/precision
keys back).  Environment knobs:

* ``BENCH_STATIC_THRESHOLD`` — prediction score cutoff (default 0.25).
"""

from __future__ import annotations

import json
import os
import time

from conftest import write_result

from repro.lang.parser import parse_program
from repro.static import (SCENARIOS, build_call_graph, build_program_cfgs,
                          race_report, transitive_effects,
                          validate_scenario)
from repro.static.races import render_report
from repro.static.scenarios import all_programs

THRESHOLD = float(os.environ.get("BENCH_STATIC_THRESHOLD", "0.25"))

ASSERT_RECALL = 0.9


def test_static_impact_accuracy_and_lint_determinism():
    document: dict = {
        "bench": "static",
        "threshold": THRESHOLD,
        "scenarios": [],
    }

    # -- prediction accuracy vs the interpreted ground truth -------------
    recalls, precisions = [], []
    for name in sorted(SCENARIOS):
        validation = validate_scenario(name, threshold=THRESHOLD)
        recalls.append(validation.recall)
        precisions.append(validation.precision)
        row = validation.to_json()
        row["speedup"] = round(
            validation.dynamic_seconds
            / max(validation.static_seconds, 1e-9), 1)
        document["scenarios"].append(row)

    document["min_recall"] = min(recalls)
    document["mean_precision"] = round(
        sum(precisions) / len(precisions), 4)

    # -- race lint: byte-stable across two cold runs ---------------------
    started = time.perf_counter()
    first = render_report(race_report(all_programs()))
    lint_seconds = time.perf_counter() - started
    fresh = {f"{name}@{version}": parse_program(
                 scenario.old_source if version == "old"
                 else scenario.new_source)
             for name, scenario in SCENARIOS.items()
             for version in ("old", "new")}
    second = render_report(race_report(fresh))
    assert first == second, "race report is not byte-stable"
    findings = sum(len(v) for v in json.loads(first).values())
    document["races"] = {
        "findings": findings,
        "byte_stable": True,
        "seconds": round(lint_seconds, 4),
    }

    # -- whole-program graph construction cost ---------------------------
    programs = all_programs()
    started = time.perf_counter()
    cfg_blocks = sum(len(cfg.blocks)
                     for program in programs.values()
                     for cfg in build_program_cfgs(program).values())
    cfg_seconds = time.perf_counter() - started
    started = time.perf_counter()
    edge_count = sum(len(build_call_graph(program).edges)
                     for program in programs.values())
    graph_seconds = time.perf_counter() - started
    started = time.perf_counter()
    effect_nodes = sum(len(transitive_effects(program))
                       for program in programs.values())
    effects_seconds = time.perf_counter() - started
    document["graphs"] = {
        "programs": len(programs),
        "cfg_blocks": cfg_blocks,
        "call_edges": edge_count,
        "effect_nodes": effect_nodes,
        "cfg_seconds": round(cfg_seconds, 4),
        "callgraph_seconds": round(graph_seconds, 4),
        "effects_seconds": round(effects_seconds, 4),
    }

    write_result("static.json",
                 json.dumps(document, indent=1, sort_keys=True))

    for row in document["scenarios"]:
        assert row["recall"] >= ASSERT_RECALL, (row["scenario"], document)
