#!/usr/bin/env python
"""Performance-budget guard: fresh ``results/*.json`` vs. committed
baselines.

Each bench that writes a JSON document to ``results/`` exposes a few
*key ratios* — higher-is-better numbers (speedups, compare
reductions) that summarize the win the bench exists to demonstrate.
This script re-reads the fresh working-tree documents, extracts those
ratios, and compares them against the committed baseline (by default
``git show HEAD:results/<name>``), failing when a fresh ratio drops
more than ``--tolerance`` (default 25%) below its baseline.

In CI the ``executors``, ``kernels`` and ``serialize`` budgets are
*blocking* — their key ratios compare two modes measured within the
same run on the same machine, so runner noise cancels out.  The remaining benches stay
non-blocking (``continue-on-error``): a red check there is a prompt to
look, not a gate.  Locally::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q
    python benchmarks/check_budgets.py

Absolute wall-clock numbers are deliberately *not* budgeted — they
track machine speed, not code quality.  Ratios measured within one
run on one machine are the stable signal.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def _row(document: dict, name: str) -> dict:
    for row in document.get("rows", ()):
        if row.get("row") == name:
            return row
    return {}


def _kernels(document: dict) -> dict[str, float]:
    ratios = document.get("ratios", {})
    return {f"row_speedup:{backend}": value
            for backend, value in ratios.get("row_speedup", {}).items()}


def _anchors(document: dict) -> dict[str, float]:
    out = {}
    for inner in ("views", "optimized"):
        row = _row(document, f"reduction:{inner}")
        if "reduction" in row:
            out[f"reduction:{inner}"] = row["reduction"]
    return out


def _executors(document: dict) -> dict[str, float]:
    return {f"speedup:{profile}": value
            for profile, value in document.get("speedups", {}).items()}


def _service(document: dict) -> dict[str, float]:
    out = {}
    if "warm_speedup" in document:
        out["warm_speedup"] = document["warm_speedup"]
    return out


def _serialize(document: dict) -> dict[str, float]:
    """Wire-format ratios: v3 decode speedups over v2 (lazy/eager) and
    the bytes-on-wire shrink — all within-run, so they gate."""
    out = {f"speedup:{mode}": value
           for mode, value in document.get("speedups", {}).items()}
    if "bytes_ratio" in document:
        out["bytes_ratio"] = document["bytes_ratio"]
    return out


def _static(document: dict) -> dict[str, float]:
    """Prediction accuracy per scenario (recall/precision are already
    in [0, 1]; a drop past tolerance means the predictor got worse)."""
    out = {}
    for row in document.get("scenarios", ()):
        name = row.get("scenario")
        if not name:
            continue
        if "recall" in row:
            out[f"recall:{name}"] = row["recall"]
        if "precision" in row:
            out[f"precision:{name}"] = row["precision"]
    return out


#: results file -> key-ratio extractor (higher is better).
BUDGETS = {
    "kernels.json": _kernels,
    "anchors.json": _anchors,
    "executors.json": _executors,
    "serialize.json": _serialize,
    "service.json": _service,
    "static.json": _static,
}


def baseline_document(name: str, baseline: str) -> dict | None:
    """The committed baseline for ``results/<name>``, or None."""
    if baseline.startswith("git:"):
        rev = baseline[len("git:"):]
        proc = subprocess.run(
            ["git", "show", f"{rev}:results/{name}"],
            capture_output=True, text=True,
            cwd=RESULTS_DIR.parent)
        if proc.returncode != 0:
            return None
        text = proc.stdout
    else:
        path = Path(baseline) / name
        if not path.is_file():
            return None
        text = path.read_text(encoding="utf-8")
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return None


def check(names, baseline: str, tolerance: float) -> int:
    failures = []
    for name in names:
        fresh_path = RESULTS_DIR / name
        if not fresh_path.is_file():
            print(f"  - {name}: no fresh run (skipped)")
            continue
        base = baseline_document(name, baseline)
        if base is None:
            print(f"  - {name}: no committed baseline (skipped)")
            continue
        extract = BUDGETS[name]
        fresh_ratios = extract(json.loads(
            fresh_path.read_text(encoding="utf-8")))
        base_ratios = extract(base)
        # Only ratios present on both sides are comparable (a CI leg
        # without numpy has no numpy row; a shrunk smoke run may drop
        # rows entirely).
        for key in sorted(set(fresh_ratios) & set(base_ratios)):
            fresh, committed = fresh_ratios[key], base_ratios[key]
            floor = committed * (1.0 - tolerance)
            verdict = "ok" if fresh >= floor else "REGRESSED"
            print(f"  - {name} {key}: {fresh:g} vs baseline "
                  f"{committed:g} (floor {floor:g}) {verdict}")
            if fresh < floor:
                failures.append((name, key, fresh, committed))
    if failures:
        print(f"{len(failures)} budget(s) regressed by more than "
              f"{tolerance:.0%}")
        return 1
    print("all budgets within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare fresh results/*.json key ratios against "
                    "committed baselines.")
    parser.add_argument("names", nargs="*", default=None,
                        help="results file names to check "
                             "(default: all known)")
    parser.add_argument("--baseline", default="git:HEAD",
                        help="baseline source: git:<rev> or a directory "
                             "(default git:HEAD)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop (default 0.25)")
    args = parser.parse_args(argv)
    names = args.names or sorted(BUDGETS)
    unknown = [n for n in names if n not in BUDGETS]
    if unknown:
        parser.error(f"no budget defined for: {', '.join(unknown)}")
    print(f"checking budgets against {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    return check(names, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
