"""Diff-cache throughput: warm batches vs cold batches.

The motivating number for ``repro.cache``: the 6-scenario exec-bench
workload (traced request handlers, as in ``bench_executors.py``) is
captured once per version pair, then the whole diff batch runs

* **cold** — an empty :class:`~repro.cache.DiffCache` (every pair
  plans, correlates, and evaluates in full, then stores), and
* **warm** — the same batch again on the primed cache (every pair is a
  content-digest hit; no planning happens).

A second warm pass goes through a *fresh* cache handle on the same
directory, so the disk tier (not just the in-memory LRU) is exercised.
Cached results are asserted bit-identical to the cold computations via
:func:`~repro.core.diffs.result_signature` before any timing claim is
made.

One JSON document lands in ``results/cache.json`` (the CI ``cache-
smoke`` job uploads it as a workflow artifact).  Environment knobs:

* ``BENCH_CACHE_SCENARIOS`` — version pairs per batch (default 6).
* ``BENCH_CACHE_OPS`` — traced calls per capture (default 150).
* ``BENCH_CACHE_WARM_REPEATS`` — warm timing repeats (default 3; the
  fastest is reported, as the steady state the cache is about).

The >=5x acceptance assertion fires only at full size (>=4 scenarios,
>=100 ops); identity assertions always run.
"""

from __future__ import annotations

import json
import os
import time

from conftest import write_result

from repro.api import Session
from repro.cache import DiffCache
from repro.capture.filters import TraceFilter
from repro.core.diffs import result_signature
from repro.exec import CaptureTask, run_capture_tasks

SCENARIOS = int(os.environ.get("BENCH_CACHE_SCENARIOS", "6"))
OPS = int(os.environ.get("BENCH_CACHE_OPS", "150"))
WARM_REPEATS = int(os.environ.get("BENCH_CACHE_WARM_REPEATS", "3"))

#: The acceptance assertion only fires at full scale.
ASSERT_MIN_SCENARIOS = 4
ASSERT_MIN_OPS = 100
ASSERT_SPEEDUP = 5.0

FILTER = TraceFilter(include_modules=("bench_cache",))


class RequestHandler:
    """The traced service of the exec bench (I/O waits dropped: this
    bench times differencing, not capture)."""

    def __init__(self, scenario: int):
        self.scenario = scenario
        self.handled = 0

    def handle(self, request: int) -> int:
        self.handled += 1
        return request * 2 + self.scenario % 7


def old_scenario(spec: tuple) -> int:
    scenario, ops = spec
    handler = RequestHandler(scenario)
    for request in range(ops):
        handler.handle(request)
    return handler.handled


def new_scenario(spec: tuple) -> int:
    """The regressed version: every 37th request is mangled, so each
    pair carries a real difference sequence to find."""
    scenario, ops = spec
    handler = RequestHandler(scenario)
    for request in range(ops):
        handler.handle(-request if request and request % 37 == 0
                       else request)
    return handler.handled


def _capture_pairs() -> list[tuple]:
    tasks = []
    for scenario in range(SCENARIOS):
        for role, func in (("old", old_scenario), ("new", new_scenario)):
            tasks.append(CaptureTask(func=func,
                                     args=((scenario, OPS),),
                                     name=f"s{scenario}/{role}",
                                     filter=FILTER))
    outcomes = run_capture_tasks(tasks)
    assert all(outcome.ok for outcome in outcomes)
    traces = [outcome.trace for outcome in outcomes]
    return list(zip(traces[0::2], traces[1::2]))


def _diff_batch(session: Session, pairs) -> tuple[float, list]:
    started = time.perf_counter()
    results = [session.diff(left, right) for left, right in pairs]
    return time.perf_counter() - started, results


def test_warm_cache_batches_beat_cold_runs(tmp_path):
    pairs = _capture_pairs()
    cache_dir = tmp_path / "diffcache"

    cold_session = Session(cache=DiffCache(cache_dir))
    cold_seconds, cold_results = _diff_batch(cold_session, pairs)
    cold_stats = cold_session.cache.stats()
    assert cold_stats.stores == len(pairs)
    for result in cold_results:
        assert result.num_diffs() > 0  # the injected regression is seen

    # Warm: the same batch on the primed cache (steady state: fastest
    # of a few repeats).
    warm_seconds = None
    warm_results = None
    for _ in range(max(1, WARM_REPEATS)):
        seconds, results = _diff_batch(cold_session, pairs)
        if warm_seconds is None or seconds < warm_seconds:
            warm_seconds, warm_results = seconds, results

    # Disk tier: a fresh handle (empty memory tier) on the same
    # directory must serve the whole batch from disk.
    disk_session = Session(cache=DiffCache(cache_dir))
    disk_seconds, disk_results = _diff_batch(disk_session, pairs)
    assert disk_session.cache.stats().hits_disk == len(pairs)

    # Identity first: a cached result is bit-identical to its cold
    # computation, from either tier.
    for cold_r, warm_r, disk_r in zip(cold_results, warm_results,
                                      disk_results):
        assert result_signature(warm_r) == result_signature(cold_r)
        assert result_signature(disk_r) == result_signature(cold_r)
        assert warm_r.counter.total == cold_r.counter.total

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    disk_speedup = cold_seconds / max(disk_seconds, 1e-9)
    entries = len(pairs[0][0]) if pairs else 0
    document = {
        "bench": "cache",
        "scenarios": SCENARIOS,
        "ops_per_capture": OPS,
        "entries_per_trace": entries,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "disk_warm_seconds": round(disk_seconds, 4),
        "speedup_warm": round(speedup, 3),
        "speedup_disk_warm": round(disk_speedup, 3),
        "pairs_per_sec_cold": round(len(pairs) / cold_seconds, 3)
        if cold_seconds else 0.0,
        "pairs_per_sec_warm": round(len(pairs) / warm_seconds, 3)
        if warm_seconds else 0.0,
    }
    write_result("cache.json", json.dumps(document, indent=1,
                                          sort_keys=True))

    # The acceptance bar: a warm batch is >=5x the cold batch's
    # throughput at full size.
    if SCENARIOS >= ASSERT_MIN_SCENARIOS and OPS >= ASSERT_MIN_OPS:
        assert speedup >= ASSERT_SPEEDUP, document
