"""Diff-kernel throughput: bit-parallel / vectorized vs. scalar loops.

Since PR 2 the ``=e`` keys are dense interned id columns — exactly the
layout word-packed bitvector LCS (Myers/Hyyrö) and vectorized compare
loops want.  This bench measures, on the 10k-entry synthetic regression
pair from :mod:`bench_interning`:

* **LCS length-throughput** (DP cells per second) of every registered
  kernel backend's ``lengths_row`` against the reference scalar loop.
  The scalar baseline is timed on a truncated slice (a full 10k x 10k
  pure-Python row fill takes minutes) and its cells/sec extrapolated;
  accelerated backends run the full columns.
* **Bit-identity**: every backend's final row equals the scalar row on
  a shared slice, and ``lcs_bitparallel`` returns the same pairs and
  the same compare/charged counts as ``lcs_hirschberg``.
* **End-to-end**: ``lcs_diff`` wall-clock for the ``optimized``
  baseline vs. ``algorithm="bitparallel"`` on the full trace pair.

One JSON document lands in ``results/kernels.json`` (the CI
``kernel-smoke`` job uploads it; ``benchmarks/check_budgets.py``
guards its key ratios against the committed baseline).

Environment knobs (the CI smoke legs shrink nothing here — the job
runs full-size — but local iteration can):

* ``BENCH_KERNEL_ENTRIES`` — synthetic pair size in ops (default
  13400, ~10k entries per side, matching ``bench_interning``).
* ``BENCH_KERNEL_SCALAR_N`` — scalar-baseline slice length per side
  (default 1500).
* ``BENCH_KERNEL_REPEATS`` — timing repeats per measurement.

The >=10x throughput assertion only applies at full size (tiny smoke
sizes are all fixed overhead); identity assertions always run.
"""

from __future__ import annotations

import json
import os
import platform
import time

from bench_interning import synthetic_pair
from conftest import write_result

from repro.core.keytable import KeyTable
from repro.core.kernels import (available_backends, default_backend_name,
                                get_backend)
from repro.core.kernels import scalar as scalar_kernel
from repro.core.lcs import OpCounter, lcs_bitparallel, lcs_hirschberg
from repro.core.lcs_diff import lcs_diff

ENTRIES = int(os.environ.get("BENCH_KERNEL_ENTRIES", "13400"))
SCALAR_N = int(os.environ.get("BENCH_KERNEL_SCALAR_N", "1500"))
REPEATS = int(os.environ.get("BENCH_KERNEL_REPEATS", "3"))

#: The acceptance assertion only fires at full scale.
ASSERT_MIN_ENTRIES = 8_000


def _best_seconds(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_kernel_throughput_and_identity():
    table = KeyTable()
    left, right = synthetic_pair(ENTRIES, table)
    keys_l = table.ids_for(left).tolist()
    keys_r = table.ids_for(right).tolist()
    n, m = len(keys_l), len(keys_r)
    full_size = (n + m) >= ASSERT_MIN_ENTRIES

    # --- scalar baseline: truncated slice, cells/sec extrapolated ----
    sn = min(SCALAR_N, n)
    sm = min(SCALAR_N, m)
    slice_l, slice_r = keys_l[:sn], keys_r[:sm]
    scalar_seconds = _best_seconds(
        lambda: scalar_kernel.lengths_row(slice_l, slice_r))
    scalar_cps = (sn * sm) / scalar_seconds
    scalar_row = scalar_kernel.lengths_row(slice_l, slice_r)

    rows = [{
        "backend": "scalar",
        "cells": sn * sm,
        "seconds": round(scalar_seconds, 6),
        "cells_per_sec": round(scalar_cps),
        "speedup_vs_scalar": 1.0,
    }]
    ratios = {}
    for name in available_backends():
        if name == "scalar":
            continue
        backend = get_backend(name)
        # Bit-identity on the scalar slice first.
        assert backend.lengths_row(slice_l, slice_r) == scalar_row, name
        seconds = _best_seconds(lambda: backend.lengths_row(keys_l, keys_r))
        cps = (n * m) / seconds
        ratios[name] = cps / scalar_cps
        rows.append({
            "backend": name,
            "cells": n * m,
            "seconds": round(seconds, 6),
            "cells_per_sec": round(cps),
            "speedup_vs_scalar": round(ratios[name], 2),
        })

    # Accelerated backends agree with each other at full size too.
    full_rows = [get_backend(name).lengths_row(keys_l, keys_r)
                 for name in available_backends() if name != "scalar"]
    for other in full_rows[1:]:
        assert other == full_rows[0]

    # --- bitparallel algorithm == hirschberg, pairs and counts -------
    c_bp, c_hi = OpCounter(), OpCounter()
    r_bp = lcs_bitparallel(keys_l, keys_r, counter=c_bp)
    r_hi = lcs_hirschberg(keys_l, keys_r, counter=c_hi)
    assert r_bp.pairs == r_hi.pairs
    assert (c_bp.compares, c_bp.charged) == (c_hi.compares, c_hi.charged)

    # --- end-to-end: optimized baseline vs. bitparallel --------------
    end_to_end = []
    results = {}
    for algorithm in ("optimized", "bitparallel"):
        counter = OpCounter()
        results[algorithm] = lcs_diff(left, right, algorithm=algorithm,
                                      counter=counter, key_table=table)
        seconds = _best_seconds(
            lambda: lcs_diff(left, right, algorithm=algorithm,
                             counter=OpCounter(), key_table=table))
        end_to_end.append({
            "algorithm": algorithm,
            "entries": n + m,
            "seconds": round(seconds, 6),
            "compares": counter.compares,
            "charged": counter.charged,
            "num_matches": len(results[algorithm].match_pairs),
        })
    # Different algorithms may pick different (equally long) LCSs, but
    # the match *count* is the LCS length — it must agree.
    assert (end_to_end[0]["num_matches"] == end_to_end[1]["num_matches"])
    diff_speedup = end_to_end[0]["seconds"] / max(end_to_end[1]["seconds"],
                                                  1e-9)

    document = {
        "bench": "kernels",
        "entries": n + m,
        "python": platform.python_version(),
        "default_backend": default_backend_name(),
        "backends": sorted(available_backends()),
        "lengths_row": rows,
        "end_to_end": end_to_end,
        "ratios": {
            "row_speedup": {name: round(ratio, 2)
                            for name, ratio in sorted(ratios.items())},
            "diff_speedup_bitparallel_vs_optimized": round(diff_speedup, 2),
        },
    }
    write_result("kernels.json",
                 json.dumps(document, indent=1, sort_keys=True))

    # Acceptance bar: >=10x LCS length-throughput over the scalar
    # per-cell loop (the `optimized` baseline's inner row fill) on the
    # full-size 10k-entry interned workload, for every accelerated
    # backend.
    if full_size:
        for name, ratio in ratios.items():
            assert ratio >= 10.0, (name, ratios)
