"""Sec. 4.2 / Fig. 13: the motivating example's analysis.

The paper: out of the diff between versions, only seven changes are
relevant to the regression; the tool identifies them with no false
positives and recognises the other difference runs as unrelated.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.lcs import OpCounter, trim_common
from repro.core.regression import evaluate_against_truth
from repro.core.view_diff import view_diff
from repro.workloads.myfaces.scenario import is_cause_entry


def small_trace_speedup(outcome) -> float:
    """The compare-op speedup on this (very small) trace pair — the
    paper observed <1x here: 'For two very small traces RPrism had
    speedups less than 1x, because of the extra comparisons in
    secondary views.'"""
    old = outcome.traces["old/regressing"]
    new = outcome.traces["new/regressing"]
    counter = OpCounter()
    view_diff(old, new, counter=counter)
    keys_l = [e.key() for e in old.entries]
    keys_r = [e.key() for e in new.entries]
    _prefix, mid_a, mid_b = trim_common(keys_l, keys_r)
    return (mid_a * mid_b) / max(counter.total, 1)


def render_motivating(outcome) -> str:
    sizes = outcome.report.set_sizes()
    evaluation = evaluate_against_truth(outcome.report, is_cause_entry)
    speedup = small_trace_speedup(outcome)
    lines = [
        "=== Motivating example (MYFACES-1130 pattern, Sec. 4.2) ===",
        f"suspected set A: {sizes['A']} difference sequences",
        f"expected  set B: {sizes['B']} difference sequences",
        f"regression set C: {sizes['C']} difference sequences",
        f"analysis result D: {sizes['D']} candidate sequences "
        f"(paper: 7 relevant changes)",
        f"ground truth: {evaluation.true_positives} TP / "
        f"{evaluation.false_positives} FP / "
        f"{evaluation.false_negatives} FN",
        f"compare-op speedup on this very small trace: {speedup:.2f}x "
        f"(paper: <1x for very small traces)",
        "",
        "candidates:",
    ]
    for candidate in outcome.report.candidates:
        lines.append(candidate.brief())
    return "\n".join(lines)


def test_motivating_example(myfaces_outcome, benchmark):
    text = render_motivating(myfaces_outcome)
    write_result("motivating.txt", text)

    report = myfaces_outcome.report
    evaluation = evaluate_against_truth(report, is_cause_entry)
    # Shape: a handful of candidates, cause found, nothing missed.
    assert 1 <= report.size_d <= 12
    assert evaluation.true_positives >= 1
    assert evaluation.false_negatives == 0
    assert report.size_d < report.size_a
    # Very small traces: secondary-view exploration costs more compares
    # than the tiny DP would (the paper's <1x observation).
    assert small_trace_speedup(myfaces_outcome) < 1.5

    # Benchmark the suspected-pair diff.
    old = myfaces_outcome.traces["old/regressing"]
    new = myfaces_outcome.traces["new/regressing"]
    result = benchmark.pedantic(lambda: view_diff(old, new), rounds=5,
                                iterations=1)
    assert result.num_diffs() > 0
