"""Sec. 3.3's complexity claim: the views-based differencing is O(n) in
time and space, versus the LCS baseline's Theta(n^2).

Sweeps trace length with a fixed difference density and reports compare
operations for both semantics; the views-based counts must grow roughly
linearly while the (modelled) quadratic baseline explodes.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.lcs import OpCounter, trim_common
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.core.view_diff import view_diff

SIZES = (500, 1000, 2000, 4000, 8000)


def synthetic_pair(n: int):
    """Two traces of n field-set events with a sparse 1% modification
    pattern plus one moved block."""

    def build(variant: str, name: str):
        builder = TraceBuilder(name=name)
        tid = builder.main_tid
        obj = builder.record_init(tid, "Cell", (), serialization="cell")
        values = list(range(n))
        if variant == "new":
            for at in range(50, n, 100):
                values[at] = -values[at]  # 1% modified
            block = values[10:20]
            del values[10:20]
            values.extend(block)  # one moved block
        for value in values:
            builder.record_set(tid, obj, "v", prim(value))
        builder.record_end(tid)
        return builder.build()

    return build("old", f"L{n}"), build("new", f"R{n}")


def sweep() -> list[dict]:
    rows = []
    for n in SIZES:
        old, new = synthetic_pair(n)
        counter = OpCounter()
        result = view_diff(old, new, counter=counter)
        keys_l = [e.key() for e in old.entries]
        keys_r = [e.key() for e in new.entries]
        _prefix, mid_a, mid_b = trim_common(keys_l, keys_r)
        rows.append({
            "n": n,
            "views_compares": counter.total,
            "views_diffs": result.num_diffs(),
            "lcs_cells": mid_a * mid_b,
        })
    return rows


def render(rows) -> str:
    lines = ["=== Scaling: views-based O(n) vs LCS Theta(n^2) ===",
             f"{'entries':>8} {'views compares':>15} "
             f"{'LCS DP cells':>14} {'ratio':>10}"]
    for row in rows:
        ratio = row["lcs_cells"] / max(row["views_compares"], 1)
        lines.append(f"{row['n']:8} {row['views_compares']:15} "
                     f"{row['lcs_cells']:14} {ratio:9.1f}x")
    first, last = rows[0], rows[-1]
    growth_n = last["n"] / first["n"]
    growth_views = last["views_compares"] / max(first["views_compares"], 1)
    growth_lcs = last["lcs_cells"] / max(first["lcs_cells"], 1)
    lines.append("")
    lines.append(f"trace growth {growth_n:.0f}x -> views compares grew "
                 f"{growth_views:.1f}x (linear-ish), LCS cells grew "
                 f"{growth_lcs:.1f}x (quadratic)")
    return "\n".join(lines)


def test_scaling(benchmark):
    rows = sweep()
    write_result("scaling.txt", render(rows))

    first, last = rows[0], rows[-1]
    growth_n = last["n"] / first["n"]
    growth_views = last["views_compares"] / max(first["views_compares"], 1)
    growth_lcs = last["lcs_cells"] / max(first["lcs_cells"], 1)
    # Views-based growth stays well below quadratic; the baseline is
    # quadratic by construction.
    assert growth_views < growth_n ** 1.5
    assert growth_lcs > growth_n ** 1.8

    old, new = synthetic_pair(2000)
    result = benchmark.pedantic(lambda: view_diff(old, new), rounds=3,
                                iterations=1)
    assert result.num_diffs() > 0
