"""Shared fixtures for the benchmark suite.

Expensive artefacts (the Fig. 14 bug-suite runs and the Table 1/2
scenario results) are computed once per session and shared; each bench
then times its core operation and regenerates its table/figure, writing
the rows to ``results/`` and echoing them to the terminal.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


@pytest.fixture(scope="session")
def fig14_runs():
    """The quantitative assessment: all 14 injected minijs regressions."""
    from repro.workloads.minijs.scenario import run_suite
    return run_suite()


@pytest.fixture(scope="session")
def scenario_results():
    """The four real-life case studies (Tables 1 and 2)."""
    from repro.workloads.harness import run_all_scenarios
    return run_all_scenarios()


@pytest.fixture(scope="session")
def myfaces_outcome():
    """The motivating example's full analysis (Sec. 4.2)."""
    from repro.analysis.rprism import RPrism
    from repro.capture import TraceFilter
    from repro.workloads.myfaces.scenario import (CORRECT_REQUEST,
                                                  REGRESSING_REQUEST,
                                                  run_new_version,
                                                  run_old_version)
    tool = RPrism(filter=TraceFilter(
        include_modules=("repro.workloads.myfaces",)))
    return tool.analyze_regression_scenario(
        run_old_version, run_new_version,
        regressing_input=REGRESSING_REQUEST,
        correct_input=CORRECT_REQUEST)
