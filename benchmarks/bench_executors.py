"""Capture throughput: process workers vs the global capture lock.

The motivating number for the execution layer: a batch of capture-heavy
scenarios run through

* the **locked baseline** — a thread pool whose captures all contend on
  the process-wide ``CAPTURE_LOCK`` (one ``sys.settrace`` weaver per
  interpreter, the seed's only option), and
* **process workers** — each capture dispatched to a worker process
  owning its own weaver, traces shipped home as serialization-v2 text.

The workload models the paper's capture profile: traced method calls
around I/O waits (RPRISM traces servlet containers and databases — real
captures block on requests and disk, and the lock serialises those
waits along with the CPU work).  Under the lock the batch's wall-clock
is the *sum* of every capture; process workers overlap them, so
throughput scales with workers even on a single core.  A CPU-bound
variant is reported too for honesty on GIL-free-core-less boxes.

One JSON document lands in ``results/executors.json`` (the CI uploads
it as a workflow artifact).  Environment knobs (the CI smoke job
shrinks everything):

* ``BENCH_EXEC_SCENARIOS`` — captures per batch (default 6).
* ``BENCH_EXEC_WORKERS`` — pool size for both executors (default 3).
* ``BENCH_EXEC_OPS`` — traced calls per capture (default 40).
* ``BENCH_EXEC_SLEEP`` — total I/O-wait seconds per capture (0.3).

The ≥2x acceptance assertion fires only at full size (≥4 scenarios
with real waits); result-identity assertions always run.
"""

from __future__ import annotations

import json
import os
import time

from conftest import write_result

from repro.capture.filters import TraceFilter
from repro.exec import (CaptureTask, ProcessExecutor, ThreadExecutor,
                        run_capture_tasks)

SCENARIOS = int(os.environ.get("BENCH_EXEC_SCENARIOS", "6"))
WORKERS = int(os.environ.get("BENCH_EXEC_WORKERS", "3"))
OPS = int(os.environ.get("BENCH_EXEC_OPS", "40"))
SLEEP = float(os.environ.get("BENCH_EXEC_SLEEP", "0.3"))

#: The acceptance assertion only fires at full scale.
ASSERT_MIN_SCENARIOS = 4
ASSERT_MIN_SLEEP = 0.2

FILTER = TraceFilter(include_modules=("bench_executors",))


class RequestHandler:
    """The traced service: each request does a little work and blocks
    on simulated I/O (the part the capture lock needlessly serialises)."""

    def __init__(self, scenario: int):
        self.scenario = scenario
        self.handled = 0

    def handle(self, request: int, wait: float) -> int:
        self.handled += 1
        if wait:
            time.sleep(wait)
        return request * 2 + self.scenario % 7


def io_scenario(spec: tuple) -> int:
    """One capture-heavy scenario: OPS traced calls with I/O waits."""
    scenario, ops, total_sleep = spec
    handler = RequestHandler(scenario)
    wait = total_sleep / max(ops, 1)
    for request in range(ops):
        handler.handle(request, wait)
    return handler.handled


def cpu_scenario(spec: tuple) -> int:
    """The all-CPU variant (no waits) for the honesty row."""
    scenario, ops, _ = spec
    handler = RequestHandler(scenario)
    for request in range(ops):
        handler.handle(request, 0.0)
    return handler.handled


def _tasks(func, total_sleep: float) -> list[CaptureTask]:
    return [CaptureTask(func=func, args=((scenario, OPS, total_sleep),),
                        name=f"scenario-{scenario}", filter=FILTER)
            for scenario in range(SCENARIOS)]


def _timed_batch(tasks, executor) -> tuple[float, list]:
    started = time.perf_counter()
    outcomes = run_capture_tasks(tasks, executor)
    return time.perf_counter() - started, outcomes


def _keys(trace):
    return [entry.key() for entry in trace.entries]


def test_process_workers_beat_the_capture_lock():
    rows = []
    ratios = {}
    with ThreadExecutor(max_workers=WORKERS) as locked, \
            ProcessExecutor(max_workers=WORKERS) as processes:
        for profile, func, total_sleep in (
                ("io_bound", io_scenario, SLEEP),
                ("cpu_bound", cpu_scenario, 0.0)):
            tasks = _tasks(func, total_sleep)
            locked_seconds, locked_out = _timed_batch(tasks, locked)
            process_seconds, process_out = _timed_batch(tasks, processes)

            # Identity: a process worker's trace is =e-identical to the
            # locked capture of the same deterministic scenario.
            assert all(o.ok for o in locked_out + process_out)
            for local, remote in zip(locked_out, process_out):
                assert _keys(local.trace) == _keys(remote.trace), profile
            assert {o.worker.split(":")[0] for o in process_out} == {"pid"}

            ratio = locked_seconds / max(process_seconds, 1e-9)
            ratios[profile] = ratio
            for mode, seconds in (("locked", locked_seconds),
                                  ("processes", process_seconds)):
                rows.append({
                    "profile": profile,
                    "mode": mode,
                    "scenarios": SCENARIOS,
                    "workers": WORKERS,
                    "ops_per_capture": OPS,
                    "sleep_per_capture": total_sleep,
                    "seconds": round(seconds, 4),
                    "captures_per_sec": round(SCENARIOS / seconds, 3)
                    if seconds else 0.0,
                })

    document = {
        "bench": "executors",
        "rows": rows,
        "speedups": {profile: round(ratio, 3)
                     for profile, ratio in ratios.items()},
    }
    write_result("executors.json", json.dumps(document, indent=1,
                                              sort_keys=True))

    # The acceptance bar: >=2x capture throughput over the locked
    # baseline on a capture-heavy (I/O-waiting) batch of >=4 scenarios.
    if SCENARIOS >= ASSERT_MIN_SCENARIOS and SLEEP >= ASSERT_MIN_SLEEP:
        assert ratios["io_bound"] >= 2.0, ratios
