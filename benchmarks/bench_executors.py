"""Capture and diff throughput: warm process workers vs the capture lock.

The motivating numbers for the execution substrate.  A batch of
capture-heavy scenarios runs through

* **serial** — inline under the process-wide ``CAPTURE_LOCK``;
* the **locked baseline** — a thread pool whose captures all contend on
  that lock (one ``sys.settrace`` weaver per interpreter, the seed's
  only option), and
* **warm process workers** — the shared pool from
  :func:`repro.exec.shared_process_executor`: spin-up paid once, tasks
  leased in chunks, traces shipped home through shared-memory segments,
  worker caches persisting across batches.

Each process profile is measured twice against the *same* warm pool:
the ``cold`` row is the pool's first sight of the batch, the ``warm``
row repeats it with worker key tables, wire memos, and the parent's
digest-keyed segments already primed — the steady state a session, a
pipeline, or the service actually runs in.  Speedups are reported for
both (``<profile>`` = warm, ``<profile>_cold`` = cold).

Three profiles:

* ``io_bound`` — traced calls around I/O waits (RPRISM traces servlet
  containers and databases; the lock serialises the waits along with
  the work).  Acceptance: warm processes ≥ 2.5x locked at full size.
* ``cpu_bound`` — traced calls with real compute per call.  Acceptance:
  ≥ 1.0x locked at full size *on multi-core hosts*; a single-core box
  cannot beat serial with process workers (there is no second core to
  overlap onto), so there the assertion is a floor guarding against
  wire-cost regressions.
* ``overhead`` — empty traced calls, informational only: the
  pathological all-boundary workload that bounds shipping cost.

A diff phase then runs the same trace pair through every executor and
asserts ``=e`` identity and unchanged compare totals — parallel and
shared-memory execution must be invisible in the results.

One JSON document lands in ``results/executors.json`` (the CI uploads
it as a workflow artifact).  Environment knobs (the CI smoke job
shrinks everything):

* ``BENCH_EXEC_SCENARIOS`` — captures per batch (default 6).
* ``BENCH_EXEC_WORKERS`` — pool size for both executors (default 3).
* ``BENCH_EXEC_OPS`` — traced calls per capture (default 40).
* ``BENCH_EXEC_SLEEP`` — total I/O-wait seconds per capture (0.3).
* ``BENCH_EXEC_WORK`` — compute-loop iterations per traced call in the
  cpu profile (default 4000).

The acceptance assertions fire only at full size (≥4 scenarios with
real waits); identity assertions always run.
"""

from __future__ import annotations

import json
import os
import time

from conftest import write_result

from repro.capture.filters import TraceFilter
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.exec import (CaptureTask, ThreadExecutor, executed_view_diff,
                        run_capture_tasks, shared_process_executor,
                        shm_available, shutdown_warm_pools)

SCENARIOS = int(os.environ.get("BENCH_EXEC_SCENARIOS", "6"))
WORKERS = int(os.environ.get("BENCH_EXEC_WORKERS", "3"))
OPS = int(os.environ.get("BENCH_EXEC_OPS", "40"))
SLEEP = float(os.environ.get("BENCH_EXEC_SLEEP", "0.3"))
WORK = int(os.environ.get("BENCH_EXEC_WORK", "4000"))

#: The acceptance assertions only fire at full scale.
ASSERT_MIN_SCENARIOS = 4
ASSERT_MIN_SLEEP = 0.2

#: Warm-pool floors: io overlaps waits on any host; cpu needs a second
#: core to beat the locked baseline outright, so single-core hosts
#: assert a wire-cost floor instead (the seed recorded 0.24x there).
IO_BOUND_MIN = 2.5
CPU_BOUND_MIN = 1.0
CPU_BOUND_SINGLE_CORE_FLOOR = 0.5

FILTER = TraceFilter(include_modules=("bench_executors",))


class RequestHandler:
    """The traced service: each request does some work and may block on
    simulated I/O (both of which the capture lock needlessly
    serialises)."""

    def __init__(self, scenario: int):
        self.scenario = scenario
        self.handled = 0

    def handle(self, request: int, wait: float, work: int) -> int:
        self.handled += 1
        total = self.scenario % 7
        for i in range(work):
            total = (total * 31 + request + i) % 1000003
        if wait:
            time.sleep(wait)
        return total

    def finish(self) -> int:
        return self.handled


def io_scenario(spec: tuple) -> int:
    """Capture-heavy I/O profile: OPS traced calls around waits."""
    scenario, ops, total_sleep, _work = spec
    handler = RequestHandler(scenario)
    wait = total_sleep / max(ops, 1)
    for request in range(ops):
        handler.handle(request, wait, 0)
    return handler.finish()


def cpu_scenario(spec: tuple) -> int:
    """Compute-heavy profile: OPS traced calls doing real work."""
    scenario, ops, _sleep, work = spec
    handler = RequestHandler(scenario)
    for request in range(ops):
        handler.handle(request, 0.0, work)
    return handler.finish()


def overhead_scenario(spec: tuple) -> int:
    """All-boundary profile: OPS empty traced calls (informational)."""
    scenario, ops, _sleep, _work = spec
    handler = RequestHandler(scenario)
    for request in range(ops):
        handler.handle(request, 0.0, 0)
    return handler.finish()


PROFILES = (
    ("io_bound", io_scenario, SLEEP, 0),
    ("cpu_bound", cpu_scenario, 0.0, WORK),
    ("overhead", overhead_scenario, 0.0, 0),
)


def _tasks(func, total_sleep: float, work: int) -> list[CaptureTask]:
    return [CaptureTask(func=func,
                        args=((scenario, OPS, total_sleep, work),),
                        name=f"scenario-{scenario}", filter=FILTER)
            for scenario in range(SCENARIOS)]


def _timed_batch(tasks, executor) -> tuple[float, list]:
    started = time.perf_counter()
    outcomes = run_capture_tasks(tasks, executor)
    return time.perf_counter() - started, outcomes


def _keys(trace):
    return [entry.key() for entry in trace.entries]


def _row(profile, mode, seconds, total_sleep):
    return {
        "profile": profile,
        "mode": mode,
        "scenarios": SCENARIOS,
        "workers": WORKERS,
        "ops_per_capture": OPS,
        "sleep_per_capture": total_sleep,
        "seconds": round(seconds, 4),
        "captures_per_sec": round(SCENARIOS / seconds, 3)
        if seconds else 0.0,
    }


def _diff_trace(version: int):
    """A three-thread trace pair source for the diff identity phase;
    ``version`` flips a run of values so the pair has real gaps."""
    builder = TraceBuilder(name=f"svc-v{version}")
    main = builder.main_tid
    obj = builder.record_init(main, "Widget", (), serialization="widget")
    workers = [builder.record_fork(main) for _ in range(2)]
    for tid_at, tid in enumerate([main] + workers):
        for op in range(30):
            value = op if not (version and 10 <= op < 16) \
                else 100 + op + tid_at
            builder.record_set(tid, obj, f"f{tid_at}", prim(value))
            builder.record_call(tid, obj, "Widget.spin", (prim(value),))
            builder.record_return(tid, prim(value))
    for tid in [main] + workers:
        builder.record_end(tid)
    return builder.build()


def _diff_signature(result):
    return (sorted(result.similar_left), sorted(result.similar_right),
            result.match_pairs, result.anchor_pairs,
            result.counter.compares)


def test_warm_process_workers_beat_the_capture_lock():
    rows = []
    speedups = {}

    build_started = time.perf_counter()
    processes = shared_process_executor(WORKERS)
    pool_build_seconds = time.perf_counter() - build_started

    with ThreadExecutor(max_workers=WORKERS) as locked:
        for profile, func, total_sleep, work in PROFILES:
            tasks = _tasks(func, total_sleep, work)
            serial_seconds, serial_out = _timed_batch(tasks, "serial")
            locked_seconds, locked_out = _timed_batch(tasks, locked)
            cold_seconds, cold_out = _timed_batch(tasks, processes)
            warm_seconds, warm_out = _timed_batch(tasks, processes)

            # Identity: every backend captures =e-identical traces of
            # the same deterministic scenario.
            for outs in (locked_out, cold_out, warm_out):
                assert all(o.ok for o in outs)
                for local, remote in zip(serial_out, outs):
                    assert _keys(local.trace) == _keys(remote.trace), \
                        profile
            assert {o.worker.split(":")[0]
                    for o in cold_out + warm_out} == {"pid"}

            speedups[profile] = round(
                locked_seconds / max(warm_seconds, 1e-9), 3)
            speedups[f"{profile}_cold"] = round(
                locked_seconds / max(cold_seconds, 1e-9), 3)
            rows.append(_row(profile, "serial", serial_seconds,
                             total_sleep))
            rows.append(_row(profile, "locked", locked_seconds,
                             total_sleep))
            rows.append(_row(profile, "processes_cold", cold_seconds,
                             total_sleep))
            rows.append(_row(profile, "processes_warm", warm_seconds,
                             total_sleep))

        # Diff phase: compare totals and result signatures must be
        # unchanged whichever executor (and shipping path) runs them.
        left, right = _diff_trace(0), _diff_trace(1)
        diff_serial = executed_view_diff(left, right, executor="serial")
        diff_threads = executed_view_diff(left, right, executor=locked)
        diff_processes = executed_view_diff(left, right,
                                            executor=processes)
        assert _diff_signature(diff_serial) == \
            _diff_signature(diff_threads) == \
            _diff_signature(diff_processes)

    document = {
        "bench": "executors",
        "cores": os.cpu_count(),
        "shm": shm_available(),
        "pool_build_seconds": round(pool_build_seconds, 4),
        "pool": processes.stats(),
        "diff_compares": diff_serial.counter.compares,
        "rows": rows,
        "speedups": speedups,
    }
    shutdown_warm_pools()
    write_result("executors.json", json.dumps(document, indent=1,
                                              sort_keys=True))

    # Acceptance bars (full size only): warm processes overlap I/O
    # waits ≥2.5x; cpu-bound captures are never worse than the locked
    # baseline wherever a second core exists.
    if SCENARIOS >= ASSERT_MIN_SCENARIOS and SLEEP >= ASSERT_MIN_SLEEP:
        assert speedups["io_bound"] >= IO_BOUND_MIN, speedups
        if WORK >= 1000:
            cpu_floor = CPU_BOUND_MIN if (os.cpu_count() or 1) >= 2 \
                else CPU_BOUND_SINGLE_CORE_FLOOR
            assert speedups["cpu_bound"] >= cpu_floor, speedups
