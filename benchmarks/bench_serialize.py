"""Wire-format throughput: binary v3 lazy decode vs the text formats.

The serialisation layer is the boundary-crossing cost every executor,
service upload, and store read pays.  This bench times all three wire
formats over the same traces:

* **v1** — legacy table-less JSON lines;
* **v2** — JSON lines with an interned ``=e`` key table prologue;
* **v3** — the binary columnar frame: packed key table, fixed-layout
  entry rows, side JSON only for rare rich payloads.  Decode is
  **lazy**: ``loads_trace`` returns in O(header + key table) and
  entries materialise on demand straight off the input buffer.

Two decode modes are timed for v3:

* ``lazy`` — ``loads_trace`` plus the columnar touches a diff actually
  makes before building entry objects (length, thread ids).  This is
  the cost a worker pays to adopt a shipped trace.
* ``eager`` — the same, then a full walk materialising every entry:
  the worst case, comparable to what v1/v2 always pay.

Traces: a synthetic multi-thread trace (``BENCH_SERIALIZE_ENTRIES``
entries, default 10000) plus real captured pairs from the minijs and
minidb workloads.  Identity is asserted everywhere — equal entries,
equal content digests across all three formats, and equal diff result
signatures whichever format the pair travelled through.

One JSON document lands in ``results/serialize.json`` (uploaded as a
CI artifact; ``check_budgets.py`` guards its ratios).  Acceptance at
full size: v3 lazy decode ≥ 3x v2 loads, and v3 ≥ 2x smaller on the
wire.
"""

from __future__ import annotations

import json
import os
import time

from conftest import write_result

from repro.analysis.serialize import dumps_trace_bytes, loads_trace
from repro.core.lcs import OpCounter
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.core.view_diff import view_diff

ENTRIES = int(os.environ.get("BENCH_SERIALIZE_ENTRIES", "10000"))

#: Acceptance bars fire only at full size (small CI smokes are noisy).
ASSERT_MIN_ENTRIES = 8000
LAZY_MIN_SPEEDUP = 3.0
BYTES_MIN_RATIO = 2.0

#: Timing repeats (min-of): decode is fast, so single runs are noisy.
REPEATS = 5


def synthetic_trace(entries: int) -> "Trace":
    """A multi-thread trace with the full event mix (init, forks,
    sets/calls/returns over a modest value alphabet, ends) — shaped
    like a captured workload, sized by ``entries``."""
    builder = TraceBuilder(name="synthetic")
    main = builder.main_tid
    obj = builder.record_init(main, "Widget", (), serialization="widget")
    tids = [main] + [builder.record_fork(main) for _ in range(3)]
    op = 0
    while len(builder) < entries - len(tids):
        tid = tids[op % len(tids)]
        builder.record_set(tid, obj, f"f{op % 17}", prim(op % 251))
        builder.record_call(tid, obj, "Widget.spin", (prim(op % 97),))
        builder.record_return(tid, prim(op % 97))
        op += 1
    for tid in tids:
        builder.record_end(tid)
    return builder.build()


def minijs_pair():
    from repro.workloads.minijs.bug_registry import MINIJS_BUGS
    from repro.workloads.minijs.scenario import trace_pair
    return trace_pair(MINIJS_BUGS.get("CF-NOT-IF"), scale=8)


def minidb_pair():
    from repro.workloads.harness import SCENARIOS, capture_scenario_trace
    spec = SCENARIOS["Derby-1633"]
    return (capture_scenario_trace(spec, spec.run_old,
                                   spec.regressing_input, "old/regressing"),
            capture_scenario_trace(spec, spec.run_new,
                                   spec.regressing_input, "new/regressing"))


def _timed(op, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        op()
        best = min(best, time.perf_counter() - started)
    return best


def _eager(trace) -> None:
    for _entry in trace.entries:
        pass


def _decode_lazy(blob) -> None:
    trace = loads_trace(blob)
    len(trace)
    trace.thread_ids()


def _decode_eager(blob) -> None:
    _eager(loads_trace(blob))


def _diff_signature(result) -> tuple:
    return (sorted(result.similar_left), sorted(result.similar_right),
            result.match_pairs, result.counter.compares)


def _measure(trace) -> dict:
    """Dumps/loads timings and wire bytes for one trace, all formats."""
    blobs = {v: dumps_trace_bytes(trace, version=v) for v in (1, 2, 3)}
    formats = {}
    for version in (1, 2):
        formats[str(version)] = {
            "bytes": len(blobs[version]),
            "dumps_seconds": round(_timed(
                lambda v=version: dumps_trace_bytes(trace, version=v)), 5),
            "loads_seconds": round(_timed(
                lambda v=version: _decode_eager(blobs[v])), 5),
        }
    formats["3"] = {
        "bytes": len(blobs[3]),
        "dumps_seconds": round(_timed(
            lambda: dumps_trace_bytes(trace, version=3)), 5),
        "loads_lazy_seconds": round(_timed(
            lambda: _decode_lazy(blobs[3])), 5),
        "loads_eager_seconds": round(_timed(
            lambda: _decode_eager(blobs[3])), 5),
    }

    # Bit-identity: the same trace must come back from every format —
    # equal entries and one content digest, lazy or eager.
    reference = loads_trace(blobs[2])
    lazy = loads_trace(blobs[3])
    assert list(loads_trace(blobs[1]).entries) == list(reference.entries)
    assert list(lazy.entries) == list(reference.entries)
    assert (loads_trace(blobs[1]).content_digest()
            == reference.content_digest()
            == lazy.content_digest()
            == trace.content_digest())

    v2_loads = formats["2"]["loads_seconds"]
    return {
        "entries": len(trace),
        "formats": formats,
        "speedups": {
            "lazy": round(v2_loads / max(
                formats["3"]["loads_lazy_seconds"], 1e-9), 3),
            "eager": round(v2_loads / max(
                formats["3"]["loads_eager_seconds"], 1e-9), 3),
        },
        "bytes_ratio": round(
            len(blobs[2]) / max(len(blobs[3]), 1), 3),
    }


def _assert_pair_identity(left, right) -> None:
    """A diff over a v3-shipped pair must equal the v2-shipped diff."""
    via_v2 = tuple(loads_trace(dumps_trace_bytes(t, version=2))
                   for t in (left, right))
    via_v3 = tuple(loads_trace(dumps_trace_bytes(t, version=3))
                   for t in (left, right))
    reference = view_diff(left, right, counter=OpCounter())
    for pair in (via_v2, via_v3):
        result = view_diff(*pair, counter=OpCounter())
        assert _diff_signature(result) == _diff_signature(reference)


def test_binary_v3_beats_text_decode():
    workloads = {"synthetic": _measure(synthetic_trace(ENTRIES))}

    js_left, js_right = minijs_pair()
    workloads["minijs"] = _measure(js_left)
    _assert_pair_identity(js_left, js_right)

    db_left, db_right = minidb_pair()
    workloads["minidb"] = _measure(db_left)
    _assert_pair_identity(db_left, db_right)

    synthetic = workloads["synthetic"]
    document = {
        "bench": "serialize",
        "entries": ENTRIES,
        "workloads": workloads,
        # Top-level ratios (the synthetic trace at the requested size)
        # are what check_budgets.py guards.
        "speedups": dict(synthetic["speedups"]),
        "bytes_ratio": synthetic["bytes_ratio"],
    }
    write_result("serialize.json", json.dumps(document, indent=1,
                                              sort_keys=True))

    # Acceptance bars (full size only): lazy v3 decode ≥3x the v2 text
    # parse, and ≥2x fewer bytes on the wire.
    if ENTRIES >= ASSERT_MIN_ENTRIES:
        assert synthetic["speedups"]["lazy"] >= LAZY_MIN_SPEEDUP, \
            synthetic["speedups"]
        assert synthetic["bytes_ratio"] >= BYTES_MIN_RATIO, \
            synthetic["bytes_ratio"]
