"""Trace-diff service throughput and request latency.

A :class:`~repro.service.ReproService` is booted in-process against a
sharded store primed with version pairs, then a thread pool of clients
hammers the submit-diff endpoint: each request submits a job and polls
it to completion, so the measured latency is the full user-visible
round trip (HTTP submit + queue wait + diff + HTTP poll).  Two passes
run — **cold** (empty diff cache: every job computes) and **warm**
(primed cache: every job is a digest hit) — and every service-computed
signature is asserted bit-identical to the direct
:meth:`Session.diff` computation before any timing claim is made.

One JSON document lands in ``results/service.json`` (the CI
``service-smoke`` job uploads it as a workflow artifact), reporting
per-pass throughput (jobs/sec) and p50/p95 request latency.
Environment knobs:

* ``BENCH_SERVICE_PAIRS`` — distinct trace pairs in the store
  (default 8).
* ``BENCH_SERVICE_REQUESTS`` — diff requests per pass (default 64).
* ``BENCH_SERVICE_CLIENTS`` — concurrent client threads (default 16).
* ``BENCH_SERVICE_WORKERS`` — service worker slots (default 4).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import write_result

from repro.api import Session, TraceStore
from repro.core.diffs import result_signature
from repro.core.traces import Trace, TraceBuilder
from repro.core.values import prim
from repro.service import ReproService, ServiceClient, ServiceThread

PAIRS = int(os.environ.get("BENCH_SERVICE_PAIRS", "8"))
REQUESTS = int(os.environ.get("BENCH_SERVICE_REQUESTS", "64"))
CLIENTS = int(os.environ.get("BENCH_SERVICE_CLIENTS", "16"))
WORKERS = int(os.environ.get("BENCH_SERVICE_WORKERS", "4"))
OPS = int(os.environ.get("BENCH_SERVICE_OPS", "120"))


def _trace(values, name: str) -> Trace:
    builder = TraceBuilder(name=name)
    tid = builder.main_tid
    obj = builder.record_init(tid, "Handler", (), serialization="h")
    for value in values:
        builder.record_call(tid, obj, "Handler.handle", (prim(value),))
        builder.record_return(tid, prim(value * 2))
    builder.record_end(tid)
    return builder.build()


def _prime_store(store: TraceStore) -> list[tuple[str, str]]:
    pairs = []
    for n in range(PAIRS):
        old = list(range(OPS))
        new = [-v if v and v % (17 + n) == 0 else v for v in old]
        store.save(_trace(old, f"s{n}/old"), key=f"s{n}/old")
        store.save(_trace(new, f"s{n}/new"), key=f"s{n}/new")
        pairs.append((f"s{n}/old", f"s{n}/new"))
    return pairs


def _run_pass(url: str, pairs, label: str) -> tuple[dict, list]:
    def one_request(n: int):
        client = ServiceClient(url)
        left, right = pairs[n % len(pairs)]
        started = time.perf_counter()
        job = client.submit_diff(left, right)
        record = client.wait(job, timeout=300, poll=0.005)
        seconds = time.perf_counter() - started
        return seconds, (left, right), record["result"]

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        outcomes = list(pool.map(one_request, range(REQUESTS)))
    wall = time.perf_counter() - started

    latencies = sorted(seconds for seconds, _, _ in outcomes)
    row = {
        "pass": label,
        "requests": REQUESTS,
        "wall_seconds": round(wall, 4),
        "jobs_per_sec": round(REQUESTS / wall, 3) if wall else 0.0,
        "latency_p50_ms": round(
            latencies[len(latencies) // 2] * 1000, 3),
        "latency_p95_ms": round(
            latencies[min(len(latencies) - 1,
                          int(len(latencies) * 0.95))] * 1000, 3),
        "cached": sum(1 for _, _, result in outcomes
                      if result["cached"]),
    }
    return row, outcomes


def test_service_throughput_and_latency(tmp_path):
    store = TraceStore(tmp_path / "store", layout="sharded")
    pairs = _prime_store(store)

    # Ground truth: direct in-process diffs, no cache.
    direct = Session(store=store, cache=False)
    expected = {
        pair: json.dumps(result_signature(direct.diff(*pair)),
                         sort_keys=True, default=list)
        for pair in pairs
    }

    service = ReproService(store, workers=WORKERS)
    with ServiceThread(service, timeout=60) as running:
        cold_row, cold = _run_pass(running.url, pairs, "cold")
        warm_row, warm = _run_pass(running.url, pairs, "warm")

    # Identity first: every service result matches the direct diff.
    for _, pair, result in cold + warm:
        assert result["signature"] == expected[pair], pair
        assert result["num_diffs"] > 0
    assert warm_row["cached"] == REQUESTS  # warm pass fully cache-hit

    document = {
        "bench": "service",
        "pairs": PAIRS,
        "ops_per_trace": OPS,
        "clients": CLIENTS,
        "workers": WORKERS,
        "rows": [cold_row, warm_row],
        "warm_speedup": round(
            cold_row["wall_seconds"]
            / max(warm_row["wall_seconds"], 1e-9), 3),
    }
    write_result("service.json", json.dumps(document, indent=1,
                                            sort_keys=True))
