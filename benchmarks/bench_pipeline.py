"""Micro-benchmark of the parallel scenario pipeline (repro.api).

Builds one four-trace regression scenario from synthetic traces, fans it
out as a batch of stored-scenario jobs, and compares sequential vs
pooled execution of the diff/analysis side.  Capture is excluded on
purpose: it is serialised process-wide (single ``sys.settrace`` weaver),
so the pipeline's speedup must come from overlapping differencing and
regression analysis — this benchmark verifies that it does and reports
the per-engine cost split the batch runner aggregates.
"""

from __future__ import annotations

import time

from conftest import write_result

from repro.api import Session, StoredScenarioJob, TraceStore, run_pipeline
from repro.core.traces import TraceBuilder
from repro.core.values import prim

#: Jobs per batch (two per registered engine flavour exercised).
JOBS = 8
ENTRIES = 400
WORKERS = (1, 2, 4)


def synthetic_trace(n: int, variant: str, name: str):
    """n field-set events; the 'new' variant modifies 2% and moves a
    block, the 'bad' variants additionally corrupt a constructor arg."""
    builder = TraceBuilder(name=name)
    tid = builder.main_tid
    seed = 1 if "bad" in variant else 32
    obj = builder.record_init(tid, "Conv", (prim(seed),),
                              serialization=("Conv", seed))
    values = list(range(n))
    if "new" in variant:
        for at in range(25, n, 50):
            values[at] = -values[at]
        block = values[10:30]
        del values[10:30]
        values.extend(block)
    for value in values:
        builder.record_set(tid, obj, "v", prim(value))
    builder.record_end(tid)
    return builder.build()


def build_store(tmp_path) -> TraceStore:
    store = TraceStore(tmp_path)
    store.save(synthetic_trace(ENTRIES, "old-bad", "ob"), key="ob")
    store.save(synthetic_trace(ENTRIES, "new-bad", "nb"), key="nb")
    store.save(synthetic_trace(ENTRIES, "old-ok", "oo"), key="oo")
    store.save(synthetic_trace(ENTRIES, "new-ok", "no"), key="no")
    return store


def batch_jobs() -> list[StoredScenarioJob]:
    engines = ("views", "optimized", "hirschberg", "fast")
    return [StoredScenarioJob(
        name=f"job-{i:02d}-{engines[i % len(engines)]}",
        suspected=("ob", "nb"), expected=("oo", "no"),
        regression=("no", "nb"), engine=engines[i % len(engines)])
        for i in range(JOBS)]


def test_pipeline_scaling(tmp_path):
    session = Session(store=build_store(tmp_path / "store"))
    jobs = batch_jobs()

    rows = []
    baseline_seconds = None
    for workers in WORKERS:
        started = time.perf_counter()
        result = run_pipeline(jobs, session=session, max_workers=workers)
        elapsed = time.perf_counter() - started
        assert len(result.succeeded()) == JOBS
        if baseline_seconds is None:
            baseline_seconds = elapsed
        rows.append((workers, elapsed, baseline_seconds / elapsed,
                     result.total_compares()))

    lines = [
        "=== Parallel scenario pipeline "
        f"({JOBS} stored scenarios x {ENTRIES} entries) ===",
        f"{'workers':>7} {'batch s':>9} {'speedup':>8} {'compares':>12}",
    ]
    for workers, elapsed, speedup, compares in rows:
        lines.append(f"{workers:>7} {elapsed:>9.3f} {speedup:>7.2f}x "
                     f"{compares:>12}")
    lines.append("")
    lines.append("per-job split at max workers:")
    final = run_pipeline(jobs, session=session, max_workers=WORKERS[-1])
    for outcome in list(final)[:4]:
        lines.append("  " + outcome.brief())
    write_result("pipeline.txt", "\n".join(lines))

    # Every configuration must produce identical analysis results.
    sizes = {tuple(sorted(o.result.report.set_sizes().items()))
             for o in final if o.result.engine == "views"}
    assert len(sizes) == 1
