"""Anchored segmental diffing: compare-count reduction and segment
caching on large near-identical trace pairs.

The motivating numbers for :mod:`repro.core.anchors`: a pair of long,
mostly-identical traces (the paper's whole premise) with a handful of
scattered divergences is diffed

* **unanchored** — the inner engine walks the whole pair (for the LCS
  baseline, one huge trimmed middle region; for views, one ``=e``
  compare per matched entry), and
* **anchored** — the ``anchored:*`` meta-engine splits the pair along
  patience-style ``=e`` anchor runs and only the tiny gaps are
  actually diffed.

Anchored results are asserted bit-identical
(:func:`~repro.core.diffs.result_identity`) to their inner engines
before any cost claim, for ``anchored:views`` and ``anchored:optimized``
alike; at full size the bench asserts **>=3x fewer key comparisons**
for both.  Two more rows exercise the execution and caching layers:

* gap segments dispatched through a process executor (worker pids
  recorded, identity re-asserted), and
* a segment-cache warm rerun — including an *edited* variant whose
  shifted entry ids still hit the unchanged gaps (position-relative
  digests), re-diffing only the changed region.

One JSON document lands in ``results/anchors.json`` (uploaded by the
CI ``anchor-smoke`` job).  Environment knobs:

* ``BENCH_ANCHOR_ENTRIES`` — entries per trace (default 40000).
* ``BENCH_ANCHOR_EDITS`` — scattered divergences (default 8).

The >=3x acceptance assertions fire only at full size
(>= 10000 entries); identity assertions always run.
"""

from __future__ import annotations

import json
import os
import time

from conftest import write_result

from repro.api import DiffCache, get_engine
from repro.core.diffs import result_identity
from repro.core.traces import Trace, TraceBuilder
from repro.core.values import prim
from repro.exec import ProcessExecutor, anchored_segment_diff

ENTRIES = int(os.environ.get("BENCH_ANCHOR_ENTRIES", "40000"))
EDITS = int(os.environ.get("BENCH_ANCHOR_EDITS", "8"))

#: The acceptance assertions only fire at full scale.
ASSERT_MIN_ENTRIES = 10_000
ASSERT_REDUCTION = 3.0


def build_trace(entries: int, edits: tuple[int, ...],
                name: str, prefix: int = 0) -> Trace:
    """A long single-threaded trace of distinct-argument calls (the
    shape real captures have: most ``=e`` keys unique), with a small
    divergent neighbourhood around each edit position.

    ``prefix`` prepends extra warmup calls — an "edit early in the
    scenario" that shifts the absolute entry id of everything after it
    without changing the later content.
    """
    builder = TraceBuilder(name=name)
    tid = builder.main_tid
    service = builder.record_init(tid, "Service", (),
                                  serialization="svc")
    for warm in range(prefix):
        builder.record_call(tid, service, "Service.warmup",
                            (prim(warm),))
        builder.record_return(tid, prim(warm))
    edited = set(edits)
    for step in range(entries):
        if step in edited:
            # A *replacement* (the regression mangles this request):
            # the gap is two-sided, so the segmental driver has a real
            # sub-diff to run, cache, and ship to workers.
            builder.record_call(tid, service, "Service.mangle",
                                (prim(-step),))
            builder.record_return(tid, prim(-step))
        else:
            builder.record_call(tid, service, "Service.handle",
                                (prim(step),))
            builder.record_return(tid, prim(step * 2))
    builder.record_end(tid)
    return builder.build()


def edit_positions(entries: int, edits: int,
                   offset: int = 0) -> tuple[int, ...]:
    if edits <= 0:
        return ()
    stride = max(1, entries // (edits + 1))
    return tuple(stride * (k + 1) + offset for k in range(edits))


def timed_diff(engine_name: str, left: Trace, right: Trace,
               **kwargs) -> tuple:
    engine = get_engine(engine_name)
    started = time.perf_counter()
    result = engine.diff(left, right, **kwargs)
    return result, time.perf_counter() - started


def test_anchored_engines_cut_key_comparisons(tmp_path):
    left = build_trace(ENTRIES, (), name="baseline")
    right = build_trace(ENTRIES, edit_positions(ENTRIES, EDITS),
                        name="edited")
    full_size = ENTRIES >= ASSERT_MIN_ENTRIES
    document: dict = {
        "bench": "anchors",
        "entries": ENTRIES,
        "edits": EDITS,
        "rows": [],
    }

    # -- compare-count reduction, per engine family ---------------------
    reductions = {}
    for inner_name in ("views", "optimized"):
        inner, inner_seconds = timed_diff(inner_name, left, right)
        anchored, anchored_seconds = timed_diff(
            f"anchored:{inner_name}", left, right)
        assert result_identity(anchored) == result_identity(inner), \
            inner_name
        assert anchored.num_diffs() > 0  # the edits are really seen
        reduction = inner.counter.total / max(anchored.counter.total, 1)
        reductions[inner_name] = reduction
        document["rows"].append({
            "row": f"reduction:{inner_name}",
            "inner_compares": inner.counter.total,
            "anchored_compares": anchored.counter.total,
            "reduction": round(reduction, 2),
            "inner_seconds": round(inner_seconds, 4),
            "anchored_seconds": round(anchored_seconds, 4),
        })

    # -- gap segments through the process executor ----------------------
    inner_engine = get_engine("optimized")
    serial_reference = anchored_segment_diff(left, right, inner_engine)
    workers: list[str] = []
    with ProcessExecutor(max_workers=2) as pool:
        started = time.perf_counter()
        processed = anchored_segment_diff(left, right, inner_engine,
                                          executor=pool,
                                          workers=workers)
        process_seconds = time.perf_counter() - started
    assert result_identity(processed) == \
        result_identity(serial_reference)
    parent = f"pid:{os.getpid()}"
    worker_pids = sorted({w for w in workers if w.startswith("pid:")})
    assert worker_pids and all(w != parent for w in worker_pids)
    document["rows"].append({
        "row": "process-executor",
        "gaps": len(workers),
        "workers": worker_pids,
        "seconds": round(process_seconds, 4),
    })

    # -- segment-cache warm rerun (plus an edited variant) ---------------
    cache = DiffCache(tmp_path / "diffcache")
    cold_workers: list[str] = []
    started = time.perf_counter()
    cold = anchored_segment_diff(left, right, inner_engine, cache=cache,
                                 workers=cold_workers)
    cold_seconds = time.perf_counter() - started
    warm_workers: list[str] = []
    started = time.perf_counter()
    warm = anchored_segment_diff(left, right, inner_engine, cache=cache,
                                 workers=warm_workers)
    warm_seconds = time.perf_counter() - started
    assert result_identity(warm) == result_identity(cold)
    assert warm.counter.total == cold.counter.total  # cold totals credited
    assert warm_workers and all(w == "cache" for w in warm_workers)

    # An edit shifts every later entry id; unchanged gaps still hit.
    shifted = build_trace(ENTRIES, edit_positions(ENTRIES, EDITS),
                          name="edited-shifted", prefix=3)
    shifted_workers: list[str] = []
    rerun = anchored_segment_diff(left, shifted, inner_engine,
                                  cache=cache, workers=shifted_workers)
    shifted_hits = sum(1 for w in shifted_workers if w == "cache")
    reference = inner_engine.diff(left, shifted)
    assert result_identity(rerun) == result_identity(reference)
    document["rows"].append({
        "row": "segment-cache",
        "gaps": len(cold_workers),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_hits": len(warm_workers),
        "edited_rerun_hits": shifted_hits,
        "edited_rerun_misses": len(shifted_workers) - shifted_hits,
    })

    document["assertions_enforced"] = full_size
    write_result("anchors.json",
                 json.dumps(document, indent=1, sort_keys=True))

    if full_size:
        for inner_name, reduction in reductions.items():
            assert reduction >= ASSERT_REDUCTION, (inner_name, document)
        assert shifted_hits > 0, document
