"""Interned vs. tuple-key differencing throughput.

For each (scenario, engine) configuration the bench runs the same diff
twice — once over interned key-table ids (traces interned at ingest, the
data layer's default) and once over raw ``=e`` key tuples — and reports
wall-clock, compare ops/second, and how many ``entry.key()`` tuples each
path constructed *during the diff* (the interned path builds its keys
once at ingest; the tuple path rebuilds them per diff).  One JSON row is
printed per configuration.

Scenarios: a synthetic 10k-entry regression pair (call/set/return events
with a small modified-and-reordered middle — the realistic "traces are
mostly similar" shape), plus captured minidb / minijs / minixslt
workload scenario pairs.

Environment knobs (the CI smoke job shrinks everything):

* ``BENCH_INTERN_ENTRIES`` — synthetic pair size (default 13400 ops,
  ~10k entries per side).
* ``BENCH_INTERN_WORKLOADS`` — 0 skips the workload captures.
* ``BENCH_INTERN_REPEATS`` — timing repeats per configuration.

The ≥2x throughput assertion only applies to the full-size synthetic
scenario on the LCS engine (tiny smoke sizes are all fixed overhead and
timing noise); result-identity assertions always run.
"""

from __future__ import annotations

import json
import os
import time

from conftest import write_result

from repro.capture import TraceFilter, trace_call
from repro.core.entries import TraceEntry
from repro.core.keytable import KeyTable
from repro.core.lcs import OpCounter
from repro.core.lcs_diff import lcs_diff
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.core.view_diff import ViewDiffConfig, view_diff

ENTRIES = int(os.environ.get("BENCH_INTERN_ENTRIES", "13400"))
WITH_WORKLOADS = os.environ.get("BENCH_INTERN_WORKLOADS", "1") != "0"
REPEATS = int(os.environ.get("BENCH_INTERN_REPEATS", "5"))

#: The acceptance assertion only fires at full scale.
ASSERT_MIN_ENTRIES = 8_000


def synthetic_pair(ops_budget: int, key_table: KeyTable | None):
    """A 2x ~(3/4 * ops_budget)-entry regression pair: every op is a
    call + field set + return on one service object; the new version
    negates part of the middle and moves a block within it."""

    def build(variant: str, name: str):
        builder = TraceBuilder(name=name, key_table=key_table)
        tid = builder.main_tid
        svc = builder.record_init(tid, "Service", (prim("cfg"),),
                                  serialization=("Service", "cfg"))
        ops = list(range(ops_budget // 4))
        if variant == "new":
            mid = len(ops) // 2
            span = max(2, min(40, len(ops) // 8))
            for at in range(mid - span, mid + span, 2):
                ops[at] = -ops[at]
            block = ops[mid - span:mid - span // 2]
            del ops[mid - span:mid - span // 2]
            ops[mid + span // 2:mid + span // 2] = block
        for op in ops:
            builder.record_call(tid, svc, "Service.handle",
                                (prim(op), prim(str(op % 7))))
            builder.record_set(tid, svc, "last", prim(op))
            builder.record_return(tid, prim(op * 2))
        builder.record_end(tid)
        return builder.build()

    return build("old", "synthetic/old"), build("new", "synthetic/new")


def workload_pairs(key_table: KeyTable | None):
    """Captured scenario trace pairs for the three code workloads."""
    pairs = {}

    from repro.workloads.minidb import scenario as derby
    from repro.workloads.minidb.engine import run_session
    derby_filter = TraceFilter(include_modules=("repro.workloads.minidb",))
    queries = derby.REGRESSING_QUERIES
    setup = derby.SETUP_STATEMENTS if ENTRIES >= ASSERT_MIN_ENTRIES \
        else derby.SETUP_STATEMENTS[:20]
    pairs["minidb"] = tuple(
        trace_call(run_session, version, setup, queries,
                   name=f"minidb/{version}", filter=derby_filter,
                   key_table=key_table).trace
        for version in ("10.1.2.1", "10.1.3.1"))

    from repro.workloads.minijs.bug_registry import MINIJS_BUGS, scaled
    from repro.workloads.minijs.engine import run_script
    minijs_filter = TraceFilter(include_modules=("repro.workloads.minijs",))
    spec = MINIJS_BUGS.get("CF-NOT-IF")
    scale = 12 if ENTRIES >= ASSERT_MIN_ENTRIES else 2
    source = scaled(str(spec.failing_input), scale)
    pairs["minijs"] = (
        trace_call(run_script, source, "old", name="minijs/old",
                   filter=minijs_filter, key_table=key_table).trace,
        trace_call(run_script, source, "new", spec.bug_id,
                   name="minijs/new", filter=minijs_filter,
                   key_table=key_table).trace)

    from repro.workloads.minixslt import scenario as xalan
    xslt_filter = TraceFilter(include_modules=("repro.workloads.minixslt",))
    pairs["minixslt"] = (
        trace_call(xalan.run_1725_old, xalan.REGRESSING_INPUT_1725,
                   name="minixslt/old", filter=xslt_filter,
                   key_table=key_table).trace,
        trace_call(xalan.run_1725_new, xalan.REGRESSING_INPUT_1725,
                   name="minixslt/new", filter=xslt_filter,
                   key_table=key_table).trace)
    return pairs


class _KeyConstructionCount:
    """Counts ``TraceEntry.key()`` calls while installed (the bench's
    "entry-compare tuple constructions" metric)."""

    def __init__(self):
        self.calls = 0
        self._original = TraceEntry.key

    def __enter__(self):
        original = self._original
        counter = self

        def counting_key(entry):
            counter.calls = counter.calls + 1
            return original(entry)

        TraceEntry.key = counting_key
        return self

    def __exit__(self, exc_type, exc, tb):
        TraceEntry.key = self._original


def run_config(scenario: str, engine: str, mode: str, left, right) -> dict:
    interned = mode == "interned"

    def one_diff(counter=None):
        if engine == "views":
            return view_diff(left, right, counter=counter,
                             config=ViewDiffConfig(interned=interned))
        return lcs_diff(left, right, algorithm=engine, counter=counter,
                        interned=interned)

    # Result + op counts + diff-time key constructions, measured once.
    counter = OpCounter()
    with _KeyConstructionCount() as constructions:
        result = one_diff(counter)
    # Wall-clock: best of REPEATS.
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        one_diff(OpCounter())
        best = min(best, time.perf_counter() - started)
    return {
        "scenario": scenario,
        "engine": engine,
        "mode": mode,
        "entries": len(left) + len(right),
        "compares": counter.compares,
        "charged": counter.charged,
        "seconds": round(best, 6),
        "compares_per_sec": round(counter.total / best) if best else 0,
        "key_constructions": constructions.calls,
        "num_diffs": result.num_diffs(),
        "similar": sorted(result.similar_left),
    }


def test_interned_vs_tuple_throughput():
    # One capture per scenario, shared by both modes: workload captures
    # are not perfectly deterministic across runs (thread scheduling),
    # and the tuple path ignores the carried key table anyway.
    ingest_table = KeyTable()
    scenarios = {"synthetic": synthetic_pair(ENTRIES, ingest_table)}
    if WITH_WORKLOADS:
        scenarios.update(workload_pairs(ingest_table))
    ingest_constructions = ingest_table.key_constructions

    engines = ("views", "optimized")
    rows = []
    ratios = {}
    for scenario, (left, right) in scenarios.items():
        for engine in engines:
            interned = run_config(scenario, engine, "interned", left, right)
            tupled = run_config(scenario, engine, "tuple", left, right)
            # Identical DiffResult similarity sets, op counts, and diff
            # counts — interning must never change the semantics.
            assert interned["similar"] == tupled["similar"], \
                (scenario, engine)
            assert interned["compares"] == tupled["compares"]
            assert interned["num_diffs"] == tupled["num_diffs"]
            # Fewer or equal key-tuple constructions during the diff
            # (the interned traces were interned once at ingest).
            assert interned["key_constructions"] \
                <= tupled["key_constructions"], (scenario, engine)
            ratios[(scenario, engine)] = (tupled["seconds"]
                                          / max(interned["seconds"], 1e-9))
            for row in (interned, tupled):
                row = dict(row)
                del row["similar"]
                rows.append(row)

    lines = ["=== Interned vs tuple-key diffing ==="]
    for row in rows:
        lines.append(json.dumps(row, sort_keys=True))
    lines.append(json.dumps({"ingest_key_constructions":
                             ingest_constructions}))
    for (scenario, engine), ratio in sorted(ratios.items()):
        lines.append(f"# {scenario}/{engine}: interned is {ratio:.2f}x "
                     f"the tuple-key throughput")
    write_result("interning.txt", "\n".join(lines))

    # The acceptance bar: >=2x compare-throughput on the full-size
    # 10k-entry scenario under the compare-heavy LCS baseline.
    synthetic_entries = len(scenarios["synthetic"][0]) * 2
    if synthetic_entries >= ASSERT_MIN_ENTRIES:
        assert ratios[("synthetic", "optimized")] >= 2.0, ratios
        assert ratios[("synthetic", "views")] >= 1.0, ratios
