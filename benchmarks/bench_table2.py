"""Table 2: number of views and the regression-analysis set sizes.

Per case study: total/thread/method/target-object view counts of the
original version's regressing trace, and |A| (suspected), |B| (expected),
|C| (regression), |D| (result) in difference sequences.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.web import ViewWeb
from repro.workloads.harness import (SCENARIOS,
                                     capture_scenario_trace)


def render_table2(results) -> str:
    lines = ["=== Table 2: views and analysis set sizes ===",
             f"{'benchmark':11} {'total':>6} {'thread':>7} {'method':>7} "
             f"{'t-obj':>6}   {'A':>5} {'B':>5} {'C':>5} {'D':>4}"]
    for result in results:
        counts = result.view_counts
        sizes = result.set_sizes
        lines.append(
            f"{result.name:11} {counts['total']:6} {counts['thread']:7} "
            f"{counts['method']:7} {counts['target_object']:6}   "
            f"{sizes.get('A', 0):5} {sizes.get('B', 0):5} "
            f"{sizes.get('C', 0):5} {sizes.get('D', 0):4}")
    return "\n".join(lines)


def test_table2(scenario_results, benchmark):
    text = render_table2(scenario_results)
    write_result("table2.txt", text)

    by_name = {r.name: r for r in scenario_results}
    # Shape assertions.
    for result in scenario_results:
        counts = result.view_counts
        assert counts["total"] == (counts["thread"] + counts["method"]
                                   + counts["target_object"]
                                   + counts["active_object"])
        # The analysis always shrinks the suspected set.
        assert result.set_sizes["D"] <= result.set_sizes["A"]
    # Derby is the only multithreaded study (paper: 3 thread views there,
    # 1 elsewhere); ours spawns one worker per query plus the daemon.
    assert by_name["Derby-1633"].view_counts["thread"] > 1
    for name in ("Daikon", "Xalan-1725", "Xalan-1802"):
        assert by_name[name].view_counts["thread"] == 1

    # Benchmark: building the view web of the Xalan-1725 trace.
    spec = SCENARIOS["Xalan-1725"]
    trace = capture_scenario_trace(spec, spec.run_old,
                                   spec.regressing_input, "old")
    web = benchmark.pedantic(lambda: ViewWeb(trace), rounds=3,
                             iterations=1)
    assert web.counts()["total"] > 0
