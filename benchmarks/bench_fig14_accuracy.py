"""Fig. 14(a): accuracy of RPrism vs the LCS baseline over the injected
bug suite.

The paper's claim: RPRISM achieves >= 100% accuracy in all but 3 cases
(those remain > 99%), because it makes semantically correct correlations
(e.g. moved entries) the LCS inherently cannot.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.stats import accuracy_histogram
from repro.core.view_diff import view_diff
from repro.workloads.minijs.bug_registry import MINIJS_BUGS
from repro.workloads.minijs.scenario import trace_pair


def render_fig14a(runs) -> str:
    lines = ["=== Fig. 14(a): Accuracy (RPrism vs LCS) ==="]
    values = []
    for run in runs:
        if run.accuracy is None:
            lines.append(f"  {run.bug_id:18} [{run.category:16}] "
                         f"entries={run.trace_entries:7} "
                         f"accuracy=   (LCS failed: memory)")
            continue
        values.append(run.accuracy)
        lines.append(f"  {run.bug_id:18} [{run.category:16}] "
                     f"entries={run.trace_entries:7} "
                     f"accuracy={run.accuracy * 100:7.2f}%")
    hist = accuracy_histogram(values)
    lines.append("")
    lines.append(hist.render("accuracy histogram (bin = upper bound):"))
    at_least_100 = sum(1 for v in values if v >= 1.0)
    lines.append("")
    lines.append(f"cases with accuracy >= 100%: {at_least_100}/{len(values)}"
                 f" (paper: all but 3; sub-100% cases are where the exact"
                 f" LCS blind-matches recurring VM values across loop"
                 f" iterations — the semantic mismatch Sec. 3.2 describes)")
    return "\n".join(lines)


def test_fig14_accuracy(fig14_runs, benchmark):
    text = render_fig14a(fig14_runs)
    write_result("fig14a_accuracy.txt", text)

    # Accuracy shape assertions (the paper's headline claims): most
    # cases at or above 100%, at most 3 below (ours dip further than the
    # paper's >99% because exact LCS blind-matches recurring VM values;
    # see EXPERIMENTS.md).
    measured = [r.accuracy for r in fig14_runs if r.accuracy is not None]
    assert measured, "at least some cases must have a computable baseline"
    assert all(value > 0.85 for value in measured)
    assert sum(1 for value in measured if value >= 1.0) >= \
        len(measured) - 3

    # Benchmark the views-based differencing on a mid-size case.
    spec = MINIJS_BUGS.get("MC-EQ-MIXED")
    old, new = trace_pair(spec, 5)
    result = benchmark.pedantic(lambda: view_diff(old, new), rounds=3,
                                iterations=1)
    assert result.num_diffs() > 0
