"""Ablations of the design choices DESIGN.md calls out.

1. Window size omega / exploration radius delta: their effect on
   similarity recall and compare cost (the accuracy/overhead trade of
   LinkedSimilarEntries).
2. Secondary-view exploration on/off: without it, reordered operations
   are misclassified as differences (the Fig. 13 anchors).
3. LCS implementations: DP vs Hirschberg vs anchored-fast on identical
   inputs (exactness and compare cost).
"""

from __future__ import annotations

from conftest import write_result

from repro.core.lcs import OpCounter, lcs_dp, lcs_fast, lcs_hirschberg
from repro.core.traces import TraceBuilder
from repro.core.values import prim
from repro.core.view_diff import ViewDiffConfig, view_diff


def reordered_pair(blocks: int = 12, block: int = 20):
    """Traces whose *thread views* interleave two objects' operations in
    different orders, while each object's own event order is unchanged —
    the reordering the views-based semantics is resilient to (Fig. 13's
    anchors) and the LCS misclassifies as differences."""

    def build(swapped: bool, name: str):
        builder = TraceBuilder(name=name)
        tid = builder.main_tid
        obj_x = builder.record_init(tid, "CellX", (), serialization="x")
        obj_y = builder.record_init(tid, "CellY", (), serialization="y")

        def emit(obj, field, base, count):
            for at in range(count):
                builder.record_set(tid, obj, field, prim(base + at))

        for number in range(blocks):
            base = number * block
            if swapped:
                emit(obj_y, "y", 1000 + base, block)
                emit(obj_x, "x", base, block)
            else:
                emit(obj_x, "x", base, block)
                emit(obj_y, "y", 1000 + base, block)
        builder.record_end(tid)
        return builder.build()

    return build(False, "orig"), build(True, "swapped")


def render_window_ablation() -> str:
    old, new = reordered_pair()
    lines = ["=== Ablation: window omega / radius delta ===",
             f"{'omega':>6} {'delta':>6} {'diffs':>7} {'anchors':>8} "
             f"{'compares':>10}"]
    for omega, delta in [(0, 0), (4, 2), (8, 3), (12, 4), (20, 8),
                         (40, 12)]:
        counter = OpCounter()
        config = ViewDiffConfig(window=omega, radius=delta)
        result = view_diff(old, new, config=config, counter=counter)
        lines.append(f"{omega:6} {delta:6} {result.num_diffs():7} "
                     f"{len(result.anchor_pairs):8} {counter.total:10}")
    lines.append("")
    lines.append("larger windows recover more moved entries (fewer "
                 "diffs) at higher compare cost; omega=0 disables "
                 "anchoring entirely")
    return "\n".join(lines)


def render_lcs_ablation() -> str:
    values_a = [i % 23 for i in range(400)]
    values_b = [(i + 7) % 23 for i in range(380)]
    lines = ["=== Ablation: LCS implementations ===",
             f"{'algorithm':>12} {'|LCS|':>6} {'compares':>10}"]
    rows = []
    for name, func in [("dp", lcs_dp), ("hirschberg", lcs_hirschberg),
                       ("fast", lcs_fast)]:
        counter = OpCounter()
        result = func(values_a, values_b, counter=counter)
        rows.append((name, len(result), counter.total))
        lines.append(f"{name:>12} {len(result):6} {counter.total:10}")
    lines.append("")
    lines.append("hirschberg trades ~2x compares for linear space "
                 "(the paper cites exactly this); the anchored differ "
                 "is exact here because its cores fit the DP limit")
    assert rows[0][1] == rows[1][1] == rows[2][1]
    return "\n".join(lines)


def test_window_ablation(benchmark):
    text = render_window_ablation()
    write_result("ablation_window.txt", text)

    old, new = reordered_pair()
    no_views = view_diff(old, new, config=ViewDiffConfig(
        window=0, radius=0, view_types=()))
    with_views = view_diff(old, new, config=ViewDiffConfig(
        window=40, radius=12))
    # Secondary-view exploration recovers the moved block.
    assert with_views.num_diffs() < no_views.num_diffs()
    assert len(with_views.anchor_pairs) > 0
    assert no_views.anchor_pairs == []

    result = benchmark.pedantic(
        lambda: view_diff(old, new), rounds=5, iterations=1)
    assert result is not None


def test_lcs_ablation(benchmark):
    text = render_lcs_ablation()
    write_result("ablation_lcs.txt", text)

    values_a = [i % 23 for i in range(400)]
    values_b = [(i + 7) % 23 for i in range(380)]
    length = benchmark.pedantic(
        lambda: len(lcs_hirschberg(values_a, values_b)), rounds=3,
        iterations=1)
    assert length == len(lcs_dp(values_a, values_b))
