"""Fig. 14(b): compare-operation speedup of RPrism over the LCS baseline.

The paper's claims: speedups beyond 100x on large traces, below 1x on
two very small traces (the secondary-view exploration overhead), and the
baseline failing outright (memory) beyond ~100K entries while RPRISM
analyses traces into the millions.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.lcs import OpCounter
from repro.core.stats import speedup_histogram
from repro.core.view_diff import view_diff
from repro.workloads.minijs.bug_registry import MINIJS_BUGS
from repro.workloads.minijs.scenario import trace_pair


def render_fig14b(runs) -> str:
    lines = ["=== Fig. 14(b): Speedup (RPrism vs LCS, compare ops) ==="]
    values = []
    failures = 0
    for run in runs:
        if run.lcs_failed:
            failures += 1
            lines.append(f"  {run.bug_id:18} entries={run.trace_entries:7} "
                         f"LCS failed (memory); RPrism compares="
                         f"{run.views_compares}")
            continue
        values.append(run.speedup)
        lines.append(f"  {run.bug_id:18} entries={run.trace_entries:7} "
                     f"lcs={run.lcs_compares:12} "
                     f"rprism={run.views_compares:10} "
                     f"speedup={run.speedup:9.2f}x")
    hist = speedup_histogram(values)
    lines.append("")
    lines.append(hist.render("speedup histogram (bin = upper bound):"))
    lines.append("")
    lines.append(f"LCS memory failures: {failures} case(s); RPrism "
                 f"analysed every trace")
    return "\n".join(lines)


def test_fig14_speedup(fig14_runs, benchmark):
    text = render_fig14b(fig14_runs)
    write_result("fig14b_speedup.txt", text)

    values = [r.speedup for r in fig14_runs if r.speedup is not None]
    # Shape: at least one case beyond 50x, and the baseline failed on
    # some traces RPrism handled.
    assert max(values) > 50
    assert any(r.lcs_failed for r in fig14_runs)
    assert all(r.views_num_diffs >= 0 for r in fig14_runs)

    # Benchmark compare-op counting on a small pair.
    spec = MINIJS_BUGS.get("CF-SHORTCIRCUIT")
    old, new = trace_pair(spec, 3)

    def run():
        counter = OpCounter()
        view_diff(old, new, counter=counter)
        return counter.total

    compares = benchmark.pedantic(run, rounds=3, iterations=1)
    assert compares > 0
