"""Table 1: the four real-life regression case studies.

Columns mirror the paper: workload size, trace entries, tracing time,
then per-semantics (LCS-based vs views-based) the raw difference count,
difference sequences, regression-related sequences, false positives /
negatives, analysis time and memory — plus the views-over-LCS speedup.
The Derby row reproduces the baseline's out-of-memory failure.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.view_diff import view_diff
from repro.workloads.harness import (SCENARIOS,
                                     capture_scenario_trace)


def _semantics_cells(row) -> str:
    if row.failed:
        return f"({row.failed})"
    memory = f"{row.memory_bytes / 1e6:.1f}MB" if row.memory_bytes else "-"
    return (f"diffs={row.num_diffs:6} seqs={row.diff_sequences:5} "
            f"regr.seqs={row.regression_sequences:3} "
            f"FP={row.false_positives} FN={row.false_negatives} "
            f"secs={row.analysis_seconds:7.2f} mem={memory}")


def render_table1(results) -> str:
    lines = ["=== Table 1: benchmark and analysis characteristics ==="]
    for result in results:
        lines.append(f"{result.name:11} LOC={result.workload_loc:5} "
                     f"trace entries={result.trace_entries:7} "
                     f"tracing secs={result.tracing_seconds:6.2f}")
        lines.append(f"    LCS-based:   {_semantics_cells(result.lcs)}")
        lines.append(f"    views-based: {_semantics_cells(result.views)}")
        if result.speedup is not None:
            lines.append(f"    speedup (compare operations): "
                         f"{result.speedup:6.1f}x")
    return "\n".join(lines)


def test_table1(scenario_results, benchmark):
    text = render_table1(scenario_results)
    write_result("table1.txt", text)

    by_name = {r.name: r for r in scenario_results}
    # Shape assertions against the paper.
    # 1. Every study's views-based analysis completed and found the cause
    #    region with no false negatives beyond the paper's own (Daikon
    #    had 1 there; ours finds both methods).
    for result in scenario_results:
        assert result.views.failed is None
        assert result.views.regression_sequences >= 1
        assert result.views.false_negatives <= 1
    # 2. Derby (the largest, multithreaded trace) kills the LCS baseline.
    assert by_name["Derby-1633"].lcs.failed is not None
    assert by_name["Derby-1633"].trace_entries == max(
        r.trace_entries for r in scenario_results)
    # 3. Where the LCS baseline ran, the views semantics was faster.
    for result in scenario_results:
        if result.speedup is not None:
            assert result.speedup > 1.0

    # Benchmark: views-based differencing of the Daikon trace pair.
    spec = SCENARIOS["Daikon"]
    old = capture_scenario_trace(spec, spec.run_old,
                                 spec.regressing_input, "old")
    new = capture_scenario_trace(spec, spec.run_new,
                                 spec.regressing_input, "new")
    result = benchmark.pedantic(lambda: view_diff(old, new), rounds=3,
                                iterations=1)
    assert result.num_diffs() > 0
