"""Per-node site collection: the shared walker behind the call graph and
the effect analysis.

Each executable body (``<main>``, methods, spawn bodies) becomes a
:class:`NodeSites` record listing its allocation sites, call sites with
*static receiver types* (seeded from the typechecker, tolerant of
untypeable sub-terms), spawned entry points, field reads/writes keyed by
the declaring class, and local-variable uses.  Scoping follows the
interpreter (locals are function-scoped: ``If``/``While`` bodies share
the enclosing environment), not the checker's stricter block model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import (Block, FieldAssign, FieldRead, If, Lit,
                            LocalAssign, MethodCall, New, Program, Return,
                            Seq, Spawn, Term, This, Var, VarDecl, While)
from repro.lang.typecheck import (OBJECT, PRIMITIVES, TypeCheckError,
                                  TypeChecker)
from repro.static.cfg import MAIN, spawn_node_name

#: Static type recorded when an expression cannot be typed.
UNKNOWN = OBJECT


@dataclass(frozen=True, slots=True)
class CallSite:
    """A ``t.m(...)`` site with the receiver's static type."""

    receiver_type: str
    method: str


@dataclass(slots=True)
class NodeSites:
    """Everything one executable body does, syntactically."""

    name: str
    owner_class: str | None = None  # receiver class for method bodies
    news: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    builtin_calls: list[tuple[str, str]] = field(default_factory=list)
    spawns: list[str] = field(default_factory=list)
    field_reads: list[tuple[str, str]] = field(default_factory=list)
    field_writes: list[tuple[str, str]] = field(default_factory=list)
    locals_read: set[str] = field(default_factory=set)
    locals_written: set[str] = field(default_factory=set)


class _Typer:
    """Best-effort expression typing: falls back to ``Object`` instead of
    raising, so partially-typed programs still analyse."""

    def __init__(self, program: Program):
        self.checker = TypeChecker(program)

    def type_of(self, term: Term, env: dict[str, str],
                receiver: str | None) -> str:
        try:
            return self.checker.type_of(term, env, receiver)
        except TypeCheckError:
            return UNKNOWN


def declaring_class(program: Program, class_name: str,
                    field_name: str) -> str:
    """The class on the superclass chain of ``class_name`` that declares
    ``field_name`` (falls back to the static type when unknown)."""
    current = class_name
    while current in program.classes:
        decl = program.classes[current]
        if any(f.name == field_name for f in decl.fields):
            return current
        current = decl.superclass
    return class_name


class _Collector:
    def __init__(self, program: Program):
        self.program = program
        self.typer = _Typer(program)
        self.nodes: dict[str, NodeSites] = {}

    def collect(self) -> dict[str, NodeSites]:
        self.walk_body(MAIN, self.program.main, {}, receiver=None)
        for class_name in sorted(self.program.classes):
            decl = self.program.classes[class_name]
            for method in decl.methods:
                env = {p.name: p.type_name for p in method.params}
                self.walk_body(f"{class_name}.{method.name}", method.body,
                               env, receiver=class_name)
        return self.nodes

    def walk_body(self, name: str, body: Block, env: dict[str, str],
                  receiver: str | None) -> None:
        node = NodeSites(name=name, owner_class=receiver)
        self.nodes[name] = node
        pending: list[tuple[str, Block, dict[str, str]]] = []

        def spawn_hook(spawn: Spawn, snapshot: dict[str, str]) -> None:
            child = spawn_node_name(name, len(node.spawns))
            node.spawns.append(child)
            pending.append((child, spawn.body, dict(snapshot)))

        self._walk_block(body.terms, env, receiver, node, spawn_hook)
        # Spawn bodies are their own nodes; they start from a copy of the
        # locals live at the spawn site (the interpreter's snapshot).
        for child, child_body, child_env in pending:
            self.walk_body(child, child_body, child_env, receiver)

    # -- statements ---------------------------------------------------------

    def _walk_block(self, terms, env, receiver, node, spawn_hook) -> None:
        for term in terms:
            self._walk_stmt(term, env, receiver, node, spawn_hook)

    def _walk_stmt(self, term, env, receiver, node, spawn_hook) -> None:
        if isinstance(term, VarDecl):
            self._walk_expr(term.value, env, receiver, node, spawn_hook)
            env[term.name] = self.typer.type_of(term.value, env, receiver)
            node.locals_written.add(term.name)
        elif isinstance(term, LocalAssign):
            self._walk_expr(term.value, env, receiver, node, spawn_hook)
            node.locals_written.add(term.name)
        elif isinstance(term, Return):
            self._walk_expr(term.value, env, receiver, node, spawn_hook)
        elif isinstance(term, If):
            self._walk_expr(term.condition, env, receiver, node,
                            spawn_hook)
            self._walk_block(term.then_block.terms, env, receiver, node,
                             spawn_hook)
            if term.else_block is not None:
                self._walk_block(term.else_block.terms, env, receiver,
                                 node, spawn_hook)
        elif isinstance(term, While):
            self._walk_expr(term.condition, env, receiver, node,
                            spawn_hook)
            self._walk_block(term.body.terms, env, receiver, node,
                             spawn_hook)
        elif isinstance(term, (Block, Seq)):
            self._walk_block(term.terms, env, receiver, node, spawn_hook)
        else:
            self._walk_expr(term, env, receiver, node, spawn_hook)

    # -- expressions --------------------------------------------------------

    def _walk_expr(self, term, env, receiver, node, spawn_hook) -> None:
        if isinstance(term, (Lit, This)):
            return
        if isinstance(term, Var):
            node.locals_read.add(term.name)
            return
        if isinstance(term, Spawn):
            spawn_hook(term, env)
            return
        if isinstance(term, FieldRead):
            self._walk_expr(term.obj, env, receiver, node, spawn_hook)
            node.field_reads.append(
                self._field_key(term.obj, term.field, env, receiver))
            return
        if isinstance(term, FieldAssign):
            self._walk_expr(term.obj, env, receiver, node, spawn_hook)
            self._walk_expr(term.value, env, receiver, node, spawn_hook)
            node.field_writes.append(
                self._field_key(term.obj, term.field, env, receiver))
            return
        if isinstance(term, MethodCall):
            self._walk_expr(term.obj, env, receiver, node, spawn_hook)
            for arg in term.args:
                self._walk_expr(arg, env, receiver, node, spawn_hook)
            obj_type = self.typer.type_of(term.obj, env, receiver)
            if obj_type in PRIMITIVES:
                node.builtin_calls.append((obj_type, term.method))
            else:
                node.calls.append(CallSite(obj_type, term.method))
            return
        if isinstance(term, New):
            for arg in term.args:
                self._walk_expr(arg, env, receiver, node, spawn_hook)
            node.news.append(term.class_name)
            return
        if isinstance(term, (Seq, Block)):
            self._walk_block(term.terms, env, receiver, node, spawn_hook)
            return
        if isinstance(term, (VarDecl, LocalAssign, Return, If, While)):
            # Statement-like terms in expression position (AST-built).
            self._walk_stmt(term, env, receiver, node, spawn_hook)
            return

    def _field_key(self, obj, field_name, env, receiver) -> tuple[str, str]:
        obj_type = self.typer.type_of(obj, env, receiver)
        if obj_type in self.program.classes:
            return declaring_class(self.program, obj_type, field_name), \
                field_name
        return obj_type, field_name


def collect_sites(program: Program) -> dict[str, NodeSites]:
    """Site records for every executable body of ``program``."""
    return _Collector(program).collect()
