"""Class-hierarchy-aware interprocedural call graph.

Nodes are executable bodies (``<main>``, ``C.m`` methods keyed by the
*declaring* class, ``<node>.spawn[k]`` thread bodies) plus ``C.<init>``
constructor pseudo-nodes for the implicit FJ constructors.  Edges carry
a kind — ``call`` (virtual dispatch), ``new`` (allocation), ``spawn``
(thread fork).

Dispatch is resolved RTA-style: a monotone fixpoint grows the
*instantiated* class set from allocation sites in reachable code, and a
``t.m(...)`` site with static receiver type ``T`` (seeded by the
typechecker) targets ``mbody(m, C)`` for every instantiated ``C <: T``.
When the cone is empty (a never-instantiated static type) the static
type itself is used, so partial programs still produce a useful graph.
Bodies unreachable from ``<main>`` keep their nodes and edges (resolved
against the final instantiated set) but are marked unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import Program
from repro.lang.typecheck import OBJECT
from repro.static.cfg import MAIN
from repro.static.sites import NodeSites, collect_sites

#: Suffix of constructor pseudo-nodes.
INIT = "<init>"


def init_node_name(class_name: str) -> str:
    return f"{class_name}.{INIT}"


@dataclass(frozen=True, slots=True)
class CallEdge:
    caller: str
    callee: str
    kind: str  # call | new | spawn


@dataclass(slots=True)
class CallGraphNode:
    name: str
    kind: str  # main | method | spawn | constructor
    class_name: str | None = None
    reachable: bool = False


@dataclass
class CallGraph:
    nodes: dict[str, CallGraphNode]
    edges: tuple[CallEdge, ...]
    instantiated: frozenset[str]
    sites: dict[str, NodeSites] = field(default_factory=dict)

    def __post_init__(self):
        self._out: dict[str, list[CallEdge]] = {}
        self._in: dict[str, list[CallEdge]] = {}
        for edge in self.edges:
            self._out.setdefault(edge.caller, []).append(edge)
            self._in.setdefault(edge.callee, []).append(edge)

    def callees_of(self, name: str,
                   kinds: tuple[str, ...] | None = None) -> set[str]:
        return {e.callee for e in self._out.get(name, ())
                if kinds is None or e.kind in kinds}

    def callers_of(self, name: str,
                   kinds: tuple[str, ...] | None = None) -> set[str]:
        return {e.caller for e in self._in.get(name, ())
                if kinds is None or e.kind in kinds}

    def spawn_nodes(self) -> list[str]:
        return sorted(n.name for n in self.nodes.values()
                      if n.kind == "spawn")

    def to_json(self) -> dict:
        return {
            "nodes": [
                {"name": node.name, "kind": node.kind,
                 "class": node.class_name, "reachable": node.reachable}
                for _, node in sorted(self.nodes.items())],
            "edges": [
                {"caller": e.caller, "callee": e.callee, "kind": e.kind}
                for e in self.edges],
            "instantiated": sorted(self.instantiated),
        }

    def render(self) -> str:
        lines = [f"call graph: {len(self.nodes)} nodes, "
                 f"{len(self.edges)} edges, "
                 f"instantiated={{{', '.join(sorted(self.instantiated))}}}"]
        for name in sorted(self.nodes):
            node = self.nodes[name]
            mark = "" if node.reachable else "  [unreachable]"
            lines.append(f"  {name}{mark}")
            for edge in sorted(self._out.get(name, ()),
                               key=lambda e: (e.kind, e.callee)):
                lines.append(f"    -[{edge.kind}]-> {edge.callee}")
        return "\n".join(lines)


def _subclass_cone(program: Program) -> dict[str, set[str]]:
    """``cone[T]`` = classes that are subtypes of ``T`` (incl. ``T``)."""
    cone: dict[str, set[str]] = {OBJECT: set(program.classes)}
    for name in program.classes:
        cone.setdefault(name, set()).add(name)
        current = program.classes[name].superclass
        while current in program.classes:
            cone.setdefault(current, set()).add(name)
            current = program.classes[current].superclass
    return cone


def build_call_graph(program: Program,
                     sites: dict[str, NodeSites] | None = None) -> CallGraph:
    """RTA fixpoint over receiver types seeded by the typechecker."""
    sites = collect_sites(program) if sites is None else sites
    cone = _subclass_cone(program)

    nodes: dict[str, CallGraphNode] = {}
    for name, record in sites.items():
        if name == MAIN:
            kind = "main"
        elif ".spawn[" in name:
            kind = "spawn"
        else:
            kind = "method"
        nodes[name] = CallGraphNode(name=name, kind=kind,
                                    class_name=record.owner_class)
    for class_name in program.classes:
        nodes[init_node_name(class_name)] = CallGraphNode(
            name=init_node_name(class_name), kind="constructor",
            class_name=class_name)

    edges: set[CallEdge] = set()

    def resolve(site_type: str, method: str,
                instantiated: set[str]) -> set[str]:
        candidates = cone.get(site_type, set()) & instantiated
        if not candidates and site_type in program.classes:
            candidates = {site_type}
        targets = set()
        for candidate in candidates:
            try:
                _, owner = program.mbody(method, candidate)
            except KeyError:
                continue  # tolerant-typing fallback hit a non-method
            targets.add(f"{owner}.{method}")
        return targets

    def process(name: str, instantiated: set[str]) -> set[str]:
        """Edges out of ``name`` under the current instantiated set."""
        record = sites[name]
        out: set[CallEdge] = set()
        targets: set[str] = set()
        for class_name in record.news:
            if class_name in program.classes:
                out.add(CallEdge(name, init_node_name(class_name), "new"))
        for child in record.spawns:
            out.add(CallEdge(name, child, "spawn"))
            targets.add(child)
        for call in record.calls:
            for target in resolve(call.receiver_type, call.method,
                                  instantiated):
                if target in nodes:
                    out.add(CallEdge(name, target, "call"))
                    targets.add(target)
        edges.update(out)
        return targets

    # Monotone fixpoint: reachable set and instantiated set only grow,
    # and growing `instantiated` can add dispatch targets, so reachable
    # nodes are re-processed until both sets are stable.
    reachable: set[str] = {MAIN}
    instantiated: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in sorted(reachable):
            for class_name in sites[name].news:
                if class_name in program.classes \
                        and class_name not in instantiated:
                    instantiated.add(class_name)
                    changed = True
            for target in process(name, instantiated):
                if target in sites and target not in reachable:
                    reachable.add(target)
                    changed = True

    for name in reachable:
        nodes[name].reachable = True
    for edge in edges:
        if edge.kind == "new" and edge.caller in reachable:
            nodes[edge.callee].reachable = True

    # Unreachable bodies still get edges, against the final set.
    for name in sorted(sites):
        if name not in reachable:
            process(name, instantiated)

    ordered = tuple(sorted(edges,
                           key=lambda e: (e.caller, e.kind, e.callee)))
    return CallGraph(nodes=nodes, edges=ordered,
                     instantiated=frozenset(instantiated), sites=sites)
