"""Per-method control-flow graphs over :mod:`repro.lang` ASTs.

A :class:`CFG` is built for one executable body (``<main>``, a method
body, or a spawned thread body).  Basic blocks hold *statement* terms:
``If``/``While`` act as block terminators (the ``If`` lives in its
condition block, the ``While`` in its loop header), ``Return`` edges to
the synthetic exit block, and statement-position ``Block``/``Seq``
wrappers are transparent.  ``Spawn`` statements stay in the enclosing
block; each spawn *body* gets its own CFG named
``<parent>.spawn[<k>]`` (pre-order index within the parent body), so
every statement term of a program is owned by exactly one basic block of
exactly one CFG — the invariant the property suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import (Block, FieldAssign, FieldRead, If, Lit,
                            LocalAssign, MethodCall, New, Program, Return,
                            Seq, Spawn, Term, This, Var, VarDecl, While)

#: Node name of the main thread's body (matches ``TraceBuilder.ROOT_METHOD``).
MAIN = "<main>"


def spawn_node_name(parent: str, index: int) -> str:
    """Name of the ``index``-th spawn body inside node ``parent``."""
    return f"{parent}.spawn[{index}]"


# -- term traversal ---------------------------------------------------------

def child_terms(term: Term) -> tuple[Term, ...]:
    """Direct sub-terms of ``term`` in evaluation order."""
    if isinstance(term, (Lit, Var, This)):
        return ()
    if isinstance(term, FieldRead):
        return (term.obj,)
    if isinstance(term, FieldAssign):
        return (term.obj, term.value)
    if isinstance(term, MethodCall):
        return (term.obj, *term.args)
    if isinstance(term, New):
        return tuple(term.args)
    if isinstance(term, Spawn):
        return (term.body,)
    if isinstance(term, (Seq, Block)):
        return tuple(term.terms)
    if isinstance(term, (VarDecl, LocalAssign, Return)):
        return (term.value,)
    if isinstance(term, If):
        children = [term.condition, term.then_block]
        if term.else_block is not None:
            children.append(term.else_block)
        return tuple(children)
    if isinstance(term, While):
        return (term.condition, term.body)
    raise TypeError(f"unknown term {type(term).__name__}")


def iter_terms(term: Term, *, into_spawns: bool = False):
    """Pre-order walk of ``term`` and its sub-terms.

    Spawn *bodies* are skipped unless ``into_spawns`` — they belong to
    the spawned thread's own CFG.
    """
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Spawn) and not into_spawns:
            continue
        stack.extend(reversed(child_terms(current)))


def iter_spawns(body: Block) -> list[Spawn]:
    """``Spawn`` terms of one body in pre-order (nested spawns excluded —
    they index relative to their enclosing spawn node)."""
    spawns = []
    for term in body.terms:
        spawns.extend(t for t in iter_terms(term) if isinstance(t, Spawn))
    return spawns


def statement_terms(body: Block) -> list[Term]:
    """The statement terms a CFG over ``body`` owns, in evaluation order.

    Statement-position ``Block``/``Seq`` wrappers are transparent;
    ``If``/``While`` contribute themselves plus their branch statements;
    spawn bodies are *not* entered.
    """
    out: list[Term] = []

    def walk(terms) -> None:
        for term in terms:
            if isinstance(term, (Block, Seq)):
                walk(term.terms)
            elif isinstance(term, If):
                out.append(term)
                walk(term.then_block.terms)
                if term.else_block is not None:
                    walk(term.else_block.terms)
            elif isinstance(term, While):
                out.append(term)
                walk(term.body.terms)
            else:
                out.append(term)

    walk(body.terms)
    return out


# -- graphs -----------------------------------------------------------------

@dataclass(slots=True)
class BasicBlock:
    """A maximal straight-line run of statement terms."""

    bid: int
    kind: str = "body"  # entry | exit | body | loop | join | dead
    stmts: list[Term] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)


@dataclass(slots=True)
class CFG:
    """Control-flow graph of one executable body."""

    name: str
    blocks: dict[int, BasicBlock]
    entry: int
    exit: int

    def block_ids(self) -> list[int]:
        return sorted(self.blocks)

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.succs:
                preds[succ].append(block.bid)
        return preds

    def reachable(self) -> set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def dominators(self) -> dict[int, set[int]]:
        """Iterative dominator sets over the reachable subgraph."""
        reachable = self.reachable()
        preds = self.predecessors()
        doms = {bid: set(reachable) for bid in reachable}
        doms[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for bid in sorted(reachable):
                if bid == self.entry:
                    continue
                pred_doms = [doms[p] for p in preds[bid] if p in reachable]
                new = set.intersection(*pred_doms) if pred_doms else set()
                new.add(bid)
                if new != doms[bid]:
                    doms[bid] = new
                    changed = True
        return doms

    def back_edges(self) -> list[tuple[int, int]]:
        """Edges ``u -> v`` where ``v`` dominates ``u`` (loop back edges)."""
        doms = self.dominators()
        return [(block.bid, succ)
                for block in self.blocks.values() if block.bid in doms
                for succ in block.succs
                if succ in doms.get(block.bid, ())]

    def owned_terms(self) -> list[Term]:
        """All statement terms the graph owns (each in exactly one block)."""
        return [t for bid in self.block_ids()
                for t in self.blocks[bid].stmts]

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "entry": self.entry,
            "exit": self.exit,
            "blocks": [
                {"id": bid, "kind": block.kind,
                 "stmts": [term_summary(t) for t in block.stmts],
                 "succs": list(block.succs)}
                for bid, block in sorted(self.blocks.items())],
        }

    def render(self) -> str:
        lines = [f"cfg {self.name}  entry=B{self.entry} exit=B{self.exit}"]
        for bid in self.block_ids():
            block = self.blocks[bid]
            succs = ", ".join(f"B{s}" for s in block.succs) or "-"
            lines.append(f"  B{bid}[{block.kind}] -> {succs}")
            for stmt in block.stmts:
                lines.append(f"    {term_summary(stmt)}")
        return "\n".join(lines)


class _Builder:
    def __init__(self, name: str):
        self.name = name
        self.blocks: dict[int, BasicBlock] = {}
        self._next = 0

    def new_block(self, kind: str = "body") -> int:
        bid = self._next
        self._next += 1
        self.blocks[bid] = BasicBlock(bid=bid, kind=kind)
        return bid

    def edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.append(dst)

    def build(self, body: Block) -> CFG:
        entry = self.new_block("entry")
        exit_ = self.new_block("exit")
        self._exit = exit_
        last = self.lower(body.terms, entry)
        if last is not None:
            self.edge(last, exit_)
        return CFG(name=self.name, blocks=self.blocks,
                   entry=entry, exit=exit_)

    def lower(self, terms, current: int | None) -> int | None:
        """Append ``terms`` to the flow starting at block ``current``.

        Returns the open block at the end, or ``None`` when every path
        returned (statements after a ``Return`` land in a ``dead``
        block so they still appear in exactly one block).
        """
        for term in terms:
            if current is None:
                current = self.new_block("dead")
            if isinstance(term, (Block, Seq)):
                current = self.lower(term.terms, current)
            elif isinstance(term, If):
                current = self.lower_if(term, current)
            elif isinstance(term, While):
                current = self.lower_while(term, current)
            elif isinstance(term, Return):
                self.blocks[current].stmts.append(term)
                self.edge(current, self._exit)
                current = None
            else:
                self.blocks[current].stmts.append(term)
        return current

    def lower_if(self, term: If, current: int) -> int | None:
        self.blocks[current].stmts.append(term)
        then_block = self.new_block()
        self.edge(current, then_block)
        then_end = self.lower(term.then_block.terms, then_block)
        if term.else_block is None:
            else_end: int | None = current  # fall through the condition
        else:
            else_block = self.new_block()
            self.edge(current, else_block)
            else_end = self.lower(term.else_block.terms, else_block)
        ends = [end for end in (then_end, else_end) if end is not None]
        if not ends:
            return None
        join = self.new_block("join")
        for end in ends:
            self.edge(end, join)
        return join

    def lower_while(self, term: While, current: int) -> int:
        header = self.new_block("loop")
        self.edge(current, header)
        self.blocks[header].stmts.append(term)
        body_block = self.new_block()
        self.edge(header, body_block)
        body_end = self.lower(term.body.terms, body_block)
        if body_end is not None:
            self.edge(body_end, header)  # back edge
        after = self.new_block()
        self.edge(header, after)
        return after


def build_cfg(body: Block, name: str) -> CFG:
    """Build the CFG of one executable body."""
    return _Builder(name).build(body)


def build_program_cfgs(program: Program) -> dict[str, CFG]:
    """CFGs for ``<main>``, every declared method, and every spawn body
    (recursively), keyed by node name."""
    cfgs: dict[str, CFG] = {}

    def add(name: str, body: Block) -> None:
        cfgs[name] = build_cfg(body, name)
        for index, spawn in enumerate(iter_spawns(body)):
            add(spawn_node_name(name, index), spawn.body)

    add(MAIN, program.main)
    for class_name in sorted(program.classes):
        for method in program.classes[class_name].methods:
            add(f"{class_name}.{method.name}", method.body)
    return cfgs


# -- rendering --------------------------------------------------------------

def term_summary(term: Term, limit: int = 60) -> str:
    """Short source-ish rendering of a term for CLI / JSON output."""
    text = _fmt(term)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def _fmt(term: Term) -> str:
    if isinstance(term, Lit):
        return repr(term.value) if isinstance(term.value, str) \
            else str(term.value).lower() if isinstance(term.value, bool) \
            else "null" if term.value is None else str(term.value)
    if isinstance(term, Var):
        return term.name
    if isinstance(term, This):
        return "this"
    if isinstance(term, FieldRead):
        return f"{_fmt(term.obj)}.{term.field}"
    if isinstance(term, FieldAssign):
        return f"{_fmt(term.obj)}.{term.field} = {_fmt(term.value)}"
    if isinstance(term, MethodCall):
        args = ", ".join(_fmt(a) for a in term.args)
        return f"{_fmt(term.obj)}.{term.method}({args})"
    if isinstance(term, New):
        args = ", ".join(_fmt(a) for a in term.args)
        return f"new {term.class_name}({args})"
    if isinstance(term, Spawn):
        return f"thread {{ {len(term.body.terms)} stmts }}"
    if isinstance(term, (Seq, Block)):
        return "; ".join(_fmt(t) for t in term.terms)
    if isinstance(term, VarDecl):
        return f"var {term.name} = {_fmt(term.value)}"
    if isinstance(term, LocalAssign):
        return f"{term.name} = {_fmt(term.value)}"
    if isinstance(term, If):
        suffix = " else {...}" if term.else_block is not None else ""
        return f"if ({_fmt(term.condition)}) {{...}}{suffix}"
    if isinstance(term, While):
        return f"while ({_fmt(term.condition)}) {{...}}"
    if isinstance(term, Return):
        return f"return {_fmt(term.value)}"
    return type(term).__name__
