"""``repro static ...`` — the static-analysis subcommands.

Program sources are either paths to ``repro.lang`` source files or
bundled scenario references ``<scenario>@<old|new>`` (e.g.
``minidb@old``); ``repro static impact`` additionally accepts
``--scenario NAME`` to analyse a bundled old/new pair directly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.lang.ast import Program
from repro.lang.parser import parse_program
from repro.static.callgraph import build_call_graph
from repro.static.cfg import build_program_cfgs
from repro.static.effects import direct_effects, transitive_effects
from repro.static.impact import DEFAULT_THRESHOLD, predict_impact
from repro.static.races import (find_races, new_findings, race_report,
                                render_report)
from repro.static.scenarios import SCENARIOS, all_programs, get_scenario
from repro.static.validate import cross_validate

#: Default baseline suppressions file for the race lint.
DEFAULT_BASELINE = Path("results") / "static_races.json"


def load_program(source: str) -> tuple[str, Program]:
    """Resolve a CLI source: ``<scenario>@<version>`` or a file path."""
    if "@" in source and not Path(source).exists():
        name, _, version = source.partition("@")
        if name in SCENARIOS and version in ("old", "new"):
            scenario = get_scenario(name)
            program = scenario.old_program() if version == "old" \
                else scenario.new_program()
            return source, program
    path = Path(source)
    if not path.exists():
        raise SystemExit(f"error: no such source: {source} (expected a "
                         f"file or <scenario>@<old|new>)")
    return path.name, parse_program(path.read_text())


def _emit(args, payload: dict, text: str) -> None:
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text)


def cmd_static_cfg(args) -> int:
    label, program = load_program(args.source)
    cfgs = build_program_cfgs(program)
    if args.node is not None:
        if args.node not in cfgs:
            known = ", ".join(sorted(cfgs))
            print(f"error: no node {args.node!r} (known: {known})",
                  file=sys.stderr)
            return 2
        cfgs = {args.node: cfgs[args.node]}
    payload = {"program": label,
               "cfgs": [cfgs[name].to_json() for name in sorted(cfgs)]}
    _emit(args, payload,
          "\n".join(cfgs[name].render() for name in sorted(cfgs)))
    return 0


def cmd_static_callgraph(args) -> int:
    label, program = load_program(args.source)
    graph = build_call_graph(program)
    payload = {"program": label, **graph.to_json()}
    _emit(args, payload, graph.render())
    return 0


def cmd_static_effects(args) -> int:
    label, program = load_program(args.source)
    graph = build_call_graph(program)
    effects = transitive_effects(program, graph) if args.transitive \
        else direct_effects(program, graph)
    payload = {"program": label,
               "transitive": bool(args.transitive),
               "effects": [effects[name].to_json()
                           for name in sorted(effects)]}
    lines = []
    for name in sorted(effects):
        summary = effects[name]
        reads = ", ".join(sorted(f"{c}.{f}"
                                 for c, f in summary.fields_read)) or "-"
        writes = ", ".join(sorted(
            f"{c}.{f}" for c, f in summary.fields_written)) or "-"
        lines.append(f"{name}\n    reads:  {reads}\n    writes: {writes}")
    _emit(args, payload, "\n".join(lines))
    return 0


def cmd_static_races(args) -> int:
    if args.sources:
        programs = dict(load_program(source) for source in args.sources)
    else:
        programs = all_programs()
    report = race_report(programs)
    total = sum(len(findings) for findings in report.values())

    fresh: list[tuple[str, dict]] = []
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        baseline = json.loads(baseline_path.read_text()) \
            if baseline_path.exists() else {}
        fresh = new_findings(report, baseline)

    if args.write_baseline is not None:
        out = Path(args.write_baseline)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_report(report))

    payload = {"programs": report, "total": total,
               "new": [{"program": label, **finding}
                       for label, finding in fresh]}
    lines = [f"race lint: {total} finding(s) across "
             f"{len(report)} program(s)"]
    for label in sorted(report):
        for finding in report[label]:
            lines.append(f"  {label}: {finding['field']} "
                         f"writers={finding['writers']} "
                         f"readers={finding['readers']}")
    if args.baseline is not None:
        lines.append(f"  new vs baseline: {len(fresh)}")
        for label, finding in fresh:
            lines.append(f"    NEW {label}: {finding['field']}")
    _emit(args, payload, "\n".join(lines))
    return 1 if fresh else 0


def cmd_static_impact(args) -> int:
    if args.scenario is not None:
        scenario = get_scenario(args.scenario)
        label = args.scenario
        old, new = scenario.old_program(), scenario.new_program()
    else:
        if args.old is None or args.new is None:
            print("error: impact needs OLD NEW sources or --scenario",
                  file=sys.stderr)
            return 2
        old_label, old = load_program(args.old)
        new_label, new = load_program(args.new)
        label = f"{old_label} -> {new_label}"

    prediction = predict_impact(old, new, threshold=args.threshold)
    payload = {"program": label, **prediction.to_json()}
    lines = [f"impact {label}: {len(prediction.changes)} seed "
             f"change(s), {len(prediction.predicted())} predicted node(s)"]
    for change in prediction.changes:
        lines.append(f"  seed: {change.name} [{change.kind}]")
    for name, score in prediction.ranked():
        lines.append(f"  {score:5.2f}  {name}")

    if args.validate:
        validation = cross_validate(label, old, new,
                                    threshold=args.threshold)
        payload["validation"] = validation.to_json()
        lines.append(validation.render())
        if validation.false_negatives:
            lines.append("  missed: "
                         + ", ".join(validation.false_negatives))
    _emit(args, payload, "\n".join(lines))
    return 0


def register(commands) -> None:
    """Attach the ``static`` subcommand tree to the main CLI."""
    static = commands.add_parser(
        "static", help="static analysis over repro.lang programs "
                       "(CFG, call graph, effects, races, impact)")
    subs = static.add_subparsers(dest="static_command", required=True)

    cfg = subs.add_parser("cfg", help="per-body control-flow graphs")
    cfg.add_argument("source", help="lang source file or "
                                    "<scenario>@<old|new>")
    cfg.add_argument("--node", help="only this node (e.g. <main>, C.m)")
    cfg.add_argument("--json", action="store_true")
    cfg.set_defaults(func=cmd_static_cfg)

    graph = subs.add_parser("callgraph",
                            help="interprocedural call graph (RTA)")
    graph.add_argument("source")
    graph.add_argument("--json", action="store_true")
    graph.set_defaults(func=cmd_static_callgraph)

    effects = subs.add_parser("effects",
                              help="field/local read-write summaries")
    effects.add_argument("source")
    effects.add_argument("--transitive", action="store_true",
                         help="close over call/new edges")
    effects.add_argument("--json", action="store_true")
    effects.set_defaults(func=cmd_static_effects)

    races = subs.add_parser(
        "races", help="shared-state race lint over thread roots")
    races.add_argument("sources", nargs="*",
                       help="sources to lint (default: all bundled "
                            "scenario programs)")
    races.add_argument("--baseline", nargs="?", const=str(DEFAULT_BASELINE),
                       default=None,
                       help="suppressions file; exit 1 on findings not "
                            "in it (default path: results/"
                            "static_races.json)")
    races.add_argument("--write-baseline", metavar="PATH",
                       help="write the canonical report to PATH")
    races.add_argument("--json", action="store_true")
    races.set_defaults(func=cmd_static_races)

    impact = subs.add_parser(
        "impact", help="static change-impact prediction old -> new")
    impact.add_argument("old", nargs="?",
                        help="old version source (or use --scenario)")
    impact.add_argument("new", nargs="?", help="new version source")
    impact.add_argument("--scenario", choices=sorted(SCENARIOS),
                        help="bundled old/new pair")
    impact.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD)
    impact.add_argument("--validate", action="store_true",
                        help="cross-validate against the dynamic "
                             "ImpactReport (interprets both versions)")
    impact.add_argument("--json", action="store_true")
    impact.set_defaults(func=cmd_static_impact)
