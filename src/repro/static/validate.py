"""Cross-validation of static impact prediction against dynamic reality.

For a bundled :class:`LangScenario` the dynamic ground truth is computed
by interpreting both program versions (deterministic FIFO scheduler),
diffing the traces with the views engine, and reading the dynamic
:class:`ImpactReport`; the static side is :func:`predict_impact` over
the two ASTs.  Both sides are normalised to the method names trace
entries carry (spawn bodies and ``<main>`` fold to the root method,
constructor pseudo-nodes drop out, built-in primitive methods are
excluded), then precision/recall fall out of the set comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.impact import impact_of
from repro.core import view_diff
from repro.lang.ast import Program
from repro.lang.interp import run_program
from repro.static.cfg import MAIN
from repro.static.impact import (DEFAULT_THRESHOLD, PredictedImpact,
                                 dynamic_method_name, method_nodes,
                                 predict_impact)
from repro.static.scenarios import LangScenario, get_scenario


@dataclass(slots=True)
class StaticValidation:
    """One scenario's prediction vs. the interpreted ground truth."""

    scenario: str
    predicted: tuple[str, ...]
    dynamic: tuple[str, ...]
    true_positives: tuple[str, ...]
    false_positives: tuple[str, ...]
    false_negatives: tuple[str, ...]
    precision: float
    recall: float
    static_seconds: float
    dynamic_seconds: float
    prediction: PredictedImpact | None = None

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "predicted": list(self.predicted),
            "dynamic": list(self.dynamic),
            "true_positives": list(self.true_positives),
            "false_positives": list(self.false_positives),
            "false_negatives": list(self.false_negatives),
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "static_seconds": round(self.static_seconds, 6),
            "dynamic_seconds": round(self.dynamic_seconds, 6),
        }

    def render(self) -> str:
        return (f"{self.scenario}: precision={self.precision:.2f} "
                f"recall={self.recall:.2f} "
                f"predicted={len(self.predicted)} "
                f"dynamic={len(self.dynamic)} "
                f"static={self.static_seconds * 1e3:.1f}ms "
                f"dynamic={self.dynamic_seconds * 1e3:.1f}ms")


def user_method_names(old: Program, new: Program) -> set[str]:
    """Trace-method names defined by either program version."""
    names = {MAIN}
    names.update(method_nodes(old))
    names.update(method_nodes(new))
    return names


def dynamic_impacted_methods(old: Program, new: Program, *,
                             max_steps: int = 200_000) -> set[str]:
    """Methods the dynamic ImpactReport flags, interpreted end to end
    (restricted to user-defined methods plus the root)."""
    left = run_program(old, name="old", max_steps=max_steps)
    right = run_program(new, name="new", max_steps=max_steps)
    report = impact_of(view_diff(left, right))
    return set(report.methods) & user_method_names(old, new)


def cross_validate(name: str, old: Program, new: Program, *,
                   threshold: float = DEFAULT_THRESHOLD,
                   max_steps: int = 200_000) -> StaticValidation:
    """Predict impact statically, measure it dynamically, compare."""
    started = time.perf_counter()
    prediction = predict_impact(old, new, threshold=threshold)
    static_names = set()
    for node in prediction.predicted():
        dynamic = dynamic_method_name(node)
        if dynamic is not None:
            static_names.add(dynamic)
    static_names &= user_method_names(old, new)
    static_seconds = time.perf_counter() - started

    started = time.perf_counter()
    dynamic_names = dynamic_impacted_methods(old, new,
                                             max_steps=max_steps)
    dynamic_seconds = time.perf_counter() - started

    tp = static_names & dynamic_names
    fp = static_names - dynamic_names
    fn = dynamic_names - static_names
    precision = len(tp) / len(static_names) if static_names else 1.0
    recall = len(tp) / len(dynamic_names) if dynamic_names else 1.0
    return StaticValidation(
        scenario=name,
        predicted=tuple(sorted(static_names)),
        dynamic=tuple(sorted(dynamic_names)),
        true_positives=tuple(sorted(tp)),
        false_positives=tuple(sorted(fp)),
        false_negatives=tuple(sorted(fn)),
        precision=precision, recall=recall,
        static_seconds=static_seconds,
        dynamic_seconds=dynamic_seconds,
        prediction=prediction)


def validate_scenario(name: str, *,
                      threshold: float = DEFAULT_THRESHOLD
                      ) -> StaticValidation:
    """Cross-validate one bundled scenario by name."""
    scenario: LangScenario = get_scenario(name)
    return cross_validate(name, scenario.old_program(),
                          scenario.new_program(), threshold=threshold)
