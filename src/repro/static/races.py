"""Shared-state race lint.

Thread roots are ``<main>`` plus every spawn node.  Under the language's
semantics a spawned thread is live concurrently with its spawner's
continuation and with every other thread, so all distinct roots are
treated as concurrently live (conservative, like the trace views'
treatment of Derby-style ambiguity).  A finding is a field reached from
two or more roots (closing each root's effects over ``call`` edges;
spawn edges start a *different* root, and constructor initialisation
writes are ordered before any publication, so ``new`` edges don't
contribute writes) where at least one access is a write.

Findings are emitted in a canonical order with canonical JSON so two
runs over the same program are byte-identical — CI diffs them against a
committed baseline (``results/static_races.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.lang.ast import Program
from repro.static.callgraph import CallGraph, build_call_graph
from repro.static.cfg import MAIN
from repro.static.effects import EffectSummary, direct_effects


@dataclass(frozen=True, slots=True)
class RaceFinding:
    class_name: str
    field: str
    writers: tuple[str, ...]  # roots with a write access
    readers: tuple[str, ...]  # roots with read-only access

    @property
    def key(self) -> str:
        return f"{self.class_name}.{self.field}"

    def to_json(self) -> dict:
        return {"field": self.key, "writers": list(self.writers),
                "readers": list(self.readers)}


def thread_roots(graph: CallGraph) -> list[str]:
    roots = [MAIN] if MAIN in graph.nodes else []
    roots.extend(graph.spawn_nodes())
    return roots


def _root_effects(root: str, graph: CallGraph,
                  direct: dict[str, EffectSummary]) -> tuple[set, set]:
    """(reads, writes) reachable from ``root`` over ``call`` edges."""
    reads: set = set()
    writes: set = set()
    seen = {root}
    stack = [root]
    while stack:
        name = stack.pop()
        summary = direct.get(name)
        if summary is not None:
            reads |= summary.fields_read
            writes |= summary.fields_written
        for callee in graph.callees_of(name, kinds=("call",)):
            if callee not in seen:
                seen.add(callee)
                stack.append(callee)
    return reads, writes


def find_races(program: Program,
               graph: CallGraph | None = None) -> list[RaceFinding]:
    """Deterministically-ordered race findings for one program."""
    graph = build_call_graph(program) if graph is None else graph
    direct = direct_effects(program, graph)
    per_root = {root: _root_effects(root, graph, direct)
                for root in thread_roots(graph)}
    accesses: dict[tuple[str, str], tuple[set[str], set[str]]] = {}
    for root, (reads, writes) in per_root.items():
        for key in writes:
            accesses.setdefault(key, (set(), set()))[0].add(root)
        for key in reads - writes:
            accesses.setdefault(key, (set(), set()))[1].add(root)
    findings = []
    for (class_name, field_name), (writers, readers) in accesses.items():
        if not writers or len(writers | readers) < 2:
            continue
        findings.append(RaceFinding(
            class_name=class_name, field=field_name,
            writers=tuple(sorted(writers)),
            readers=tuple(sorted(readers))))
    findings.sort(key=lambda f: (f.class_name, f.field))
    return findings


def race_report(programs: dict[str, Program]) -> dict:
    """Canonical multi-program report, keyed by program label."""
    return {label: [f.to_json() for f in find_races(program)]
            for label, program in sorted(programs.items())}


def render_report(report: dict) -> str:
    """Canonical (byte-stable) JSON text of a report."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def new_findings(report: dict, baseline: dict) -> list[tuple[str, dict]]:
    """Findings in ``report`` absent from ``baseline`` (the CI gate)."""
    out = []
    for label, findings in sorted(report.items()):
        known = {json.dumps(f, sort_keys=True)
                 for f in baseline.get(label, [])}
        for finding in findings:
            if json.dumps(finding, sort_keys=True) not in known:
                out.append((label, finding))
    return out
