"""Bundled ``repro.lang`` regression scenarios.

Five old/new program pairs mirroring the Python evaluation workloads
(minidb / minijs / minixslt / myfaces / invariants): each "new" version
carries one seeded behavioural change, so the static impact prediction
can be cross-validated against the dynamic :class:`ImpactReport` of the
interpreted traces, and the race lint has concurrent subjects (minidb
and myfaces spawn worker threads against shared state on purpose —
their findings are the committed baseline in
``results/static_races.json``).

All ten programs pass ``check_program(strict=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.lang.ast import Program
from repro.lang.parser import parse_program


@dataclass(frozen=True, slots=True)
class LangScenario:
    name: str
    description: str
    old_source: str
    new_source: str
    change: str  # human-readable summary of the seeded change

    def old_program(self) -> Program:
        return _parse(self.name, "old")

    def new_program(self) -> Program:
        return _parse(self.name, "new")

    def programs(self) -> dict[str, Program]:
        """Both versions keyed ``<name>@old`` / ``<name>@new``."""
        return {f"{self.name}@old": self.old_program(),
                f"{self.name}@new": self.new_program()}


@lru_cache(maxsize=None)
def _parse(name: str, version: str) -> Program:
    scenario = SCENARIOS[name]
    source = scenario.old_source if version == "old" \
        else scenario.new_source
    return parse_program(source)


_MINIDB_OLD = """
class Table {
  Int rows;
  Int version;
  Int insert(Int n) {
    this.rows = this.rows.add(n);
    this.version = this.version.add(1);
    return this.rows;
  }
  Int size() {
    return this.rows;
  }
}
class Db {
  Table table;
  Int insertMany(Int count) {
    var i = 0;
    while (i.lt(count)) {
      this.table.insert(1);
      i = i.add(1);
    }
    return this.table.size();
  }
  Int report() {
    return this.table.size();
  }
}
thread {
  var db = new Db(new Table(0, 0));
  spawn {
    db.insertMany(3);
  }
  var total = db.insertMany(4);
  db.report();
}
"""

_MINIDB_NEW = _MINIDB_OLD.replace(
    "this.rows = this.rows.add(n);",
    "this.rows = this.rows.add(n).add(1);")

_MINIJS_OLD = """
class Node {
  Int tag;
  Int eval() {
    return 0;
  }
}
class Num extends Node {
  Int value;
  Int eval() {
    return this.value;
  }
}
class Neg extends Node {
  Node inner;
  Int eval() {
    return this.inner.eval().neg();
  }
}
class Engine {
  Int run(Node node) {
    return node.eval();
  }
}
thread {
  var engine = new Engine();
  var a = engine.run(new Num(0, 7));
  var b = engine.run(new Neg(1, new Num(0, 5)));
  a.add(b);
}
"""

_MINIJS_NEW = _MINIJS_OLD.replace(
    "class Num extends Node {\n  Int value;\n  Int eval() {\n"
    "    return this.value;\n  }\n}",
    "class Num extends Node {\n  Int value;\n  Int eval() {\n"
    "    return this.value.add(this.tag);\n  }\n}")

_MINIXSLT_OLD = """
class Doc {
  Int size;
  Str payload;
}
class Rule {
  Int threshold;
  Bool matches(Doc doc) {
    return doc.size.ge(this.threshold);
  }
}
class Engine {
  Rule rule;
  Str apply(Doc doc) {
    if (this.rule.matches(doc)) {
      return doc.payload.concat("!");
    }
    return doc.payload;
  }
}
thread {
  var engine = new Engine(new Rule(3));
  var small = new Doc(2, "sm");
  var edge = new Doc(3, "ed");
  var big = new Doc(5, "big");
  var out1 = engine.apply(small);
  var out2 = engine.apply(edge);
  var out3 = engine.apply(big);
  out1.concat(out2).concat(out3);
}
"""

_MINIXSLT_NEW = _MINIXSLT_OLD.replace(
    "return doc.size.ge(this.threshold);",
    "return doc.size.gt(this.threshold);")

_MYFACES_OLD = """
class Component {
  Int id;
  Str render() {
    return "c".concat(this.id.toStr());
  }
}
class Form extends Component {
  Str action;
  Str render() {
    return "f:".concat(this.action);
  }
}
class Page {
  Component header;
  Form form;
  Int hits;
  Str renderAll() {
    this.hits = this.hits.add(1);
    return this.header.render().concat(this.form.render());
  }
}
thread {
  var page = new Page(new Component(1), new Form(2, "save"), 0);
  spawn {
    page.renderAll();
  }
  page.renderAll();
  page.hits;
}
"""

_MYFACES_NEW = _MYFACES_OLD.replace(
    'return "f:".concat(this.action);',
    'return "form:".concat(this.action);')

_INVARIANTS_OLD = """
class Stats {
  Int low;
  Int high;
  Int count;
  Unit observe(Int sample) {
    if (sample.lt(this.low)) {
      this.low = sample;
    }
    if (sample.gt(this.high)) {
      this.high = sample;
    }
    this.count = this.count.add(1);
    return unit;
  }
  Bool holds(Int sample) {
    return sample.ge(this.low).and_(sample.le(this.high));
  }
}
class Detector {
  Stats stats;
  Int train(Int a, Int b, Int c) {
    this.stats.observe(a);
    this.stats.observe(b);
    this.stats.observe(c);
    return this.stats.count;
  }
  Bool checkInv(Int probe) {
    return this.stats.holds(probe);
  }
}
thread {
  var detector = new Detector(new Stats(100, 0, 0));
  detector.train(5, 50, 20);
  detector.checkInv(20);
  detector.checkInv(75);
}
"""

_INVARIANTS_NEW = _INVARIANTS_OLD.replace(
    "this.count = this.count.add(1);",
    "this.count = this.count.add(2);")


SCENARIOS: dict[str, LangScenario] = {
    scenario.name: scenario for scenario in (
        LangScenario(
            name="minidb",
            description="table store with a concurrent bulk-insert "
                        "worker; shared row/version counters",
            old_source=_MINIDB_OLD, new_source=_MINIDB_NEW,
            change="Table.insert over-counts rows by one per insert"),
        LangScenario(
            name="minijs",
            description="expression interpreter with dispatch through "
                        "a Node hierarchy",
            old_source=_MINIJS_OLD, new_source=_MINIJS_NEW,
            change="Num.eval adds the node tag into the value"),
        LangScenario(
            name="minixslt",
            description="rule-matching document transform",
            old_source=_MINIXSLT_OLD, new_source=_MINIXSLT_NEW,
            change="Rule.matches boundary flips from >= to >"),
        LangScenario(
            name="myfaces",
            description="component-tree rendering with an overriding "
                        "subclass and a concurrent render worker",
            old_source=_MYFACES_OLD, new_source=_MYFACES_NEW,
            change="Form.render changes its markup prefix"),
        LangScenario(
            name="invariants",
            description="range-invariant detector over observed samples",
            old_source=_INVARIANTS_OLD, new_source=_INVARIANTS_NEW,
            change="Stats.observe double-counts observations"),
    )
}


def get_scenario(name: str) -> LangScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown lang scenario {name!r} "
                       f"(known: {known})") from None


def all_programs() -> dict[str, Program]:
    """Every bundled program keyed ``<scenario>@<version>`` — the race
    lint's subject set."""
    out: dict[str, Program] = {}
    for name in sorted(SCENARIOS):
        out.update(SCENARIOS[name].programs())
    return out
