"""Static change-impact prediction.

``diff_programs`` structurally diffs two ``Program`` ASTs into seed
:class:`MethodChange`\\ s (added/removed/modified/signature methods,
field-layout changes attributed to the implicit constructor, a changed
``<main>`` body).  ``predict_impact`` then propagates scores outward
from the seeds over the union call graph of both versions:

* *callers* of an impacted node see different return values/state;
* *callees* of an impacted node may be called differently;
* *readers of fields written* by an impacted node see different state
  (value flow through the heap — this is what lets a reader of
  ``Table.count`` be predicted when only the writer changed).

Scores combine by max; propagation stops below the threshold, so the
result is a finite ranked :class:`PredictedImpact`.  The prediction is
cross-validated against the dynamic :class:`repro.analysis.impact
.ImpactReport` (see :mod:`repro.static.validate`) and feeds
``anchored:*`` diffing as method-name hints: anchors are steered away
from predicted-impacted methods toward predicted-stable regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Program
from repro.static.callgraph import (CallGraph, build_call_graph,
                                    init_node_name)
from repro.static.cfg import MAIN
from repro.static.effects import EffectSummary, direct_effects

#: Score decay per propagation hop.
CALLER_DECAY = 0.8
CALLEE_DECAY = 0.5
EFFECT_DECAY = 0.6
#: Default prediction cutoff.
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True, slots=True)
class MethodChange:
    """One structural difference between the two versions."""

    name: str  # node name: C.m, <main>, or C.<init> for field changes
    kind: str  # added | removed | modified | signature | fields

    def to_json(self) -> dict:
        return {"name": self.name, "kind": self.kind}


@dataclass(slots=True)
class PredictedImpact:
    changes: tuple[MethodChange, ...]
    scores: dict[str, float]
    reasons: dict[str, tuple[str, ...]]
    threshold: float

    def is_empty(self) -> bool:
        return not self.changes

    def ranked(self) -> list[tuple[str, float]]:
        return sorted(self.scores.items(), key=lambda kv: (-kv[1], kv[0]))

    def predicted(self) -> set[str]:
        """Node names predicted impacted (score >= threshold)."""
        return {name for name, score in self.scores.items()
                if score >= self.threshold}

    def method_hints(self) -> tuple[str, ...]:
        """Trace-method names for anchor biasing: predicted-impacted
        nodes, translated to the names the interpreter records (spawn
        bodies and ``<main>`` both trace as the root method;
        constructor pseudo-nodes have no trace name)."""
        hints = set()
        for name in self.predicted():
            dynamic = dynamic_method_name(name)
            if dynamic is not None:
                hints.add(dynamic)
        return tuple(sorted(hints))

    def to_json(self) -> dict:
        return {
            "changes": [c.to_json() for c in self.changes],
            "ranked": [[name, round(score, 4)]
                       for name, score in self.ranked()],
            "predicted": sorted(self.predicted()),
            "reasons": {name: list(why)
                        for name, why in sorted(self.reasons.items())},
            "threshold": self.threshold,
        }


def dynamic_method_name(node: str) -> str | None:
    """Map a static node name onto the method name trace entries carry.

    Spawn bodies run with an empty call stack, so their top-level
    entries are attributed to the root method — same as ``<main>``.
    Constructor pseudo-nodes never appear as a trace method.
    """
    if node.endswith(".<init>"):
        return None
    if ".spawn[" in node:
        return MAIN
    return node


def method_nodes(program: Program) -> dict[str, object]:
    """``C.m`` -> declaration for every declared method."""
    return {f"{class_name}.{method.name}": method
            for class_name in program.classes
            for method in program.classes[class_name].methods}


def diff_programs(old: Program, new: Program) -> tuple[MethodChange, ...]:
    """Structural seed diff between two versions, in canonical order."""
    changes: list[MethodChange] = []
    old_methods = method_nodes(old)
    new_methods = method_nodes(new)
    for name in sorted(old_methods.keys() | new_methods.keys()):
        before, after = old_methods.get(name), new_methods.get(name)
        if before is None:
            changes.append(MethodChange(name, "added"))
        elif after is None:
            changes.append(MethodChange(name, "removed"))
        elif before != after:
            signature_changed = (
                before.return_type != after.return_type
                or tuple((p.type_name, p.name) for p in before.params)
                != tuple((p.type_name, p.name) for p in after.params))
            changes.append(MethodChange(
                name, "signature" if signature_changed else "modified"))
    for class_name in sorted(old.classes.keys() | new.classes.keys()):
        before_fields = old.classes[class_name].fields \
            if class_name in old.classes else None
        after_fields = new.classes[class_name].fields \
            if class_name in new.classes else None
        if before_fields != after_fields:
            changes.append(MethodChange(init_node_name(class_name),
                                        "fields"))
    if old.main != new.main:
        changes.append(MethodChange(MAIN, "modified"))
    return tuple(changes)


class _UnionGraph:
    """Caller/callee/effect adjacency over both program versions."""

    def __init__(self, old: Program, new: Program):
        self.graphs: list[tuple[CallGraph, dict[str, EffectSummary]]] = []
        for program in (old, new):
            graph = build_call_graph(program)
            self.graphs.append((graph, direct_effects(program, graph)))
        self.nodes: set[str] = set()
        self.readers: dict[tuple[str, str], set[str]] = {}
        self.writes: dict[str, set[tuple[str, str]]] = {}
        for graph, effects in self.graphs:
            self.nodes.update(graph.nodes)
            for name, summary in effects.items():
                self.writes.setdefault(name, set()).update(
                    summary.fields_written)
                for key in summary.fields_read:
                    self.readers.setdefault(key, set()).add(name)
            for node in graph.nodes.values():
                if node.kind == "constructor":
                    self.writes.setdefault(node.name, set()).update(
                        effects[node.name].fields_written)

    def callers(self, name: str) -> set[str]:
        out: set[str] = set()
        for graph, _ in self.graphs:
            out |= graph.callers_of(name)
        return out

    def callees(self, name: str) -> set[str]:
        out: set[str] = set()
        for graph, _ in self.graphs:
            out |= graph.callees_of(name, kinds=("call", "new", "spawn"))
        return out


def predict_impact(old: Program, new: Program, *,
                   threshold: float = DEFAULT_THRESHOLD) -> PredictedImpact:
    """Rank the methods whose traces the change is predicted to touch."""
    changes = diff_programs(old, new)
    union = _UnionGraph(old, new)
    scores: dict[str, float] = {}
    reasons: dict[str, list[str]] = {}
    worklist: list[str] = []

    def relax(name: str, score: float, why: str) -> None:
        if score < threshold:
            return
        if score > scores.get(name, 0.0) + 1e-9:
            scores[name] = score
            worklist.append(name)
        known = reasons.setdefault(name, [])
        if why not in known and len(known) < 8:
            known.append(why)

    for change in changes:
        relax(change.name, 1.0, f"{change.kind} in this change")

    while worklist:
        name = worklist.pop()
        score = scores[name]
        for caller in union.callers(name):
            relax(caller, score * CALLER_DECAY, f"calls {name}")
        for callee in union.callees(name):
            relax(callee, score * CALLEE_DECAY, f"called by {name}")
        for key in union.writes.get(name, ()):
            for reader in union.readers.get(key, ()):
                if reader != name:
                    relax(reader, score * EFFECT_DECAY,
                          f"reads {key[0]}.{key[1]} written by {name}")

    return PredictedImpact(
        changes=changes, scores=scores,
        reasons={name: tuple(why) for name, why in reasons.items()},
        threshold=threshold)
