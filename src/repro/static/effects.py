"""Read/write effect summaries per call-graph node.

A *direct* summary lists the fields a body reads/writes (keyed by the
declaring class), its local-variable uses, and the entry points it
spawns.  Constructor pseudo-nodes write every field of their class (the
implicit FJ constructor).  *Transitive* summaries close the field sets
over ``call`` and ``new`` edges — but not ``spawn`` edges: what a forked
thread does is attributed to that thread's own root (the race lint
depends on this split).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Program
from repro.static.callgraph import CallGraph, build_call_graph
from repro.static.sites import declaring_class

FieldKey = tuple[str, str]  # (declaring class, field name)


@dataclass(frozen=True, slots=True)
class EffectSummary:
    node: str
    fields_read: frozenset[FieldKey]
    fields_written: frozenset[FieldKey]
    locals_read: frozenset[str]
    locals_written: frozenset[str]
    spawns: tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "node": self.node,
            "fields_read": sorted(f"{c}.{f}" for c, f in self.fields_read),
            "fields_written": sorted(f"{c}.{f}"
                                     for c, f in self.fields_written),
            "locals_read": sorted(self.locals_read),
            "locals_written": sorted(self.locals_written),
            "spawns": list(self.spawns),
        }


def direct_effects(program: Program,
                   graph: CallGraph | None = None) -> dict[str, EffectSummary]:
    """One summary per call-graph node, from its own body only."""
    graph = build_call_graph(program) if graph is None else graph
    out: dict[str, EffectSummary] = {}
    for name, record in graph.sites.items():
        out[name] = EffectSummary(
            node=name,
            fields_read=frozenset(record.field_reads),
            fields_written=frozenset(record.field_writes),
            locals_read=frozenset(record.locals_read),
            locals_written=frozenset(record.locals_written),
            spawns=tuple(record.spawns))
    for node in graph.nodes.values():
        if node.kind != "constructor":
            continue
        writes = frozenset(
            (declaring_class(program, node.class_name, f.name), f.name)
            for f in program.fields_of(node.class_name))
        out[node.name] = EffectSummary(
            node=node.name, fields_read=frozenset(),
            fields_written=writes, locals_read=frozenset(),
            locals_written=frozenset(), spawns=())
    return out


def transitive_effects(program: Program,
                       graph: CallGraph | None = None,
                       direct: dict[str, EffectSummary] | None = None,
                       ) -> dict[str, EffectSummary]:
    """Field effects closed over ``call``/``new`` edges (not ``spawn``)."""
    graph = build_call_graph(program) if graph is None else graph
    direct = direct_effects(program, graph) if direct is None else direct
    reads = {name: set(s.fields_read) for name, s in direct.items()}
    writes = {name: set(s.fields_written) for name, s in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in direct:
            for callee in graph.callees_of(name, kinds=("call", "new")):
                if callee not in direct:
                    continue
                if not reads[name] >= reads[callee]:
                    reads[name] |= reads[callee]
                    changed = True
                if not writes[name] >= writes[callee]:
                    writes[name] |= writes[callee]
                    changed = True
    return {
        name: EffectSummary(
            node=name,
            fields_read=frozenset(reads[name]),
            fields_written=frozenset(writes[name]),
            locals_read=direct[name].locals_read,
            locals_written=direct[name].locals_written,
            spawns=direct[name].spawns)
        for name in direct
    }
