"""Forward dataflow over the CFG: definite assignment and scope-leak
linting for ``check_program(strict=True)``.

The interpreter's locals are *function-scoped* (an ``If``/``While`` body
runs in the enclosing environment, so declarations leak out), while the
plain typechecker models branch bodies with a throwaway copy of the
environment.  The gap admits programs the checker accepts but that crash
at runtime — a branch-local ``var x = ...`` with a type that conflicts
with an enclosing ``x`` silently retypes the enclosing local::

    thread { var x = 1; if (true) { var x = "s"; } var y = x.add(1); }

This pass closes the gap with a forward analysis over each body's CFG:

* ``must``-assigned locals (set intersection at joins) — a use or an
  assignment of a local outside the set is reported;
* ``may``-types per local (set union at joins) — a redeclaration that
  changes a local's type is reported, since at runtime the declaration
  overwrites the function-scoped slot.

Spawn bodies are analysed from a snapshot of the state at the spawn
site, matching the interpreter's copy-on-fork environments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import (Block, FieldAssign, FieldRead, If, Lit,
                            LocalAssign, MethodCall, New, Program, Return,
                            Seq, Spawn, This, Var, VarDecl, While)
from repro.lang.typecheck import OBJECT
from repro.static.cfg import MAIN, build_cfg, spawn_node_name
from repro.static.sites import _Typer


@dataclass(frozen=True, slots=True)
class StaticIssue:
    node: str
    kind: str  # use-unassigned | assign-unassigned | redeclare-conflict
    name: str
    detail: str

    def message(self) -> str:
        return f"{self.node}: {self.kind}: {self.detail}"

    def to_json(self) -> dict:
        return {"node": self.node, "kind": self.kind, "name": self.name,
                "detail": self.detail}


class _State:
    __slots__ = ("must", "types")

    def __init__(self, must=(), types=None):
        self.must: set[str] = set(must)
        self.types: dict[str, set[str]] = \
            {k: set(v) for k, v in (types or {}).items()}

    def copy(self) -> "_State":
        return _State(self.must, self.types)

    def merge(self, other: "_State") -> "_State":
        merged = _State(self.must & other.must)
        for source in (self.types, other.types):
            for name, types in source.items():
                merged.types.setdefault(name, set()).update(types)
        return merged

    def __eq__(self, other) -> bool:
        return isinstance(other, _State) and self.must == other.must \
            and self.types == other.types

    def typer_env(self) -> dict[str, str]:
        return {name: next(iter(types)) if len(types) == 1 else OBJECT
                for name, types in self.types.items()}


class _Analysis:
    def __init__(self, program: Program):
        self.program = program
        self.typer = _Typer(program)
        self.issues: list[StaticIssue] = []
        self._emitted: set[tuple[str, str, str]] = set()
        self._spawn_counts: dict[str, int] = {}

    def run(self) -> list[StaticIssue]:
        self.analyze(MAIN, self.program.main, _State(), receiver=None)
        for class_name in sorted(self.program.classes):
            decl = self.program.classes[class_name]
            for method in decl.methods:
                init = _State(
                    must=[p.name for p in method.params],
                    types={p.name: {p.type_name} for p in method.params})
                self.analyze(f"{class_name}.{method.name}", method.body,
                             init, receiver=class_name)
        self.issues.sort(key=lambda i: (i.node, i.kind, i.name, i.detail))
        return self.issues

    # -- per-body fixpoint --------------------------------------------------

    def analyze(self, name: str, body: Block, init: _State,
                receiver: str | None) -> None:
        cfg = build_cfg(body, name)
        in_states: dict[int, _State] = {cfg.entry: init}
        worklist = [cfg.entry]
        while worklist:
            bid = worklist.pop()
            out = self.transfer(cfg.blocks[bid].stmts,
                                in_states[bid].copy(), name, receiver,
                                emit=False)
            for succ in cfg.blocks[bid].succs:
                merged = out if succ not in in_states \
                    else in_states[succ].merge(out)
                if succ not in in_states or merged != in_states[succ]:
                    in_states[succ] = merged
                    worklist.append(succ)
        # Replay once at the stable states to emit issues (and descend
        # into spawn bodies with the state live at each spawn site).
        for bid in sorted(in_states):
            self.transfer(cfg.blocks[bid].stmts, in_states[bid].copy(),
                          name, receiver, emit=True)

    def transfer(self, stmts, state: _State, node: str,
                 receiver: str | None, emit: bool) -> _State:
        for stmt in stmts:
            if isinstance(stmt, (If, While)):
                self.eval_term(stmt.condition, state, node, receiver, emit)
            else:
                self.eval_term(stmt, state, node, receiver, emit)
        return state

    # -- abstract evaluation ------------------------------------------------

    def eval_term(self, term, state: _State, node: str,
                  receiver: str | None, emit: bool) -> None:
        if isinstance(term, (Lit, This)):
            return
        if isinstance(term, Var):
            if term.name not in state.must:
                self.emit(emit, node, "use-unassigned", term.name,
                          f"local {term.name} may be unassigned here")
            return
        if isinstance(term, Spawn):
            if emit:
                index = self._spawn_counts.setdefault(node, 0)
                self._spawn_counts[node] = index + 1
                self.analyze(spawn_node_name(node, index), term.body,
                             state.copy(), receiver)
            return
        if isinstance(term, FieldRead):
            self.eval_term(term.obj, state, node, receiver, emit)
            return
        if isinstance(term, FieldAssign):
            self.eval_term(term.obj, state, node, receiver, emit)
            self.eval_term(term.value, state, node, receiver, emit)
            return
        if isinstance(term, MethodCall):
            self.eval_term(term.obj, state, node, receiver, emit)
            for arg in term.args:
                self.eval_term(arg, state, node, receiver, emit)
            return
        if isinstance(term, New):
            for arg in term.args:
                self.eval_term(arg, state, node, receiver, emit)
            return
        if isinstance(term, (Seq, Block)):
            for sub in term.terms:
                self.eval_term(sub, state, node, receiver, emit)
            return
        if isinstance(term, VarDecl):
            self.eval_term(term.value, state, node, receiver, emit)
            declared = self.typer.type_of(term.value, state.typer_env(),
                                          receiver)
            existing = state.types.get(term.name, set())
            conflicts = sorted(t for t in existing
                               if t != declared and OBJECT not in
                               (t, declared))
            if conflicts:
                self.emit(emit, node, "redeclare-conflict", term.name,
                          f"redeclaration of {term.name} changes its "
                          f"type from {'/'.join(conflicts)} to "
                          f"{declared}; locals are function-scoped at "
                          f"runtime, so the enclosing {term.name} is "
                          f"overwritten")
            state.must.add(term.name)
            state.types.setdefault(term.name, set()).add(declared)
            return
        if isinstance(term, LocalAssign):
            self.eval_term(term.value, state, node, receiver, emit)
            if term.name not in state.must:
                self.emit(emit, node, "assign-unassigned", term.name,
                          f"assignment to {term.name}, which may be "
                          f"undeclared here")
            state.must.add(term.name)
            return
        if isinstance(term, Return):
            self.eval_term(term.value, state, node, receiver, emit)
            return
        if isinstance(term, (If, While)):
            # Statement-like term in expression position (AST-built):
            # approximate without branching.
            self.eval_term(term.condition, state, node, receiver, emit)
            return

    def emit(self, enabled: bool, node: str, kind: str, name: str,
             detail: str) -> None:
        if not enabled:
            return
        key = (node, kind, name)
        if key not in self._emitted:
            self._emitted.add(key)
            self.issues.append(StaticIssue(node=node, kind=kind,
                                           name=name, detail=detail))


def check_definite_assignment(program: Program) -> list[StaticIssue]:
    """All definite-assignment / scope-leak issues, in canonical order."""
    return _Analysis(program).run()
