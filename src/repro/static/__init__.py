"""Static program analysis over :mod:`repro.lang` (predict-then-verify).

Layers:

* :mod:`repro.static.cfg` — per-body control-flow graphs + dominators;
* :mod:`repro.static.callgraph` — RTA-style interprocedural call graph
  (``call``/``new``/``spawn`` edges, receiver types from the checker);
* :mod:`repro.static.effects` — field/local read-write summaries,
  direct and transitively closed;
* :mod:`repro.static.races` — shared-state race lint over thread roots;
* :mod:`repro.static.dataflow` — CFG dataflow behind
  ``check_program(strict=True)``;
* :mod:`repro.static.impact` — static change-impact prediction over two
  program versions, feeding anchor hints to ``anchored:*`` engines;
* :mod:`repro.static.validate` — cross-validation of predictions
  against the dynamic :class:`ImpactReport`;
* :mod:`repro.static.scenarios` — the bundled old/new language
  scenario pairs;
* :mod:`repro.static.cli` — the ``repro static ...`` subcommands.
"""

from repro.static.callgraph import CallEdge, CallGraph, build_call_graph
from repro.static.cfg import (CFG, MAIN, BasicBlock, build_cfg,
                              build_program_cfgs, statement_terms)
from repro.static.dataflow import StaticIssue, check_definite_assignment
from repro.static.effects import (EffectSummary, direct_effects,
                                  transitive_effects)
from repro.static.impact import (MethodChange, PredictedImpact,
                                 diff_programs, predict_impact)
from repro.static.races import RaceFinding, find_races, race_report
from repro.static.scenarios import SCENARIOS, LangScenario, get_scenario
from repro.static.validate import (StaticValidation, cross_validate,
                                   validate_scenario)

__all__ = [
    "CFG", "MAIN", "BasicBlock", "CallEdge", "CallGraph",
    "EffectSummary", "LangScenario", "MethodChange", "PredictedImpact",
    "RaceFinding", "SCENARIOS", "StaticIssue", "StaticValidation",
    "build_call_graph", "build_cfg", "build_program_cfgs",
    "check_definite_assignment", "cross_validate", "diff_programs",
    "direct_effects", "find_races", "get_scenario", "predict_impact",
    "race_report", "statement_terms", "transitive_effects",
    "validate_scenario",
]
