"""Abstract syntax for the core language (Fig. 3).

The term grammar maps onto classes as follows::

    t ::= x              Var
        | v              Lit (primitives; object values arise at runtime)
        | t.f            FieldRead
        | t.f = t        FieldAssign
        | t.m(t*)        MethodCall
        | new C(t*)      New
        | new D(d)       Lit (value-object creation of a primitive)
        | T(t*;)         Spawn
        | t; t; ...      Seq / Block

plus the conservative extensions ``VarDecl``/``LocalAssign`` (local
variables), ``If``/``While`` (control flow over Bool primitives), and
``Return``.  Class declarations follow the paper: fields, an implicit
FJ-style constructor assigning constructor arguments to fields
positionally (inherited fields first), and methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Term:
    """Base class of all terms."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Lit(Term):
    """A primitive literal ``new D(d)`` / value ``D(d)``."""

    value: object  # bool | int | float | str | None


@dataclass(frozen=True, slots=True)
class Var(Term):
    """Variable reference ``x`` (method parameter or local)."""

    name: str


@dataclass(frozen=True, slots=True)
class This(Term):
    """The receiver ``this``."""


@dataclass(frozen=True, slots=True)
class FieldRead(Term):
    """``t.f``"""

    obj: Term
    field: str


@dataclass(frozen=True, slots=True)
class FieldAssign(Term):
    """``t.f = t``"""

    obj: Term
    field: str
    value: Term


@dataclass(frozen=True, slots=True)
class MethodCall(Term):
    """``t.m(t*)``"""

    obj: Term
    method: str
    args: tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class New(Term):
    """``new C(t*)``"""

    class_name: str
    args: tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class Spawn(Term):
    """``T(t*;)`` — thread creation; the body runs on a fresh thread."""

    body: "Block"


@dataclass(frozen=True, slots=True)
class Seq(Term):
    """``t; t`` — evaluate in order, value of the last term."""

    terms: tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class VarDecl(Term):
    """``var x = t;`` — introduce a local (extension)."""

    name: str
    value: Term


@dataclass(frozen=True, slots=True)
class LocalAssign(Term):
    """``x = t`` — update a local (extension)."""

    name: str
    value: Term


@dataclass(frozen=True, slots=True)
class If(Term):
    """``if (t) { ... } else { ... }`` (extension)."""

    condition: Term
    then_block: "Block"
    else_block: "Block | None"


@dataclass(frozen=True, slots=True)
class While(Term):
    """``while (t) { ... }`` (extension)."""

    condition: Term
    body: "Block"


@dataclass(frozen=True, slots=True)
class Return(Term):
    """``return t;`` — the trailing return of a method body."""

    value: Term


@dataclass(frozen=True, slots=True)
class Block(Term):
    """A braced sequence of statements."""

    terms: tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class FieldDecl:
    """``A f;``"""

    type_name: str
    name: str


@dataclass(frozen=True, slots=True)
class MethodDecl:
    """``A m(A x*) { t*; return t; }``"""

    return_type: str
    name: str
    params: tuple[FieldDecl, ...]
    body: Block

    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)


@dataclass(frozen=True, slots=True)
class ClassDecl:
    """``class C extends C' { A f*; M* }`` with the implicit FJ
    constructor."""

    name: str
    superclass: str
    fields: tuple[FieldDecl, ...]
    methods: tuple[MethodDecl, ...]

    def method(self, name: str) -> MethodDecl | None:
        for method in self.methods:
            if method.name == name:
                return method
        return None


@dataclass(slots=True)
class Program:
    """``P ::= T(t;)`` — a class table plus the main thread's body."""

    classes: dict[str, ClassDecl] = field(default_factory=dict)
    main: Block = Block(terms=())

    def class_decl(self, name: str) -> ClassDecl | None:
        return self.classes.get(name)

    def fields_of(self, class_name: str) -> tuple[FieldDecl, ...]:
        """``fields(C)``: inherited fields first (Fig. 5)."""
        if class_name == "Object":
            return ()
        decl = self.classes.get(class_name)
        if decl is None:
            raise KeyError(f"unknown class: {class_name}")
        return self.fields_of(decl.superclass) + decl.fields

    def mbody(self, method: str, class_name: str) -> tuple[MethodDecl, str]:
        """``mbody(m, C)``: walk the superclass chain (Fig. 5).

        Returns the declaration and the class that defines it.
        """
        current = class_name
        while current != "Object":
            decl = self.classes.get(current)
            if decl is None:
                raise KeyError(f"unknown class: {current}")
            found = decl.method(method)
            if found is not None:
                return found, current
            current = decl.superclass
        raise KeyError(f"method {method} not found on {class_name}")
