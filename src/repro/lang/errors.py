"""Errors raised by the core language front end and interpreter."""

from __future__ import annotations


class LangError(Exception):
    """Base class for core-language errors."""


class ParseError(LangError):
    """Syntax error, with source position."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class RuntimeLangError(LangError):
    """Dynamic error during program evaluation (unknown method, field,
    class, bad condition type, step budget exhausted, ...)."""
