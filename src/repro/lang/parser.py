"""Recursive-descent parser for the core language's concrete syntax.

Grammar (statements end in ``;``; ``//`` comments run to end of line)::

    program    := classdecl* "thread" block
    classdecl  := "class" NAME ("extends" NAME)? "{" member* "}"
    member     := TYPE NAME ";"                          (field)
                | TYPE NAME "(" params ")" block         (method)
    block      := "{" stmt* "}"
    stmt       := "var" NAME "=" expr ";"
                | "return" expr ";"
                | "if" "(" expr ")" block ("else" block)?
                | "while" "(" expr ")" block
                | "spawn" block
                | expr ";"
    expr       := postfix ("=" expr)?                    (field/local assign)
    postfix    := primary ("." NAME ("(" args ")")?)*
    primary    := INT | FLOAT | STRING | "true" | "false" | "null" | "unit"
                | "this" | NAME | "new" NAME "(" args ")" | "(" expr ")"
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import (Block, ClassDecl, FieldAssign, FieldDecl,
                            FieldRead, If, Lit, LocalAssign, MethodCall,
                            MethodDecl, New, Program, Return, Spawn, This,
                            Var, VarDecl, While)
from repro.lang.errors import ParseError

KEYWORDS = {
    "class", "extends", "new", "this", "thread", "spawn", "var", "return",
    "if", "else", "while", "true", "false", "null", "unit",
}

PUNCT = ("(", ")", "{", "}", ";", ",", ".", "=")


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'name' | 'int' | 'float' | 'string' | 'punct' | 'kw' | 'eof'
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_col = column
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line, start_col))
            column += j - i
            i = j
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            is_float = False
            while j < n and (source[j].isdigit() or source[j] == "."):
                if source[j] == ".":
                    if is_float or j + 1 >= n or not source[j + 1].isdigit():
                        break
                    is_float = True
                j += 1
            text = source[i:j]
            tokens.append(Token("float" if is_float else "int", text, line,
                                start_col))
            column += j - i
            i = j
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            chars: list[str] = []
            while j < n and source[j] != quote:
                if source[j] == "\\" and j + 1 < n:
                    escape = source[j + 1]
                    chars.append({"n": "\n", "t": "\t"}.get(escape, escape))
                    j += 2
                    continue
                if source[j] == "\n":
                    raise ParseError("unterminated string", line, start_col)
                chars.append(source[j])
                j += 1
            if j >= n:
                raise ParseError("unterminated string", line, start_col)
            tokens.append(Token("string", "".join(chars), line, start_col))
            column += (j + 1) - i
            i = j + 1
            continue
        if ch in PUNCT:
            tokens.append(Token("punct", ch, line, start_col))
            i += 1
            column += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.at = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.at]

    def advance(self) -> Token:
        token = self.tokens[self.at]
        if token.kind != "eof":
            self.at += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {token.text!r}",
                             token.line, token.column)
        return self.advance()

    # -- grammar ------------------------------------------------------------

    def program(self) -> Program:
        classes: dict[str, ClassDecl] = {}
        while self.check("kw", "class"):
            decl = self.class_decl()
            if decl.name in classes:
                token = self.peek()
                raise ParseError(f"duplicate class {decl.name}", token.line,
                                 token.column)
            classes[decl.name] = decl
        self.expect("kw", "thread")
        main = self.block()
        self.expect("eof")
        return Program(classes=classes, main=main)

    def class_decl(self) -> ClassDecl:
        self.expect("kw", "class")
        name = self.expect("name").text
        superclass = "Object"
        if self.accept("kw", "extends"):
            superclass = self.expect("name").text
        self.expect("punct", "{")
        fields: list[FieldDecl] = []
        methods: list[MethodDecl] = []
        while not self.check("punct", "}"):
            type_name = self.expect("name").text
            member_name = self.expect("name").text
            if self.accept("punct", ";"):
                fields.append(FieldDecl(type_name=type_name,
                                        name=member_name))
                continue
            self.expect("punct", "(")
            params: list[FieldDecl] = []
            if not self.check("punct", ")"):
                while True:
                    ptype = self.expect("name").text
                    pname = self.expect("name").text
                    params.append(FieldDecl(type_name=ptype, name=pname))
                    if not self.accept("punct", ","):
                        break
            self.expect("punct", ")")
            body = self.block()
            methods.append(MethodDecl(return_type=type_name,
                                      name=member_name,
                                      params=tuple(params), body=body))
        self.expect("punct", "}")
        return ClassDecl(name=name, superclass=superclass,
                         fields=tuple(fields), methods=tuple(methods))

    def block(self) -> Block:
        self.expect("punct", "{")
        terms = []
        while not self.check("punct", "}"):
            terms.append(self.statement())
        self.expect("punct", "}")
        return Block(terms=tuple(terms))

    def statement(self):
        if self.accept("kw", "var"):
            name = self.expect("name").text
            self.expect("punct", "=")
            value = self.expression()
            self.expect("punct", ";")
            return VarDecl(name=name, value=value)
        if self.accept("kw", "return"):
            value = self.expression()
            self.expect("punct", ";")
            return Return(value=value)
        if self.accept("kw", "if"):
            self.expect("punct", "(")
            condition = self.expression()
            self.expect("punct", ")")
            then_block = self.block()
            else_block = None
            if self.accept("kw", "else"):
                else_block = self.block()
            return If(condition=condition, then_block=then_block,
                      else_block=else_block)
        if self.accept("kw", "while"):
            self.expect("punct", "(")
            condition = self.expression()
            self.expect("punct", ")")
            body = self.block()
            return While(condition=condition, body=body)
        if self.accept("kw", "spawn"):
            body = self.block()
            return Spawn(body=body)
        expr = self.expression()
        self.expect("punct", ";")
        return expr

    def expression(self):
        target = self.postfix()
        if self.accept("punct", "="):
            value = self.expression()
            if isinstance(target, FieldRead):
                return FieldAssign(obj=target.obj, field=target.field,
                                   value=value)
            if isinstance(target, Var):
                return LocalAssign(name=target.name, value=value)
            token = self.peek()
            raise ParseError("invalid assignment target", token.line,
                             token.column)
        return target

    def postfix(self):
        expr = self.primary()
        while self.accept("punct", "."):
            name = self.expect("name").text
            if self.accept("punct", "("):
                args = self.arguments()
                expr = MethodCall(obj=expr, method=name, args=args)
            else:
                expr = FieldRead(obj=expr, field=name)
        return expr

    def arguments(self) -> tuple:
        args = []
        if not self.check("punct", ")"):
            while True:
                args.append(self.expression())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        return tuple(args)

    def primary(self):
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return Lit(value=int(token.text))
        if token.kind == "float":
            self.advance()
            return Lit(value=float(token.text))
        if token.kind == "string":
            self.advance()
            return Lit(value=token.text)
        if self.accept("kw", "true"):
            return Lit(value=True)
        if self.accept("kw", "false"):
            return Lit(value=False)
        if self.accept("kw", "null"):
            return Lit(value=None)
        if self.accept("kw", "unit"):
            return Lit(value=None)
        if self.accept("kw", "this"):
            return This()
        if self.accept("kw", "new"):
            name = self.expect("name").text
            self.expect("punct", "(")
            args = self.arguments()
            return New(class_name=name, args=args)
        if token.kind == "name":
            self.advance()
            return Var(name=token.text)
        if self.accept("punct", "("):
            expr = self.expression()
            self.expect("punct", ")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line,
                         token.column)


def parse_program(source: str) -> Program:
    """Parse concrete syntax into a :class:`~repro.lang.ast.Program`."""
    return _Parser(tokenize(source)).program()
