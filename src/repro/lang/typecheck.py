"""Static semantics for the core language.

The paper's calculus is typed (types ``A ::= C | D``; Fig. 3 gives field,
parameter and return types).  This checker implements the corresponding
static semantics: a well-formed class table (known supertypes, acyclic
hierarchy, no field shadowing, override compatibility) and expression
typing with nominal subtyping for classes plus the primitive domain
``Bool | Int | Float | Str | Unit | Null``.

The interpreter runs untyped programs happily (dynamic errors become
``RuntimeLangError``); the checker is the optional static gate::

    program = parse_program(source)
    check_program(program)          # raises TypeCheckError on ill-typed
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import (Block, ClassDecl, FieldAssign, FieldRead, If,
                            Lit, LocalAssign, MethodCall, MethodDecl, New,
                            Program, Return, Seq, Spawn, Term, This, Var,
                            VarDecl, While)
from repro.lang.errors import LangError

#: Primitive type names.
PRIMITIVES = ("Bool", "Int", "Float", "Str", "Unit", "Null")
#: The root class.
OBJECT = "Object"


class TypeCheckError(LangError):
    """Ill-typed program."""


@dataclass(frozen=True, slots=True)
class BuiltinSig:
    """Signature of a primitive built-in method."""

    params: tuple[str, ...]
    result: str


def _arith(result: str) -> dict[str, BuiltinSig]:
    return {
        "add": BuiltinSig((result,), result),
        "sub": BuiltinSig((result,), result),
        "mul": BuiltinSig((result,), result),
        "div": BuiltinSig((result,), result),
        "mod": BuiltinSig((result,), result),
        "neg": BuiltinSig((), result),
        "eq": BuiltinSig((result,), "Bool"),
        "equals": BuiltinSig((result,), "Bool"),
        "ne": BuiltinSig((result,), "Bool"),
        "lt": BuiltinSig((result,), "Bool"),
        "le": BuiltinSig((result,), "Bool"),
        "gt": BuiltinSig((result,), "Bool"),
        "ge": BuiltinSig((result,), "Bool"),
        "toStr": BuiltinSig((), "Str"),
    }


#: Built-in method signatures per primitive receiver type.
BUILTIN_SIGS: dict[str, dict[str, BuiltinSig]] = {
    "Int": _arith("Int"),
    "Float": _arith("Float"),
    "Bool": {
        "and_": BuiltinSig(("Bool",), "Bool"),
        "or_": BuiltinSig(("Bool",), "Bool"),
        "not_": BuiltinSig((), "Bool"),
        "eq": BuiltinSig(("Bool",), "Bool"),
        "equals": BuiltinSig(("Bool",), "Bool"),
        "ne": BuiltinSig(("Bool",), "Bool"),
        "toStr": BuiltinSig((), "Str"),
    },
    "Str": {
        "concat": BuiltinSig(("Str",), "Str"),
        "len": BuiltinSig((), "Int"),
        "charAt": BuiltinSig(("Int",), "Str"),
        "substr": BuiltinSig(("Int", "Int"), "Str"),
        "contains": BuiltinSig(("Str",), "Bool"),
        "eq": BuiltinSig(("Str",), "Bool"),
        "equals": BuiltinSig(("Str",), "Bool"),
        "ne": BuiltinSig(("Str",), "Bool"),
        "toStr": BuiltinSig((), "Str"),
    },
}


class TypeChecker:
    """Checks one program."""

    def __init__(self, program: Program):
        self.program = program

    # -- class table well-formedness ---------------------------------------

    def check(self) -> None:
        self.check_class_table()
        for decl in self.program.classes.values():
            for method in decl.methods:
                self.check_method(decl, method)
        env = {}
        self.check_block(self.program.main, env, receiver=None,
                         expected_return=None)

    def check_class_table(self) -> None:
        classes = self.program.classes
        for name, decl in classes.items():
            if decl.superclass != OBJECT and decl.superclass not in classes:
                raise TypeCheckError(
                    f"class {name} extends unknown class "
                    f"{decl.superclass}")
            if name in PRIMITIVES or name == OBJECT:
                raise TypeCheckError(f"class name {name} is reserved")
        # acyclicity
        for name in classes:
            seen = {name}
            current = classes[name].superclass
            while current != OBJECT:
                if current in seen:
                    raise TypeCheckError(
                        f"cyclic class hierarchy through {name}")
                seen.add(current)
                current = classes[current].superclass
        # field shadowing + type validity
        for name, decl in classes.items():
            inherited = {f.name for f in self.program.fields_of(
                decl.superclass)} if decl.superclass != OBJECT else set()
            own = set()
            for field in decl.fields:
                self.require_known_type(field.type_name,
                                        f"field {name}.{field.name}")
                if field.name in own or field.name in inherited:
                    raise TypeCheckError(
                        f"field {field.name} shadowed/duplicated in "
                        f"class {name}")
                own.add(field.name)
        # override compatibility
        for name, decl in classes.items():
            for method in decl.methods:
                self.check_override(decl, method)

    def check_override(self, decl: ClassDecl, method: MethodDecl) -> None:
        current = decl.superclass
        while current != OBJECT:
            super_decl = self.program.classes[current]
            overridden = super_decl.method(method.name)
            if overridden is not None:
                same_params = tuple(p.type_name for p in method.params) \
                    == tuple(p.type_name for p in overridden.params)
                if not same_params or \
                        method.return_type != overridden.return_type:
                    raise TypeCheckError(
                        f"{decl.name}.{method.name} overrides "
                        f"{current}.{method.name} with an incompatible "
                        f"signature")
                return
            current = super_decl.superclass

    def require_known_type(self, type_name: str, where: str) -> None:
        if type_name in PRIMITIVES or type_name == OBJECT:
            return
        if type_name not in self.program.classes:
            raise TypeCheckError(f"unknown type {type_name} in {where}")

    # -- subtyping ------------------------------------------------------------

    def is_subtype(self, sub: str, sup: str) -> bool:
        if sub == sup or sup == OBJECT and sub not in PRIMITIVES:
            return True
        if sub == "Null" and (sup in self.program.classes
                              or sup == OBJECT):
            return True  # null inhabits every reference type
        if sub == "Int" and sup == "Float":
            return True  # numeric widening for convenience
        current = sub
        while current in self.program.classes:
            current = self.program.classes[current].superclass
            if current == sup:
                return True
        return False

    def require_subtype(self, sub: str, sup: str, context: str) -> None:
        if not self.is_subtype(sub, sup):
            raise TypeCheckError(f"{context}: expected {sup}, got {sub}")

    # -- method bodies ------------------------------------------------------------

    def check_method(self, decl: ClassDecl, method: MethodDecl) -> None:
        self.require_known_type(method.return_type,
                                f"{decl.name}.{method.name} return")
        env: dict[str, str] = {}
        seen = set()
        for param in method.params:
            self.require_known_type(
                param.type_name,
                f"parameter {param.name} of {decl.name}.{method.name}")
            if param.name in seen:
                raise TypeCheckError(
                    f"duplicate parameter {param.name} in "
                    f"{decl.name}.{method.name}")
            seen.add(param.name)
            env[param.name] = param.type_name
        self.check_block(method.body, env, receiver=decl.name,
                         expected_return=method.return_type)

    def check_block(self, block: Block, env: dict[str, str],
                    receiver: str | None,
                    expected_return: str | None) -> None:
        for term in block.terms:
            self.check_statement(term, env, receiver, expected_return)

    def check_statement(self, term: Term, env: dict[str, str],
                        receiver: str | None,
                        expected_return: str | None) -> None:
        if isinstance(term, VarDecl):
            env[term.name] = self.type_of(term.value, env, receiver)
        elif isinstance(term, LocalAssign):
            if term.name not in env:
                raise TypeCheckError(f"assignment to unbound local "
                                     f"{term.name}")
            value_type = self.type_of(term.value, env, receiver)
            self.require_subtype(value_type, env[term.name],
                                 f"assignment to {term.name}")
        elif isinstance(term, Return):
            value_type = self.type_of(term.value, env, receiver)
            if expected_return is not None and expected_return != "Unit":
                self.require_subtype(value_type, expected_return,
                                     "return value")
        elif isinstance(term, If):
            condition = self.type_of(term.condition, env, receiver)
            self.require_subtype(condition, "Bool", "if condition")
            self.check_block(term.then_block, dict(env), receiver,
                             expected_return)
            if term.else_block is not None:
                self.check_block(term.else_block, dict(env), receiver,
                                 expected_return)
        elif isinstance(term, While):
            condition = self.type_of(term.condition, env, receiver)
            self.require_subtype(condition, "Bool", "while condition")
            self.check_block(term.body, dict(env), receiver,
                             expected_return)
        elif isinstance(term, Spawn):
            self.check_block(term.body, dict(env), receiver, None)
        else:
            self.type_of(term, env, receiver)

    # -- expression typing ------------------------------------------------------------

    def type_of(self, term: Term, env: dict[str, str],
                receiver: str | None) -> str:
        if isinstance(term, Lit):
            value = term.value
            if value is None:
                return "Null"
            if isinstance(value, bool):
                return "Bool"
            if isinstance(value, int):
                return "Int"
            if isinstance(value, float):
                return "Float"
            return "Str"
        if isinstance(term, Var):
            if term.name not in env:
                raise TypeCheckError(f"unbound variable {term.name}")
            return env[term.name]
        if isinstance(term, This):
            if receiver is None:
                raise TypeCheckError("'this' outside a method")
            return receiver
        if isinstance(term, New):
            return self.type_of_new(term, env, receiver)
        if isinstance(term, FieldRead):
            obj_type = self.type_of(term.obj, env, receiver)
            return self.field_type(obj_type, term.field)
        if isinstance(term, FieldAssign):
            obj_type = self.type_of(term.obj, env, receiver)
            field_type = self.field_type(obj_type, term.field)
            value_type = self.type_of(term.value, env, receiver)
            self.require_subtype(value_type, field_type,
                                 f"assignment to {obj_type}.{term.field}")
            return value_type
        if isinstance(term, MethodCall):
            return self.type_of_call(term, env, receiver)
        if isinstance(term, (Seq, Block)):
            result = "Unit"
            for sub in term.terms:
                result = self.type_of(sub, env, receiver)
            return result
        raise TypeCheckError(f"untypeable term in expression position: "
                             f"{type(term).__name__}")

    def type_of_new(self, term: New, env, receiver) -> str:
        if term.class_name not in self.program.classes:
            raise TypeCheckError(f"unknown class {term.class_name}")
        fields = self.program.fields_of(term.class_name)
        if len(fields) != len(term.args):
            raise TypeCheckError(
                f"constructor {term.class_name} expects {len(fields)} "
                f"arguments, got {len(term.args)}")
        for field, arg in zip(fields, term.args):
            arg_type = self.type_of(arg, env, receiver)
            self.require_subtype(
                arg_type, field.type_name,
                f"constructor argument {field.name} of {term.class_name}")
        return term.class_name

    def field_type(self, obj_type: str, field_name: str) -> str:
        if obj_type in PRIMITIVES:
            raise TypeCheckError(
                f"field access .{field_name} on primitive {obj_type}")
        if obj_type == OBJECT:
            raise TypeCheckError(
                f"field access .{field_name} on Object")
        for field in self.program.fields_of(obj_type):
            if field.name == field_name:
                return field.type_name
        raise TypeCheckError(f"unknown field {field_name} on {obj_type}")

    def type_of_call(self, term: MethodCall, env, receiver) -> str:
        obj_type = self.type_of(term.obj, env, receiver)
        arg_types = [self.type_of(arg, env, receiver)
                     for arg in term.args]
        if obj_type in PRIMITIVES:
            sigs = BUILTIN_SIGS.get(obj_type, {})
            sig = sigs.get(term.method)
            if sig is None:
                raise TypeCheckError(
                    f"unknown built-in {obj_type}.{term.method}")
            if len(sig.params) != len(arg_types):
                raise TypeCheckError(
                    f"{obj_type}.{term.method} expects "
                    f"{len(sig.params)} arguments, got {len(arg_types)}")
            for expected, actual in zip(sig.params, arg_types):
                self.require_subtype(actual, expected,
                                     f"argument of {obj_type}."
                                     f"{term.method}")
            return sig.result
        try:
            method, _owner = self.program.mbody(term.method, obj_type)
        except KeyError as exc:
            raise TypeCheckError(str(exc)) from None
        if len(method.params) != len(arg_types):
            raise TypeCheckError(
                f"{obj_type}.{term.method} expects "
                f"{len(method.params)} arguments, got {len(arg_types)}")
        for param, actual in zip(method.params, arg_types):
            self.require_subtype(actual, param.type_name,
                                 f"argument {param.name} of "
                                 f"{obj_type}.{term.method}")
        return method.return_type


def check_program(program: Program, strict: bool = False) -> None:
    """Raise :class:`TypeCheckError` unless the program is well typed.

    With ``strict``, additionally run the CFG-based definite-assignment
    pass (:mod:`repro.static.dataflow`).  The plain checker models
    ``If``/``While``/``Spawn`` bodies with a throwaway copy of the local
    environment, but the interpreter's locals are *function-scoped*
    (block declarations leak out), so it accepts programs that crash at
    runtime — e.g. a branch-local ``var x = "s"`` silently retyping an
    enclosing ``Int x``.  Strict mode rejects those: type-changing
    redeclarations, possibly-unassigned uses, and assignments to
    possibly-undeclared locals all raise.
    """
    TypeChecker(program).check()
    if strict:
        # Imported lazily: repro.static sits above repro.lang.
        from repro.static.dataflow import check_definite_assignment

        issues = check_definite_assignment(program)
        if issues:
            raise TypeCheckError(
                "strict mode: "
                + "; ".join(issue.message() for issue in issues))
