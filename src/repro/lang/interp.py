"""Trace-emitting interpreter for the core language (Fig. 6).

Each evaluation rule that records a trace entry maps to one
``TraceBuilder`` call:

* CONS-E / CONS-VAL-E — ``record_init`` (object creation; value objects
  record an init with the primitive representation),
* FIELD-ACC-E / FIELD-ASS-E — ``record_get`` / ``record_set``,
* METH-E / RETURN-E — ``record_call`` / ``record_return``,
* FORK-E / END-E — ``record_fork`` / ``record_end``.

Threads run under a deterministic cooperative scheduler: a ``spawn``
records the fork event immediately (capturing the full spawn ancestry) and
queues the thread body; queued threads run FIFO once the spawning thread
completes.  Since the views trace abstraction analyses each thread view
independently, this sequential schedule produces the same per-thread views
as any interleaved schedule of the same program.

Object serialisations follow Fig. 8: at creation, an object's
representation is ``(C, [r1, ..., rn])`` over the constructor-argument
representations, recursively.  Primitive built-in methods (``Int.add``,
``Str.equals``, ...) record ordinary call/return events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.traces import Trace, TraceBuilder
from repro.core.values import UNIT, ValueRep, prim, truncate_repr
from repro.lang.ast import (Block, FieldAssign, FieldRead, If, Lit,
                            LocalAssign, MethodCall, New, Program, Return,
                            Seq, Spawn, Term, This, Var, VarDecl, While)
from repro.lang.errors import RuntimeLangError
from repro.lang.parser import parse_program


@dataclass(frozen=True, slots=True)
class Prim:
    """A primitive runtime value ``D(d)``."""

    value: object


@dataclass(frozen=True, slots=True)
class Ref:
    """A location ``l(C)``."""

    location: int
    class_name: str


RtValue = Prim | Ref

#: Built-in methods on primitive values.  Each maps (receiver, *args) to a
#: result; all participate in trace events like ordinary methods.
BUILTINS: dict[str, Callable] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int)
    else a / b,
    "mod": lambda a, b: a % b,
    "neg": lambda a: -a,
    "eq": lambda a, b: a == b,
    "equals": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "and_": lambda a, b: a and b,
    "or_": lambda a, b: a or b,
    "not_": lambda a: not a,
    "concat": lambda a, b: f"{a}{b}",
    "len": lambda a: len(a),
    "charAt": lambda a, i: a[i],
    "substr": lambda a, i, j: a[i:j],
    "contains": lambda a, b: b in a,
    "toStr": lambda a: str(a),
}


class _ReturnSignal(Exception):
    """Unwinds a method body at an explicit ``return``."""

    def __init__(self, value: RtValue):
        self.value = value


@dataclass(slots=True)
class _Env:
    """Lexical environment: locals plus the receiver."""

    receiver: Ref | None
    locals: dict[str, RtValue]


class Interpreter:
    """Evaluates a program, producing its execution trace."""

    def __init__(self, program: Program, name: str = "",
                 max_steps: int = 5_000_000):
        self.program = program
        self.builder = TraceBuilder(name=name)
        self.store: dict[int, dict[str, RtValue]] = {}
        self.max_steps = max_steps
        self._steps = 0
        self._thread_queue: list[tuple[int, Block, _Env]] = []

    # -- representations (E# / E'#) ----------------------------------------

    def rep(self, value: RtValue) -> ValueRep:
        if isinstance(value, Prim):
            if isinstance(value.value, type(None)):
                return UNIT
            return prim(value.value)
        return self.builder.registry.describe(value.location)

    def _serialize_new(self, class_name: str,
                       arg_reps: tuple[ValueRep, ...]) -> tuple:
        """``E'#(l(C)) = <l, C:[E'#(v1), ..., E'#(vn)]>`` (Fig. 8)."""
        return (class_name, tuple(r.key() for r in arg_reps))

    # -- driver -------------------------------------------------------------

    def run(self) -> Trace:
        main_env = _Env(receiver=None, locals={})
        main_tid = self.builder.main_tid
        self._run_block(self.program.main, main_env, main_tid)
        self.builder.record_end(main_tid)
        while self._thread_queue:
            tid, body, env = self._thread_queue.pop(0)
            self._run_block(body, env, tid)
            self.builder.record_end(tid)
        return self.builder.build(metadata={"language": "core"})

    def _run_block(self, block: Block, env: _Env, tid: int) -> RtValue:
        result: RtValue = Prim(None)
        for term in block.terms:
            result = self.eval(term, env, tid)
        return result

    # -- evaluation ---------------------------------------------------------

    def eval(self, term: Term, env: _Env, tid: int) -> RtValue:
        self._steps += 1
        if self._steps > self.max_steps:
            raise RuntimeLangError(
                f"step budget exhausted ({self.max_steps})")
        if isinstance(term, Lit):
            return Prim(term.value)
        if isinstance(term, Var):
            if term.name not in env.locals:
                raise RuntimeLangError(f"unbound variable: {term.name}")
            return env.locals[term.name]
        if isinstance(term, This):
            if env.receiver is None:
                raise RuntimeLangError("'this' outside a method")
            return env.receiver
        if isinstance(term, (Seq, Block)):
            return self._run_block(
                term if isinstance(term, Block) else Block(term.terms),
                env, tid)
        if isinstance(term, VarDecl):
            env.locals[term.name] = self.eval(term.value, env, tid)
            return Prim(None)
        if isinstance(term, LocalAssign):
            if term.name not in env.locals:
                raise RuntimeLangError(f"assignment to unbound local: "
                                       f"{term.name}")
            value = self.eval(term.value, env, tid)
            env.locals[term.name] = value
            return value
        if isinstance(term, FieldRead):
            return self._eval_field_read(term, env, tid)
        if isinstance(term, FieldAssign):
            return self._eval_field_assign(term, env, tid)
        if isinstance(term, New):
            return self._eval_new(term, env, tid)
        if isinstance(term, MethodCall):
            return self._eval_call(term, env, tid)
        if isinstance(term, Spawn):
            return self._eval_spawn(term, env, tid)
        if isinstance(term, If):
            return self._eval_if(term, env, tid)
        if isinstance(term, While):
            return self._eval_while(term, env, tid)
        if isinstance(term, Return):
            raise _ReturnSignal(self.eval(term.value, env, tid))
        raise RuntimeLangError(f"cannot evaluate term: {term!r}")

    # -- rule implementations -------------------------------------------------

    def _eval_new(self, term: New, env: _Env, tid: int) -> RtValue:
        """CONS-E."""
        decl = self.program.class_decl(term.class_name)
        if decl is None:
            raise RuntimeLangError(f"unknown class: {term.class_name}")
        fields = self.program.fields_of(term.class_name)
        if len(fields) != len(term.args):
            raise RuntimeLangError(
                f"constructor {term.class_name} expects {len(fields)} "
                f"arguments, got {len(term.args)}")
        args = [self.eval(arg, env, tid) for arg in term.args]
        arg_reps = tuple(self.rep(a) for a in args)
        location = self.builder.fresh_location()
        self.store[location] = {
            f.name: value for f, value in zip(fields, args)}
        serialization = self._serialize_new(term.class_name, arg_reps)
        rep = self.builder.record_init(tid, term.class_name, arg_reps,
                                       serialization=serialization,
                                       location=location)
        del rep  # the init entry records it; callers re-derive via rep()
        return Ref(location=location, class_name=term.class_name)

    def _eval_field_read(self, term: FieldRead, env: _Env,
                         tid: int) -> RtValue:
        """FIELD-ACC-E."""
        obj = self.eval(term.obj, env, tid)
        if not isinstance(obj, Ref):
            raise RuntimeLangError(
                f"field access {term.field!r} on non-object")
        fields = self.store[obj.location]
        if term.field not in fields:
            raise RuntimeLangError(
                f"unknown field {term.field!r} on {obj.class_name}")
        value = fields[term.field]
        self.builder.record_get(tid, self.rep(obj), term.field,
                                self.rep(value))
        return value

    def _eval_field_assign(self, term: FieldAssign, env: _Env,
                           tid: int) -> RtValue:
        """FIELD-ASS-E."""
        obj = self.eval(term.obj, env, tid)
        if not isinstance(obj, Ref):
            raise RuntimeLangError(
                f"field assignment {term.field!r} on non-object")
        value = self.eval(term.value, env, tid)
        fields = self.store[obj.location]
        if term.field not in fields:
            raise RuntimeLangError(
                f"unknown field {term.field!r} on {obj.class_name}")
        fields[term.field] = value
        self.builder.record_set(tid, self.rep(obj), term.field,
                                self.rep(value))
        return value

    def _eval_call(self, term: MethodCall, env: _Env, tid: int) -> RtValue:
        """METH-E / RETURN-E, plus primitive built-ins."""
        obj = self.eval(term.obj, env, tid)
        args = [self.eval(arg, env, tid) for arg in term.args]
        arg_reps = tuple(self.rep(a) for a in args)
        if isinstance(obj, Prim):
            return self._eval_builtin(obj, term.method, args, arg_reps, tid)
        decl, owner = self._lookup_method(term.method, obj.class_name)
        qualified = f"{owner}.{term.method}"
        if len(decl.params) != len(args):
            raise RuntimeLangError(
                f"{qualified} expects {len(decl.params)} arguments, "
                f"got {len(args)}")
        self.builder.record_call(tid, self.rep(obj), qualified, arg_reps)
        callee_env = _Env(receiver=obj,
                          locals=dict(zip(decl.param_names(), args)))
        try:
            result = self._run_block(decl.body, callee_env, tid)
        except _ReturnSignal as signal:
            result = signal.value
        self.builder.record_return(tid, self.rep(result))
        return result

    def _lookup_method(self, method: str, class_name: str):
        try:
            return self.program.mbody(method, class_name)
        except KeyError as exc:
            raise RuntimeLangError(str(exc)) from None

    def _eval_builtin(self, obj: Prim, method: str, args: list[RtValue],
                      arg_reps: tuple[ValueRep, ...], tid: int) -> RtValue:
        func = BUILTINS.get(method)
        if func is None:
            raise RuntimeLangError(
                f"unknown built-in {method!r} on primitive "
                f"{truncate_repr(repr(obj.value))}")
        unwrapped = []
        for arg in args:
            if not isinstance(arg, Prim):
                raise RuntimeLangError(
                    f"built-in {method!r} takes primitive arguments")
            unwrapped.append(arg.value)
        receiver_rep = self.rep(obj)
        qualified = f"{receiver_rep.class_name}.{method}"
        self.builder.record_call(tid, receiver_rep, qualified, arg_reps)
        try:
            result = Prim(func(obj.value, *unwrapped))
        except (TypeError, ValueError, ZeroDivisionError, IndexError) as exc:
            raise RuntimeLangError(
                f"built-in {qualified} failed: {exc}") from exc
        self.builder.record_return(tid, self.rep(result))
        return result

    def _eval_spawn(self, term: Spawn, env: _Env, tid: int) -> RtValue:
        """FORK-E: record the fork (with full ancestry) and queue the body.

        The child thread closes over the spawning environment, mirroring
        the semantics where the thread term's free variables were already
        substituted.
        """
        child_tid = self.builder.record_fork(tid)
        child_env = _Env(receiver=env.receiver, locals=dict(env.locals))
        self._thread_queue.append((child_tid, term.body, child_env))
        return Prim(None)

    def _eval_if(self, term: If, env: _Env, tid: int) -> RtValue:
        condition = self.eval(term.condition, env, tid)
        if not isinstance(condition, Prim) or not isinstance(
                condition.value, bool):
            raise RuntimeLangError("if condition must be a Bool")
        if condition.value:
            return self._run_block(term.then_block, env, tid)
        if term.else_block is not None:
            return self._run_block(term.else_block, env, tid)
        return Prim(None)

    def _eval_while(self, term: While, env: _Env, tid: int) -> RtValue:
        result: RtValue = Prim(None)
        while True:
            condition = self.eval(term.condition, env, tid)
            if not isinstance(condition, Prim) or not isinstance(
                    condition.value, bool):
                raise RuntimeLangError("while condition must be a Bool")
            if not condition.value:
                return result
            result = self._run_block(term.body, env, tid)


def run_program(program: Program, name: str = "",
                max_steps: int = 5_000_000) -> Trace:
    """Evaluate a parsed program, returning its execution trace."""
    return Interpreter(program, name=name, max_steps=max_steps).run()


def run_source(source: str, name: str = "",
               max_steps: int = 5_000_000) -> Trace:
    """Parse and evaluate concrete syntax, returning the trace."""
    return run_program(parse_program(source), name=name,
                       max_steps=max_steps)
