"""The formal core language of Sec. 2: Featherweight Java extended with
locations, field assignment, term sequences, value objects, and threads.

Program evaluation *produces traces* (Fig. 6): every object creation,
field access/assignment, method call/return, thread fork and thread end
records a trace entry, exactly as the operational semantics prescribes.

The concrete syntax adds a few conservative conveniences over the paper's
abstract grammar (local variables, ``if``/``while`` over primitive
conditions, and built-in primitive methods such as ``Int.add``); none of
these introduce new *event* kinds, so traces remain within the Fig. 4
grammar.
"""

from repro.lang.ast import (Block, ClassDecl, FieldDecl, FieldAssign,
                            FieldRead, If, Lit, LocalAssign, MethodCall,
                            MethodDecl, New, Program, Return, Seq, Spawn,
                            This, Var, VarDecl, While)
from repro.lang.errors import LangError, ParseError, RuntimeLangError
from repro.lang.interp import Interpreter, run_program, run_source
from repro.lang.parser import parse_program
from repro.lang.typecheck import TypeCheckError, check_program

__all__ = [
    "Block", "ClassDecl", "FieldAssign", "FieldDecl", "FieldRead", "If",
    "Interpreter", "LangError", "Lit", "LocalAssign", "MethodCall",
    "MethodDecl", "New", "ParseError", "Program", "Return",
    "RuntimeLangError", "Seq", "Spawn", "This", "TypeCheckError", "Var",
    "VarDecl", "While", "check_program", "parse_program", "run_program",
    "run_source",
]
