"""``repro.index`` — the persistent, queryable trace catalog.

A :class:`TraceIndex` records one line of catalog data per stored
trace (content digest, provenance fingerprint, tags, scenario, entry
and thread counts, a min-hash sketch of the trace's unique ``=e``
keys) plus an append-only log of per-diff statistics, all under
``<store>/index.d/``.  The :class:`~repro.api.store.TraceStore`
maintains it on every save/tag/delete, :class:`~repro.api.session.
Session` appends diff stats as diffs run, and the ``repro index`` /
``repro query`` CLI plus the :mod:`repro.service` endpoints answer
lookups from the index alone — no trace file is ever opened to answer
a query.
"""

from repro.index.traceindex import (DiffStat, IndexStats, SKETCH_SIZE,
                                    TraceIndex, TraceIndexRecord,
                                    sketch_overlap, trace_sketch)

__all__ = [
    "DiffStat", "IndexStats", "SKETCH_SIZE", "TraceIndex",
    "TraceIndexRecord", "sketch_overlap", "trace_sketch",
]
