"""The persistent trace catalog: every stored trace, queryable.

A store directory gains an ``index.d/`` sidecar::

    <store>/index.d/
        traces/<hh>.jsonl    # catalog ops, sharded by key digest prefix
        diffs/<hh>.jsonl     # per-diff stat rows, sharded by left digest
        traces/<hh>.jsonl.lock / ...   # advisory append locks

Catalog shards are **append-only op logs**: ``add`` publishes (or
replaces) a record, ``tags`` updates its tag set, ``del`` retires it.
Readers fold a shard's ops in file order — all ops for one key land in
one shard (the shard is a digest prefix of the *key*), so a per-shard
fold is the whole truth for its keys.  Appends serialise through the
same advisory-lock discipline as the store
(:func:`repro.api.store.locked_file`), one lock per shard, so millions
of records never contend on a single file and a writer never rewrites
more than it appends.  Folds are memoised per handle against the
shard file's ``(mtime, size)``, so a polling service re-reads only
shards that actually changed.

Per-diff stats are plain rows (no ops), sharded by the *left content
digest* prefix: ``record_diff`` appends as diffs run, and
:meth:`TraceIndex.diff_stats` filters by digest prefix / engine /
time without touching any trace file.

Similarity ("find traces similar to X") rests on a **min-hash
sketch**: the :data:`SKETCH_SIZE` smallest hashes over the trace's
*unique* ``=e`` keys — exactly the keys
:func:`repro.core.anchors.anchor_candidates` would pair at
``max_occurrence=1`` — so sketch overlap estimates how much anchor
material two traces share without loading either.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.api.store import locked_file

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.store import TraceStore
    from repro.core.traces import Trace

#: Size of the unique-key min-hash sketch carried per record.
SKETCH_SIZE = 64

#: Hex chars of the digest prefix naming a shard file (256 shards).
SHARD_WIDTH = 2

TRACES_DIR = "traces"
DIFFS_DIR = "diffs"
_SUFFIX = ".jsonl"
_LOCK_SUFFIX = ".jsonl.lock"


def _key_shard(key: str) -> str:
    """Catalog shard of a store key (digest prefix of the key)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
    return digest.hexdigest()[:SHARD_WIDTH]


def _hash_key(key) -> str:
    """A stable 64-bit hex hash of one ``=e`` key (nested tuples of
    primitives: their repr is deterministic across processes)."""
    return hashlib.blake2b(repr(key).encode("utf-8", "replace"),
                           digest_size=8).hexdigest()


def trace_sketch(trace: "Trace", size: int = SKETCH_SIZE
                 ) -> tuple[str, ...]:
    """The min-hash sketch of a trace's unique ``=e`` keys.

    Unique keys are the trace's anchor-candidate material (see the
    module docstring); keeping the ``size`` smallest of their hashes is
    the classic bottom-k sketch, so two sketches' overlap estimates the
    Jaccard similarity of the underlying key sets.  Uses the interned
    id column when the trace carries one (no key construction at all).
    """
    if trace.key_ids is not None and trace.key_table is not None:
        counts: dict = {}
        for kid in trace.key_ids:
            counts[kid] = counts.get(kid, 0) + 1
        unique = [trace.key_table.key_of(kid)
                  for kid, n in counts.items() if n == 1]
    else:
        counts = {}
        for entry in trace.entries:
            key = entry.key()
            counts[key] = counts.get(key, 0) + 1
        unique = [key for key, n in counts.items() if n == 1]
    hashes = sorted(_hash_key(key) for key in unique)
    return tuple(hashes[:size])


def sketch_overlap(left: Iterable[str], right: Iterable[str],
                   size: int = SKETCH_SIZE) -> float:
    """Bottom-k Jaccard estimate between two sketches, in [0, 1]."""
    left_set, right_set = set(left), set(right)
    k = min(size, max(len(left_set), len(right_set)))
    if k == 0:
        return 0.0
    merged = sorted(left_set | right_set)[:k]
    hits = sum(1 for h in merged if h in left_set and h in right_set)
    return hits / k


def _parse_since(since) -> float | None:
    """``since`` filters accept an epoch number or an ISO-8601 text."""
    if since is None:
        return None
    if isinstance(since, (int, float)):
        return float(since)
    text = str(since).strip()
    if not text:
        return None
    try:
        return float(text)
    except ValueError:
        pass
    if text.endswith("Z"):
        text = text[:-1] + "+00:00"
    try:
        moment = datetime.fromisoformat(text)
    except ValueError:
        raise ValueError(f"unparseable --since value {since!r} "
                         f"(epoch seconds or ISO-8601)")
    if moment.tzinfo is None:
        moment = moment.astimezone()
    return moment.timestamp()


@dataclass(frozen=True, slots=True)
class TraceIndexRecord:
    """One catalog line: everything queries may read about a trace."""

    key: str
    digest: str
    fingerprint: str
    entries: int
    threads: int
    tags: tuple[str, ...] = ()
    scenario: str = ""
    sketch: tuple[str, ...] = ()
    saved_at: float = 0.0
    updated_at: float = 0.0

    def to_json(self) -> dict:
        return {
            "key": self.key, "digest": self.digest,
            "fingerprint": self.fingerprint, "entries": self.entries,
            "threads": self.threads, "tags": sorted(self.tags),
            "scenario": self.scenario, "sketch": list(self.sketch),
            "saved_at": self.saved_at, "updated_at": self.updated_at,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TraceIndexRecord":
        return cls(
            key=data["key"], digest=data.get("digest", ""),
            fingerprint=data.get("fingerprint", ""),
            entries=int(data.get("entries", -1)),
            threads=int(data.get("threads", 0)),
            tags=tuple(data.get("tags", ())),
            scenario=data.get("scenario", ""),
            sketch=tuple(data.get("sketch", ())),
            saved_at=float(data.get("saved_at", 0.0)),
            updated_at=float(data.get("updated_at", 0.0)),
        )

    def brief(self) -> str:
        tags = f" [{', '.join(self.tags)}]" if self.tags else ""
        scenario = f" scenario={self.scenario}" if self.scenario else ""
        return (f"{self.key:32} {self.digest[:12]}  "
                f"{self.entries:>7} entries/{self.threads} thread(s)"
                f"{scenario}{tags}")


@dataclass(frozen=True, slots=True)
class DiffStat:
    """One appended per-diff stat row."""

    left: str
    right: str
    engine: str
    num_diffs: int = 0
    sequences: int = 0
    compares: int = 0
    seconds: float = 0.0
    cached: bool = False
    at: float = 0.0

    def to_json(self) -> dict:
        return {"left": self.left, "right": self.right,
                "engine": self.engine, "num_diffs": self.num_diffs,
                "sequences": self.sequences, "compares": self.compares,
                "seconds": self.seconds, "cached": self.cached,
                "at": self.at}

    @classmethod
    def from_json(cls, data: dict) -> "DiffStat":
        return cls(left=data.get("left", ""), right=data.get("right", ""),
                   engine=data.get("engine", ""),
                   num_diffs=int(data.get("num_diffs", 0)),
                   sequences=int(data.get("sequences", 0)),
                   compares=int(data.get("compares", 0)),
                   seconds=float(data.get("seconds", 0.0)),
                   cached=bool(data.get("cached", False)),
                   at=float(data.get("at", 0.0)))


@dataclass(slots=True)
class IndexStats:
    """Footprint snapshot of one catalog directory."""

    records: int = 0
    diff_rows: int = 0
    trace_shards: int = 0
    diff_shards: int = 0
    bytes: int = 0
    path: str = ""

    def render(self) -> str:
        return "\n".join([
            f"trace index at {self.path}",
            f"  records: {self.records} in {self.trace_shards} shard(s)",
            f"  diffs:   {self.diff_rows} row(s) in "
            f"{self.diff_shards} shard(s)",
            f"  bytes:   {self.bytes}",
        ])


class TraceIndex:
    """The queryable catalog under one ``index.d`` directory.

    Handles are cheap and safe to share: appends serialise through
    per-shard advisory file locks (multi-process safe), folds are
    memoised per handle and invalidated by shard file stats.  Nothing
    is created on disk until the first append.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self._lock = threading.Lock()
        #: shard file name -> ((mtime_ns, size), folded records)
        self._folded: dict[str, tuple[tuple, dict]] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceIndex({str(self.root)!r})"

    @classmethod
    def for_store(cls, store: "TraceStore") -> "TraceIndex":
        return store.index

    # -- append side ---------------------------------------------------------

    def _shard_path(self, directory: str, shard: str) -> Path:
        return self.root / directory / (shard + _SUFFIX)

    def _append(self, directory: str, shard: str, payload: dict) -> None:
        path = self._shard_path(directory, shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            with locked_file(path.with_name(path.stem + _LOCK_SUFFIX)):
                with path.open("a", encoding="utf-8") as handle:
                    handle.write(line)

    def record_save(self, record: TraceIndexRecord) -> None:
        """Publish (or replace) one trace's catalog record."""
        op = record.to_json()
        op["op"] = "add"
        self._append(TRACES_DIR, _key_shard(record.key), op)

    def record_tags(self, key: str, tags: Iterable[str]) -> None:
        """Update a record's tag set (no-op at fold time for keys the
        catalog does not know)."""
        self._append(TRACES_DIR, _key_shard(key),
                     {"op": "tags", "key": key, "tags": sorted(tags),
                      "at": time.time()})

    def record_delete(self, key: str) -> None:
        """Retire a record."""
        self._append(TRACES_DIR, _key_shard(key),
                     {"op": "del", "key": key, "at": time.time()})

    def record_diff(self, left_digest: str, right_digest: str,
                    engine: str, *, num_diffs: int = 0,
                    sequences: int = 0, compares: int = 0,
                    seconds: float = 0.0, cached: bool = False) -> None:
        """Append one per-diff stat row (sharded by left digest)."""
        stat = DiffStat(left=left_digest, right=right_digest,
                        engine=engine, num_diffs=num_diffs,
                        sequences=sequences, compares=compares,
                        seconds=seconds, cached=cached, at=time.time())
        shard = (left_digest or "0" * SHARD_WIDTH)[:SHARD_WIDTH]
        self._append(DIFFS_DIR, shard, stat.to_json())

    # -- read side -----------------------------------------------------------

    def _shard_files(self, directory: str) -> list[Path]:
        base = self.root / directory
        if not base.is_dir():
            return []
        return sorted(p for p in base.glob("*" + _SUFFIX)
                      if not p.name.startswith("."))

    def _fold_shard(self, path: Path) -> dict[str, TraceIndexRecord]:
        """Records alive in one shard (op log folded in file order)."""
        try:
            stat = path.stat()
        except OSError:
            return {}
        signature = (stat.st_mtime_ns, stat.st_size)
        with self._lock:
            cached = self._folded.get(path.name)
            if cached is not None and cached[0] == signature:
                return cached[1]
        records = self._fold_lines(path)
        with self._lock:
            self._folded[path.name] = (signature, records)
        return records

    @staticmethod
    def _fold_lines(path: Path) -> dict[str, TraceIndexRecord]:
        """The raw op fold of one shard file (no memoisation, no
        locking — callers bring their own)."""
        records: dict[str, TraceIndexRecord] = {}
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                op = json.loads(line)
            except ValueError:
                continue  # torn trailing line: whole-line appends only
            if not isinstance(op, dict) or not op.get("key"):
                continue
            kind = op.get("op")
            key = op["key"]
            if kind == "add":
                try:
                    records[key] = TraceIndexRecord.from_json(op)
                except (KeyError, TypeError, ValueError):
                    continue
            elif kind == "tags" and key in records:
                records[key] = replace(
                    records[key], tags=tuple(op.get("tags", ())),
                    updated_at=float(op.get("at", 0.0)))
            elif kind == "del":
                records.pop(key, None)
        return records

    def records(self) -> list[TraceIndexRecord]:
        """Every live catalog record, newest-updated first."""
        merged: list[TraceIndexRecord] = []
        for path in self._shard_files(TRACES_DIR):
            merged.extend(self._fold_shard(path).values())
        merged.sort(key=lambda r: (-r.updated_at, r.key))
        return merged

    def get(self, key: str) -> TraceIndexRecord | None:
        """The record for one store key (one shard fold, not a scan)."""
        path = self._shard_path(TRACES_DIR, _key_shard(key))
        return self._fold_shard(path).get(key)

    def __len__(self) -> int:
        return sum(len(self._fold_shard(p))
                   for p in self._shard_files(TRACES_DIR))

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def by_digest(self, digest: str) -> list[TraceIndexRecord]:
        """Records whose content digest equals ``digest`` (dedup's
        lookup), newest first."""
        return [r for r in self.records() if r.digest == digest]

    def query(self, *, tags: "str | Iterable[str] | None" = None,
              scenario: str | None = None,
              digest_prefix: str | None = None,
              key_prefix: str | None = None,
              since=None,
              limit: int | None = None) -> list[TraceIndexRecord]:
        """Catalog lookups, index-only by construction.

        ``tags`` (one or many — all must be carried), ``scenario``
        (exact), ``digest_prefix`` / ``key_prefix`` (prefix match), and
        ``since`` (epoch seconds or ISO-8601; keeps records updated at
        or after the moment) conjoin; results come newest-updated
        first, truncated to ``limit``.
        """
        wanted = ((tags,) if isinstance(tags, str)
                  else tuple(tags or ()))
        horizon = _parse_since(since)
        out = []
        for record in self.records():
            if wanted and not set(wanted) <= set(record.tags):
                continue
            if scenario is not None and record.scenario != scenario:
                continue
            if digest_prefix and not record.digest.startswith(
                    digest_prefix):
                continue
            if key_prefix and not record.key.startswith(key_prefix):
                continue
            if horizon is not None and record.updated_at < horizon:
                continue
            out.append(record)
            if limit is not None and len(out) >= limit:
                break
        return out

    def newest_with_tag(self, tag: str,
                        exclude_key: str | None = None
                        ) -> TraceIndexRecord | None:
        """The most recently updated record carrying ``tag`` (the
        diff-against-latest-baseline resolution)."""
        for record in self.query(tags=tag):
            if record.key != exclude_key:
                return record
        return None

    def similar(self, probe, *, limit: int = 10
                ) -> list[tuple[float, TraceIndexRecord]]:
        """Records most similar to ``probe`` (a store key, a catalog
        record, or a :class:`~repro.core.traces.Trace`), scored
        descending.

        Score = the sketches' bottom-k Jaccard estimate, plus 1.0 for
        an identical content digest and 0.5 for an identical shape
        fingerprint — so exact duplicates rank first, shape twins
        next, then anchor-material overlap.
        """
        digest = fingerprint = ""
        exclude = None
        if isinstance(probe, str):
            record = self.get(probe)
            if record is None:
                raise KeyError(f"no indexed trace {probe!r}")
            probe = record
        if isinstance(probe, TraceIndexRecord):
            sketch, digest = set(probe.sketch), probe.digest
            fingerprint, exclude = probe.fingerprint, probe.key
        else:  # a Trace
            sketch = set(trace_sketch(probe))
            digest = probe.content_digest()
            fingerprint = probe.fingerprint()
        scored = []
        for record in self.records():
            if record.key == exclude:
                continue
            score = sketch_overlap(sketch, record.sketch)
            if digest and record.digest == digest:
                score += 1.0
            elif fingerprint and record.fingerprint == fingerprint:
                score += 0.5
            if score > 0.0:
                scored.append((score, record))
        scored.sort(key=lambda pair: (-pair[0], pair[1].key))
        return scored[:limit]

    def diff_stats(self, *, digest_prefix: str | None = None,
                   engine: str | None = None, since=None,
                   limit: int | None = None) -> list[DiffStat]:
        """Appended per-diff stat rows, newest first.  With a
        ``digest_prefix`` of at least the shard width only that shard
        file is read."""
        horizon = _parse_since(since)
        paths = self._shard_files(DIFFS_DIR)
        if digest_prefix and len(digest_prefix) >= SHARD_WIDTH:
            wanted = digest_prefix[:SHARD_WIDTH] + _SUFFIX
            paths = [p for p in paths if p.name == wanted]
        rows = []
        for path in paths:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(data, dict):
                    continue
                stat = DiffStat.from_json(data)
                if digest_prefix and not stat.left.startswith(
                        digest_prefix):
                    continue
                if engine is not None and stat.engine != engine:
                    continue
                if horizon is not None and stat.at < horizon:
                    continue
                rows.append(stat)
        rows.sort(key=lambda s: -s.at)
        if limit is not None:
            rows = rows[:limit]
        return rows

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> IndexStats:
        trace_files = self._shard_files(TRACES_DIR)
        diff_files = self._shard_files(DIFFS_DIR)
        size = 0
        for path in trace_files + diff_files:
            try:
                size += path.stat().st_size
            except OSError:
                continue
        return IndexStats(records=len(self),
                          diff_rows=len(self.diff_stats()),
                          trace_shards=len(trace_files),
                          diff_shards=len(diff_files),
                          bytes=size, path=str(self.root))

    def _replace_catalog(self,
                         records: Iterable[TraceIndexRecord]) -> None:
        """Atomically rewrite the whole catalog (rebuild/compact):
        each shard file is replaced under its own lock, shards with no
        surviving records are removed."""
        per_shard: dict[str, list[TraceIndexRecord]] = {}
        for record in records:
            per_shard.setdefault(_key_shard(record.key),
                                 []).append(record)
        (self.root / TRACES_DIR).mkdir(parents=True, exist_ok=True)
        live = set()
        for shard, shard_records in sorted(per_shard.items()):
            path = self._shard_path(TRACES_DIR, shard)
            live.add(path.name)
            lines = []
            for record in sorted(shard_records, key=lambda r: r.key):
                op = record.to_json()
                op["op"] = "add"
                lines.append(json.dumps(op, sort_keys=True,
                                        separators=(",", ":")))
            text = "\n".join(lines) + "\n" if lines else ""
            with self._lock:
                with locked_file(path.with_name(path.stem
                                                + _LOCK_SUFFIX)):
                    tmp = path.with_name(
                        f".{path.name}.{os.getpid()}.tmp")
                    tmp.write_text(text, encoding="utf-8")
                    os.replace(tmp, path)
        for path in self._shard_files(TRACES_DIR):
            if path.name not in live:
                with self._lock:
                    with locked_file(path.with_name(path.stem
                                                    + _LOCK_SUFFIX)):
                        try:
                            path.unlink()
                        except OSError:
                            pass
        with self._lock:
            self._folded.clear()

    def rebuild(self, store: "TraceStore") -> int:
        """Rebuild the catalog by scanning the store's trace files.

        The backfill path for legacy stores (and the recovery path for
        a lost ``index.d``): headers written by this version carry
        digest/fingerprint/threads/sketch, so the scan is header-only;
        older files are fully loaded once to compute them.
        """
        now = time.time()
        records = []
        for stored in store.records():
            meta = stored.metadata or {}
            digest = meta.get("digest", "")
            fingerprint = meta.get("fingerprint", "")
            threads = meta.get("threads")
            sketch = meta.get("sketch")
            if not digest or threads is None or sketch is None:
                trace = store.load(stored.key)
                digest = trace.content_digest()
                fingerprint = trace.fingerprint()
                threads = len(trace.thread_ids())
                sketch = trace_sketch(trace)
            try:
                saved_at = stored.path.stat().st_mtime
            except OSError:
                saved_at = now
            records.append(TraceIndexRecord(
                key=stored.key, digest=digest, fingerprint=fingerprint,
                entries=stored.entries, threads=int(threads),
                tags=tuple(stored.tags),
                scenario=meta.get("scenario", ""),
                sketch=tuple(sketch), saved_at=saved_at,
                updated_at=saved_at))
        self._replace_catalog(records)
        return len(records)

    def compact(self) -> int:
        """Fold every op log down to one ``add`` line per live record;
        returns the number of surviving records.

        Safe against concurrent appenders: each shard is re-folded
        *inside* its own lock before the rewrite, so an op appended
        while other shards compacted is never lost (the global-snapshot
        variant would rewrite from stale state)."""
        total = 0
        for path in self._shard_files(TRACES_DIR):
            lock = path.with_name(path.stem + _LOCK_SUFFIX)
            with locked_file(lock):
                records = self._fold_lines(path)
                lines = []
                for record in sorted(records.values(),
                                     key=lambda r: r.key):
                    op = record.to_json()
                    op["op"] = "add"
                    lines.append(json.dumps(op, sort_keys=True,
                                            separators=(",", ":")))
                if lines:
                    tmp = path.with_name(
                        f".{path.name}.{os.getpid()}.tmp")
                    tmp.write_text("\n".join(lines) + "\n",
                                   encoding="utf-8")
                    os.replace(tmp, path)
                else:
                    try:
                        path.unlink()
                    except OSError:
                        pass
            with self._lock:
                self._folded.pop(path.name, None)
            total += len(records)
        return total

    def clear(self) -> int:
        """Drop the whole catalog (diff stats included)."""
        removed = 0
        for directory in (TRACES_DIR, DIFFS_DIR):
            for path in self._shard_files(directory):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        with self._lock:
            self._folded.clear()
        return removed
