"""The asyncio JSON-over-HTTP trace-diff service.

Stdlib only: :func:`asyncio.start_server` plus a hand-rolled HTTP/1.1
request parser (one request per connection, ``Connection: close``) —
no web framework enters the dependency set.  The event loop owns all
job state; the actual trace work (captures, diffs) runs on a
``ThreadPoolExecutor`` worker pool through the service's one
:class:`~repro.api.session.Session`, so every job shares the session's
store, interned key table, ``repro.exec`` executor, and
:class:`~repro.cache.DiffCache` (segment tier included — a re-diff of
an edited scenario hits at segment granularity exactly as it would in
process).

Endpoints (all JSON)::

    GET  /v1/health            liveness + store/queue snapshot
    GET  /v1/stats             jobs, cache, and catalog statistics
    POST /v1/captures          submit a capture job (trace upload or
                               a server-registered workload)
    POST /v1/diffs             submit a diff job (keys, or
                               baseline_tag resolution via the index)
    GET  /v1/jobs              job list (newest first)
    GET  /v1/jobs/<id>         one job record (result when done)
    GET  /v1/query?...         TraceIndex.query over the catalog
    GET  /v1/similar?key=...   TraceIndex.similar
    POST /v1/shutdown          graceful drain: stop accepting, finish
                               queued jobs, exit

Graceful shutdown (``POST /v1/shutdown`` or
:meth:`ReproService.request_shutdown`) flips the service to *draining*
— new submissions are refused with 503 — waits for the queue to empty,
then tears the loop down.
"""

from __future__ import annotations

import asyncio
import base64
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.analysis.serialize import loads_trace
from repro.api.session import Session
from repro.api.store import TraceStore
from repro.core.diffs import result_signature
from repro.service.jobs import (DONE, ERROR, RUNNING, Job, JobQueueFull,
                                QUEUED)

#: Default bound of the job queue (back-pressure, not memory growth).
DEFAULT_QUEUE_LIMIT = 1024

#: How many finished job records are kept for polling.
DEFAULT_JOB_HISTORY = 4096

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            503: "Service Unavailable", 500: "Internal Server Error"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class ReproService:
    """One store, one session, one HTTP front end (see module doc)."""

    def __init__(self, store: "TraceStore | str | Path", *,
                 host: str = "127.0.0.1", port: int = 0,
                 workers: int = 4, executor: str | None = None,
                 engine: str = "views", cache: bool = True,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 job_history: int = DEFAULT_JOB_HISTORY):
        if not isinstance(store, TraceStore):
            store = TraceStore(store)
        self.store = store
        self.session = Session(store=store, engine=engine,
                               executor=executor, cache=cache)
        self.host = host
        self.port = port           # 0: ephemeral; rebound once serving
        self.workers = max(1, workers)
        self.queue_limit = queue_limit
        self.job_history = job_history
        #: Server-registered capture workloads: the only way arbitrary
        #: code runs — never from request bodies.
        self.workloads: dict[str, Callable] = {}
        self.jobs: "dict[str, Job]" = {}
        self._order: list[str] = []
        self.draining = False
        self.started_at = time.time()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._shutdown: asyncio.Event | None = None
        self._pool: ThreadPoolExecutor | None = None

    # -- configuration -------------------------------------------------------

    def register_workload(self, name: str, func: Callable) -> None:
        """Expose ``func`` as a submittable capture workload.  Requests
        name it (``{"workload": name, "args": [...]}``); the function
        runs under the session's capture machinery."""
        self.workloads[name] = func

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------

    def run(self, *, ready: "Callable | None" = None) -> None:
        """Serve until shutdown (blocking).  ``ready(service)`` fires
        on the loop once the socket is bound and the real port known."""
        asyncio.run(self._main(ready))

    def request_shutdown(self) -> None:
        """Thread-safe external shutdown trigger (the in-thread twin of
        ``POST /v1/shutdown``)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._begin_shutdown)

    def _begin_shutdown(self) -> None:
        self.draining = True
        if self._shutdown is not None:
            self._shutdown.set()

    async def _main(self, ready) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._shutdown = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-service")
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port)
        self.port = server.sockets[0].getsockname()[1]
        workers = [asyncio.create_task(self._worker())
                   for _ in range(self.workers)]
        if ready is not None:
            ready(self)
        print(f"repro service listening on {self.url} "
              f"(store: {self.store.root})", flush=True)
        try:
            async with server:
                await self._shutdown.wait()
                # Drain: the socket closes (no new connections), queued
                # jobs still run to completion before the loop exits.
                server.close()
                await server.wait_closed()
                await self._queue.join()
        finally:
            for task in workers:
                task.cancel()
            await asyncio.gather(*workers, return_exceptions=True)
            self._pool.shutdown(wait=True)
            self.session.close()
            self._loop = None

    # -- job machinery -------------------------------------------------------

    def _submit(self, job: Job) -> None:
        if self.draining:
            raise JobQueueFull("service is draining")
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise JobQueueFull(
                f"job queue full ({self.queue_limit} pending)")
        self.jobs[job.id] = job
        self._order.append(job.id)
        while len(self._order) > self.job_history:
            stale = self.jobs.get(self._order[0])
            if stale is not None and stale.pending:
                break  # never evict live work
            self.jobs.pop(self._order.pop(0), None)

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            job.state = RUNNING
            job.started = time.time()
            try:
                job.result = await loop.run_in_executor(
                    self._pool, self._run_job, job)
                job.state = DONE
            except Exception as exc:  # noqa: BLE001 - job boundary
                job.state = ERROR
                job.error = f"{type(exc).__name__}: {exc}"
            finally:
                job.finished = time.time()
                self._queue.task_done()

    def _run_job(self, job: Job) -> dict:
        """Execute one job on a pool thread (the session layer is the
        thread-safety boundary: shared cache and store handles are
        documented concurrent-safe, diffs build per-pair key tables)."""
        if job.kind == "capture":
            return self._run_capture(job.params)
        if job.kind == "diff":
            return self._run_diff(job.params)
        raise ValueError(f"unknown job kind {job.kind!r}")

    def _run_capture(self, params: dict) -> dict:
        key = params.get("key")
        tags = tuple(params.get("tags", ()))
        dedup = bool(params.get("dedup", False))
        scenario = params.get("scenario") or None
        if params.get("trace_b64") is not None:
            # Binary-wire upload: base64-wrapped dumps_trace_bytes
            # output (v3 by default; any supported format decodes).
            trace = loads_trace(base64.b64decode(params["trace_b64"]))
        elif params.get("trace") is not None:
            trace = loads_trace(params["trace"])
        elif params.get("workload"):
            name = params["workload"]
            func = self.workloads.get(name)
            if func is None:
                raise KeyError(f"no registered workload {name!r} "
                               f"(have: {sorted(self.workloads)})")
            if not key:
                raise ValueError("capture jobs need a store key")
            trace = self.session.capture(func, *params.get("args", ()),
                                         name=key).trace
        else:
            raise ValueError("capture jobs need a 'trace'/'trace_b64' "
                             "payload or a 'workload' name")
        if not (key or trace.name):
            raise ValueError("capture jobs need a store key")
        # Store directly (not via store_as) so dedup's resolution — the
        # record may land on an *existing* key — reaches the response.
        record = self.store.save(trace, key=key or trace.name,
                                 tags=tags, dedup=dedup,
                                 scenario=scenario)
        return {"key": record.key, "entries": record.entries,
                "tags": list(record.tags),
                "digest": record.metadata.get("digest", ""),
                "deduped": bool(key) and record.key != key}

    def _run_diff(self, params: dict) -> dict:
        left = params.get("left")
        if not left:
            raise ValueError("diff jobs need a 'left' store key")
        right = params.get("right")
        baseline_tag = params.get("baseline_tag")
        if not right:
            if not baseline_tag:
                raise ValueError("diff jobs need 'right' or "
                                 "'baseline_tag'")
            record = self.store.index.newest_with_tag(
                baseline_tag, exclude_key=left)
            if record is None:
                raise KeyError(
                    f"no trace carries tag {baseline_tag!r}")
            right = record.key
        cache = self.session.cache
        hits_before = cache.hits if cache is not None else 0
        started = time.perf_counter()
        result = self.session.diff(
            left, right, engine=params.get("engine") or None,
            use_cache=bool(params.get("use_cache", True)))
        seconds = time.perf_counter() - started
        signature = json.dumps(result_signature(result), sort_keys=True,
                               default=list)
        return {
            "left": left, "right": right,
            "engine": result.algorithm,
            "num_diffs": result.num_diffs(),
            "sequences": len(result.sequences),
            "compares": (result.counter.compares
                         if result.counter is not None else 0),
            "seconds": seconds,
            "cached": cache is not None and cache.hits > hits_before,
            "signature": signature,
        }

    # -- HTTP front end ------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, target, body = request
                status, payload = self._route(method, target, body)
            else:
                return  # closed before a full request arrived
        except _HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        except Exception as exc:  # noqa: BLE001 - connection boundary
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"}
        finally:
            try:
                body = json.dumps(payload).encode("utf-8")
                head = (f"HTTP/1.1 {status} "
                        f"{_REASONS.get(status, 'OK')}\r\n"
                        f"Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        f"Connection: close\r\n\r\n")
                writer.write(head.encode("ascii") + body)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer went away mid-response

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line.strip():
            return None
        parts = line.decode("ascii", "replace").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("ascii", "replace") \
                .partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length")
        body = b""
        if length:
            body = await reader.readexactly(length)
        return method.upper(), target, body

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise _HttpError(400, "request body is not valid JSON")
        if not isinstance(data, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return data

    def _route(self, method: str, target: str,
               body: bytes) -> tuple[int, dict]:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        if path == "/v1/health":
            self._need(method, "GET")
            return 200, {"ok": True, "draining": self.draining,
                         "uptime": time.time() - self.started_at,
                         "queued": self._queue.qsize(),
                         "store": str(self.store.root)}
        if path == "/v1/stats":
            self._need(method, "GET")
            return 200, self._stats()
        if path == "/v1/captures":
            self._need(method, "POST")
            return self._submit_route("capture", self._json_body(body))
        if path == "/v1/diffs":
            self._need(method, "POST")
            return self._submit_route("diff", self._json_body(body))
        if path == "/v1/jobs":
            self._need(method, "GET")
            jobs = [self.jobs[jid].to_json(summary=True)
                    for jid in reversed(self._order)
                    if jid in self.jobs]
            return 200, {"jobs": jobs}
        if path.startswith("/v1/jobs/"):
            self._need(method, "GET")
            job = self.jobs.get(path[len("/v1/jobs/"):])
            if job is None:
                raise _HttpError(404, "no such job")
            return 200, job.to_json()
        if path == "/v1/query":
            self._need(method, "GET")
            return 200, self._query(query)
        if path == "/v1/similar":
            self._need(method, "GET")
            return 200, self._similar(query)
        if path == "/v1/shutdown":
            self._need(method, "POST")
            pending = self._queue.qsize()
            self._begin_shutdown()
            return 202, {"ok": True, "draining": pending}
        raise _HttpError(404, f"no route {path}")

    @staticmethod
    def _need(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    def _submit_route(self, kind: str, params: dict) -> tuple[int, dict]:
        job = Job.create(kind, params)
        try:
            self._submit(job)
        except JobQueueFull as exc:
            raise _HttpError(503, str(exc))
        return 202, {"job": job.id, "state": QUEUED}

    def _stats(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        cache = self.session.cache
        stats: dict = {
            "jobs": states,
            "queued": self._queue.qsize() if self._queue else 0,
            "workers": self._worker_stats(),
            "uptime": time.time() - self.started_at,
        }
        if cache is not None:
            cs = cache.stats()
            stats["cache"] = {
                "hits": cs.hits, "misses": cs.misses,
                "stores": cs.stores, "disk_entries": cs.disk_entries,
            }
        index = self.store.index.stats()
        stats["index"] = {"records": index.records,
                          "diff_rows": index.diff_rows,
                          "bytes": index.bytes}
        return stats

    def _worker_stats(self) -> dict:
        """The ``workers`` detail row: service loop workers plus — when
        the session rides a warm process pool — the execution
        substrate's pool and shared-memory shipping counters."""
        from repro.exec.shm import shm_stats

        row: dict = {"count": self.workers}
        executor = self.session.executor
        name = getattr(executor, "name", None)
        if name is not None:
            row["executor"] = name
        pool_stats = getattr(executor, "stats", None)
        if callable(pool_stats):
            pool = pool_stats()
            row["pool_size"] = pool["pool_size"]
            row["pool_shared"] = pool["shared"]
            row["batches"] = pool["batches"]
            row["tasks_leased"] = pool["tasks_leased"]
        shm = shm_stats()
        row["shm_segments_live"] = shm["segments_live"]
        row["shm_bytes_shipped"] = shm["bytes_shipped"]
        row["shm_bytes_received"] = shm["bytes_received"]
        return row

    def _query(self, query: dict) -> dict:
        limit = None
        if query.get("limit"):
            try:
                limit = max(1, int(query["limit"]))
            except ValueError:
                raise _HttpError(400, "bad limit")
        try:
            records = self.store.index.query(
                tags=[t for t in query.get("tag", "").split(",") if t]
                or None,
                scenario=query.get("scenario") or None,
                digest_prefix=query.get("digest_prefix") or None,
                key_prefix=query.get("key_prefix") or None,
                since=query.get("since") or None,
                limit=limit)
        except ValueError as exc:
            raise _HttpError(400, str(exc))
        return {"records": [r.to_json() for r in records]}

    def _similar(self, query: dict) -> dict:
        key = query.get("key")
        if not key:
            raise _HttpError(400, "similar needs ?key=")
        try:
            limit = max(1, int(query.get("limit", 10)))
        except ValueError:
            raise _HttpError(400, "bad limit")
        try:
            scored = self.store.index.similar(key, limit=limit)
        except KeyError as exc:
            raise _HttpError(404, str(exc.args[0]))
        return {"similar": [{"score": round(score, 4),
                             **record.to_json()}
                            for score, record in scored]}


class ServiceThread:
    """Run a :class:`ReproService` on a background thread (tests and
    the benchmark): ``with ServiceThread(service) as svc: ...`` yields
    once the port is bound and tears the service down gracefully on
    exit."""

    def __init__(self, service: ReproService, *, timeout: float = 10.0):
        self.service = service
        self.timeout = timeout
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    def __enter__(self) -> ReproService:
        def main() -> None:
            try:
                self.service.run(ready=lambda _svc: self._ready.set())
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                self._failure = exc
                self._ready.set()
        self._thread = threading.Thread(target=main,
                                        name="repro-service-main",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(self.timeout):
            raise TimeoutError("service did not come up")
        if self._failure is not None:
            raise RuntimeError("service failed to start") \
                from self._failure
        return self.service

    def __exit__(self, *exc) -> None:
        self.service.request_shutdown()
        if self._thread is not None:
            self._thread.join(self.timeout)
