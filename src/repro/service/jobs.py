"""Job records of the service's async queue.

A job is one unit of submitted work — a capture (trace upload or a
server-registered workload run) or a diff.  Submission returns the job
id immediately; workers move the record through ``queued`` → ``running``
→ ``done``/``error`` and clients poll ``GET /v1/jobs/<id>``.  Records
are plain mutable dataclasses guarded by the server's single event
loop (all state flips happen on loop callbacks, worker results arrive
via ``run_in_executor`` futures resolved on the loop).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import count

#: Job lifecycle states, in order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"

STATES = (QUEUED, RUNNING, DONE, ERROR)

_JOB_SEQ = count(1)


class JobQueueFull(RuntimeError):
    """Raised (and mapped to HTTP 503) when the bounded queue is full
    or the service is draining."""


def next_job_id(kind: str) -> str:
    return f"{kind}-{next(_JOB_SEQ):06d}"


@dataclass(slots=True)
class Job:
    """One submitted unit of work and its lifecycle record."""

    id: str
    kind: str                      # "capture" | "diff"
    params: dict = field(default_factory=dict)
    state: str = QUEUED
    result: dict | None = None
    error: str = ""
    created: float = field(default_factory=time.time)
    started: float = 0.0
    finished: float = 0.0

    @classmethod
    def create(cls, kind: str, params: dict) -> "Job":
        return cls(id=next_job_id(kind), kind=kind, params=params)

    @property
    def pending(self) -> bool:
        return self.state in (QUEUED, RUNNING)

    def to_json(self, *, summary: bool = False) -> dict:
        data = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "created": self.created,
        }
        if self.started:
            data["started"] = self.started
        if self.finished:
            data["finished"] = self.finished
            data["seconds"] = max(0.0, self.finished - self.started)
        if self.error:
            data["error"] = self.error
        if not summary:
            data["params"] = dict(self.params)
            if self.result is not None:
                data["result"] = self.result
        return data
