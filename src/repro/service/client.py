"""Thin blocking client for the repro service (stdlib ``http.client``).

One :class:`ServiceClient` per caller thread — handles open a fresh
connection per request (the server speaks ``Connection: close``), so
the client object itself carries no socket state and is cheap to
construct.  Non-2xx responses raise :class:`ServiceError` carrying the
HTTP status and the server's ``error`` text.
"""

from __future__ import annotations

import base64
import json
import time
from http.client import HTTPConnection
from urllib.parse import urlencode, urlsplit

from repro.analysis.serialize import dumps_trace_bytes
from repro.core.traces import Trace


class ServiceError(RuntimeError):
    """A non-2xx service response."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Blocking JSON client: ``ServiceClient("http://127.0.0.1:8123")``."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        url = urlsplit(base_url if "//" in base_url
                       else "http://" + base_url)
        if url.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {url.scheme!r} "
                             f"(the service speaks plain http)")
        self.host = url.hostname or "127.0.0.1"
        self.port = url.port or 80
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8", "replace")
        finally:
            connection.close()
        try:
            data = json.loads(text) if text else {}
        except ValueError:
            data = {"error": text}
        if not 200 <= response.status < 300:
            raise ServiceError(response.status,
                               data.get("error", text))
        return data

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit_capture(self, *, trace: "Trace | str | None" = None,
                       workload: str | None = None,
                       args: tuple = (), key: str | None = None,
                       tags: tuple[str, ...] = (), dedup: bool = False,
                       scenario: str | None = None) -> str:
        """Submit a capture job; returns the job id.  ``trace`` uploads
        a trace (object or already-serialised text), ``workload`` names
        a server-registered callable.

        Trace objects ship as ``trace_b64``: the session wire bytes
        (binary v3 by default) base64-wrapped for the JSON body —
        roughly half the upload of v2 text even after the base64 tax.
        Pre-serialised text still rides the legacy ``trace`` key.
        """
        payload: dict = {"key": key, "tags": list(tags),
                         "dedup": dedup, "scenario": scenario}
        if isinstance(trace, Trace):
            payload["trace_b64"] = base64.b64encode(
                dumps_trace_bytes(trace)).decode("ascii")
        elif trace is not None:
            payload["trace"] = trace
        if workload is not None:
            payload["workload"] = workload
            payload["args"] = list(args)
        return self._request("POST", "/v1/captures", payload)["job"]

    def submit_diff(self, left: str, right: str | None = None, *,
                    engine: str | None = None,
                    baseline_tag: str | None = None,
                    use_cache: bool = True) -> str:
        """Submit a diff job; returns the job id.  Omitting ``right``
        requires ``baseline_tag`` (newest-tagged resolution via the
        index)."""
        return self._request("POST", "/v1/diffs", {
            "left": left, "right": right, "engine": engine,
            "baseline_tag": baseline_tag, "use_cache": use_cache,
        })["job"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def wait(self, job_id: str, *, timeout: float = 60.0,
             poll: float = 0.02) -> dict:
        """Poll a job to completion; returns its final record.  A job
        that ends in ``error`` raises :class:`ServiceError` (status 0)
        carrying the job's error text."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] == "done":
                return record
            if record["state"] == "error":
                raise ServiceError(0, record.get("error", "job failed"))
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout}s")
            time.sleep(poll)

    def query(self, *, tag: str | None = None,
              scenario: str | None = None,
              digest_prefix: str | None = None,
              key_prefix: str | None = None, since=None,
              limit: int | None = None) -> list[dict]:
        params = {k: v for k, v in (
            ("tag", tag), ("scenario", scenario),
            ("digest_prefix", digest_prefix),
            ("key_prefix", key_prefix), ("since", since),
            ("limit", limit)) if v is not None}
        path = "/v1/query"
        if params:
            path += "?" + urlencode(params)
        return self._request("GET", path)["records"]

    def similar(self, key: str, *, limit: int = 10) -> list[dict]:
        path = "/v1/similar?" + urlencode({"key": key, "limit": limit})
        return self._request("GET", path)["similar"]

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")
