"""``repro.service`` — the trace-diff system as a long-running service.

A :class:`ReproService` wraps one :class:`~repro.api.session.Session`
(store, key table, diff cache, executor) behind a stdlib-only
JSON-over-HTTP server (:mod:`asyncio` + hand-rolled HTTP/1.1, no
third-party framework): clients submit captures and diffs as *jobs*, a
worker pool drains them through the session's ``repro.exec`` executor
and shared :class:`~repro.cache.DiffCache`, and the store's
:class:`~repro.index.TraceIndex` answers catalog queries without ever
opening a trace file.  ``repro serve`` is the CLI entry point;
:class:`ServiceClient` is the thin blocking client the tests, the
benchmark, and the CI smoke job drive it with.
"""

from repro.service.jobs import Job, JobQueueFull
from repro.service.server import ReproService, ServiceThread
from repro.service.client import ServiceClient, ServiceError

__all__ = ["Job", "JobQueueFull", "ReproService", "ServiceClient",
           "ServiceError", "ServiceThread"]
