"""The reference per-cell kernels: the original pure-Python loops.

These are the loops every accelerated backend must reproduce
bit-for-bit — they exist as a backend of their own (``scalar``) so
the agreement suite can run any workload through both and assert
identical values, and so ``REPRO_KERNEL=scalar`` can restore the
original behaviour for debugging.  All functions are pure: counting
is the caller's job (see the package docstring).
"""

from __future__ import annotations


def lengths_row(a_keys: list, b_keys: list) -> list[int]:
    """Final row of the LCS length table (linear space):
    ``row[j] == LCS(a_keys, b_keys[:j])``."""
    m = len(b_keys)
    prev = [0] * (m + 1)
    curr = [0] * (m + 1)
    for ai in a_keys:
        curr[0] = 0
        for j, bk in enumerate(b_keys, 1):
            if ai == bk:
                curr[j] = prev[j - 1] + 1
            else:
                up = prev[j]
                left = curr[j - 1]
                curr[j] = up if up >= left else left
        prev, curr = curr, prev
    return prev


def dp_table(a_keys: list, b_keys: list) -> list[list[int]]:
    """The full ``(n+1) x (m+1)`` LCS length table."""
    n, m = len(a_keys), len(b_keys)
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        row = table[i]
        prev = table[i - 1]
        ai = a_keys[i - 1]
        for j, bk in enumerate(b_keys, 1):
            if ai == bk:
                row[j] = prev[j - 1] + 1
            else:
                up = prev[j]
                left = row[j - 1]
                row[j] = up if up >= left else left
    return table


def common_run(a_keys: list, b_keys: list, i: int, j: int,
               limit: int) -> int:
    """Length of the equal run ``a[i+t] == b[j+t]`` for ``t < limit``."""
    t = 0
    while t < limit:
        if a_keys[i + t] != b_keys[j + t]:
            break
        t += 1
    return t


def common_run_back(a_keys: list, b_keys: list, i: int, j: int,
                    limit: int) -> int:
    """Length of the equal run ``a[i-1-t] == b[j-1-t]`` for
    ``t < limit``."""
    t = 0
    while t < limit:
        if a_keys[i - 1 - t] != b_keys[j - 1 - t]:
            break
        t += 1
    return t
