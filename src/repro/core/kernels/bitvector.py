"""Pure-stdlib kernels: bit-parallel LCS rows and chunked scans.

``lengths_row`` is the Hyyrö-style bit-parallel LCS recurrence (the
"bit-parallel Myers" family): one side is packed into per-symbol match
masks over a Python big int (arbitrary width, ~64 DP cells per machine
word per operation), and each symbol of the other side advances the
whole column state with a handful of word-parallel operations::

    u = v & match[c]
    v = ((v + u) | (v - u)) & mask        # v - u == v ^ u, since u ⊆ v
    LCS(a, b[:j]) = len(a) - popcount(v)  # after j update steps

``v`` holds one bit per position of ``a``; a *zero* bit marks a
position consumed by the common subsequence, so the popcount of ``v``
falls by one exactly when the LCS grows.  The per-prefix lengths this
produces are identical to the scalar row DP's, which is what lets the
Hirschberg alignment run on these rows and reproduce its splits — and
therefore its matched pairs — exactly.

``common_run`` / ``common_run_back`` replace per-item equality loops
with chunked list-slice comparisons (C ``memcmp``-like speed); the
first unequal chunk is rescanned item-wise so the returned stop
position is exactly the scalar loop's.

All functions are pure: compare counting stays with the caller.
"""

from __future__ import annotations

from repro.core.kernels import scalar

#: Items compared per slice in the chunked equality scans.  Large
#: enough to amortise the slicing overhead, small enough that the
#: item-wise rescan of the final (unequal) chunk stays negligible.
SCAN_CHUNK = 256

#: Below this run bound the scalar loop wins (no slices allocated).
_SCAN_CUTOFF = 16

#: Below this many DP cells the scalar row loop wins (no packing).
_ROW_CUTOFF = 256


def lengths_row(a_keys: list, b_keys: list) -> list[int]:
    """Final LCS length-table row via the bit-parallel recurrence:
    ``row[j] == LCS(a_keys, b_keys[:j])``."""
    n, m = len(a_keys), len(b_keys)
    if n == 0 or m == 0:
        return [0] * (m + 1)
    if n * m < _ROW_CUTOFF:
        return scalar.lengths_row(a_keys, b_keys)
    match: dict = {}
    bit = 1
    for key in a_keys:
        match[key] = match.get(key, 0) | bit
        bit <<= 1
    mask = bit - 1
    v = mask
    row = [0] * (m + 1)
    get = match.get
    for j, key in enumerate(b_keys, 1):
        u = v & get(key, 0)
        v = ((v + u) | (v - u)) & mask
        row[j] = n - v.bit_count()
    return row


def common_run(a_keys: list, b_keys: list, i: int, j: int,
               limit: int) -> int:
    """Chunked forward equality scan; stop position identical to the
    scalar loop's."""
    if limit < _SCAN_CUTOFF:
        return scalar.common_run(a_keys, b_keys, i, j, limit)
    t = 0
    while t < limit:
        span = limit - t
        if span > SCAN_CHUNK:
            span = SCAN_CHUNK
        if a_keys[i + t:i + t + span] == b_keys[j + t:j + t + span]:
            t += span
            continue
        end = t + span
        while t < end:
            if a_keys[i + t] != b_keys[j + t]:
                return t
            t += 1
    return t


def common_run_back(a_keys: list, b_keys: list, i: int, j: int,
                    limit: int) -> int:
    """Chunked backward equality scan (``a[i-1-t] == b[j-1-t]``)."""
    if limit < _SCAN_CUTOFF:
        return scalar.common_run_back(a_keys, b_keys, i, j, limit)
    t = 0
    while t < limit:
        span = limit - t
        if span > SCAN_CHUNK:
            span = SCAN_CHUNK
        if a_keys[i - t - span:i - t] == b_keys[j - t - span:j - t]:
            t += span
            continue
        end = t + span
        while t < end:
            if a_keys[i - 1 - t] != b_keys[j - 1 - t]:
                return t
            t += 1
    return t
