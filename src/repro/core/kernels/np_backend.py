"""Optional numpy kernels (auto-detected; never a hard dependency).

``lengths_row`` vectorizes the row-batch LCS DP with the prefix-max
identity: with ``prev`` the previous length row and ``eq`` the 0/1
match vector of row ``i``,

    curr[j] = max(prev[j], max_{k <= j}(prev[k-1] + eq[k]))

which follows from unrolling ``curr[j] = max(prev[j], curr[j-1],
prev[j-1] + eq[j])`` using the monotonicity of LCS rows — so one
``maximum.accumulate`` per row replaces the inner Python loop, and the
produced rows are value-identical to the scalar DP's.

``dp_table`` fills the full table with the same per-row recurrence
(identical values, hence an identical traceback in ``lcs_dp``).

Both kernels require integer keys (the interned id columns); tuple
keys and small inputs fall back to the pure-stdlib kernels, so
results never depend on which path ran.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import bitvector, scalar

#: Below this many DP cells the conversion overhead dominates.
_ROW_CUTOFF = 4096
_TABLE_CUTOFF = 2048


def _int_keys(keys: list) -> bool:
    return not keys or type(keys[0]) is int


def lengths_row(a_keys: list, b_keys: list) -> list[int]:
    """Final LCS length-table row, vectorized per row."""
    n, m = len(a_keys), len(b_keys)
    if n == 0 or m == 0:
        return [0] * (m + 1)
    if n * m < _ROW_CUTOFF or not _int_keys(a_keys) \
            or not _int_keys(b_keys):
        return bitvector.lengths_row(a_keys, b_keys)
    a_arr = np.asarray(a_keys, dtype=np.int64)
    b_arr = np.asarray(b_keys, dtype=np.int64)
    prev = np.zeros(m + 1, dtype=np.int32)
    tmp = np.empty(m, dtype=np.int32)
    for ai in a_arr:
        np.add(prev[:-1], b_arr == ai, out=tmp, casting="unsafe")
        np.maximum.accumulate(tmp, out=tmp)
        np.maximum(prev[1:], tmp, out=prev[1:])
    return prev.tolist()


def dp_table(a_keys: list, b_keys: list):
    """The full LCS length table, vectorized per row; values (and the
    resulting traceback) identical to the scalar fill."""
    n, m = len(a_keys), len(b_keys)
    if n * m < _TABLE_CUTOFF or not _int_keys(a_keys) \
            or not _int_keys(b_keys):
        return scalar.dp_table(a_keys, b_keys)
    a_arr = np.asarray(a_keys, dtype=np.int64)
    b_arr = np.asarray(b_keys, dtype=np.int64)
    table = np.zeros((n + 1, m + 1), dtype=np.int32)
    tmp = np.empty(m, dtype=np.int32)
    for i in range(1, n + 1):
        prev = table[i - 1]
        np.add(prev[:-1], b_arr == a_arr[i - 1], out=tmp,
               casting="unsafe")
        np.maximum.accumulate(tmp, out=tmp)
        np.maximum(prev[1:], tmp, out=table[i, 1:])
    return table
