"""Hardware-speed diff kernels over interned ``=e`` id columns.

Since the interned data layer landed, the hot loops of every LCS
algorithm and of the views lock-step scan operate on dense integer id
columns — exactly the layout word-packed bit-vector LCS (Myers/Hyyrö)
and vectorized compare loops want.  This package provides pluggable
*kernel backends* for those loops:

* ``scalar`` — the original per-cell reference loops, unchanged.
* ``stdlib`` — pure-stdlib acceleration: Hyyrö's bit-parallel LCS
  row recurrence over Python big-int bitvectors, and chunked
  list-slice equality scans (near-memcmp speed, no dependencies).
* ``numpy`` — optional, auto-detected: vectorizes the row-batch DP
  (via the ``maximum.accumulate`` prefix-max identity) and the full
  DP table fill.  Falls back to ``stdlib`` loops for non-integer keys.

The contract every backend obeys:

* **Bit-identical results.**  A kernel computes exactly the values the
  scalar loop would — same LCS lengths, same DP tables (hence same
  tracebacks and matched pairs), same scan stop positions.
* **Compare-count transparency.**  Kernels are *pure*: they never
  touch an :class:`~repro.core.lcs.OpCounter`.  Callers credit the
  counter in bulk with exactly the compares the scalar loop would have
  counted, so cache hits, bench JSON and the paper's reported metrics
  are unchanged by backend choice.

Selection: :func:`get_backend` resolves ``None``/``"auto"`` to the
default — the ``REPRO_KERNEL`` environment variable when set, else
``numpy`` when importable, else ``stdlib``.  Requesting ``"numpy"``
where numpy is absent silently degrades to ``stdlib`` (configs stay
portable across machines; there is no hard dependency).  Unknown
names raise ``ValueError``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.core.kernels import bitvector, scalar

#: Environment variable overriding the auto-detected default backend.
KERNEL_ENV = "REPRO_KERNEL"

try:  # pragma: no cover - exercised via the numpy/no-numpy CI legs
    from repro.core.kernels import np_backend as _np_backend
except ImportError:  # pragma: no cover - numpy absent
    _np_backend = None


@dataclass(frozen=True)
class Backend:
    """One kernel backend: pure compute functions, no counters.

    ``lengths_row(a, b)`` — the final LCS length-table row, i.e.
    ``row[j] == LCS(a, b[:j])`` for ``j`` in ``0..len(b)``.

    ``dp_table(a, b)`` — the full ``(n+1) x (m+1)`` LCS length table,
    indexable as ``table[i][j]``, value-identical to the scalar fill.

    ``common_run(a, b, i, j, limit)`` — length of the maximal equal
    run comparing ``a[i+t] == b[j+t]`` for ``t < limit``.

    ``common_run_back(a, b, i, j, limit)`` — length of the maximal
    equal run comparing ``a[i-1-t] == b[j-1-t]`` for ``t < limit``.
    """

    name: str
    lengths_row: Callable
    dp_table: Callable
    common_run: Callable
    common_run_back: Callable


SCALAR = Backend(
    name="scalar",
    lengths_row=scalar.lengths_row,
    dp_table=scalar.dp_table,
    common_run=scalar.common_run,
    common_run_back=scalar.common_run_back,
)

STDLIB = Backend(
    name="stdlib",
    lengths_row=bitvector.lengths_row,
    # No vectorized full-table fill exists in pure stdlib (the
    # traceback needs every row), so the reference fill stands in.
    dp_table=scalar.dp_table,
    common_run=bitvector.common_run,
    common_run_back=bitvector.common_run_back,
)

NUMPY = None if _np_backend is None else Backend(
    name="numpy",
    lengths_row=_np_backend.lengths_row,
    dp_table=_np_backend.dp_table,
    common_run=bitvector.common_run,
    common_run_back=bitvector.common_run_back,
)

#: The bit-parallel row kernel itself, independent of backend choice —
#: the ``bitparallel`` LCS algorithm always packs bitvectors even when
#: the active backend is ``scalar``.
BITVECTOR_ROWS = STDLIB


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this interpreter, in preference order."""
    names = ["scalar", "stdlib"]
    if NUMPY is not None:
        names.append("numpy")
    return tuple(names)


def default_backend_name() -> str:
    """The active default: ``REPRO_KERNEL`` when set (and known), else
    ``numpy`` when importable, else ``stdlib``."""
    env = os.environ.get(KERNEL_ENV, "").strip()
    if env and env != "auto":
        if env not in ("scalar", "stdlib", "numpy"):
            raise ValueError(
                f"{KERNEL_ENV}={env!r} is not a kernel backend "
                f"(known: scalar, stdlib, numpy)")
        if env == "numpy" and NUMPY is None:
            return "stdlib"
        return env
    return "numpy" if NUMPY is not None else "stdlib"


def get_backend(kernel: "str | Backend | None" = None) -> Backend:
    """Resolve a kernel selection to a :class:`Backend`.

    ``None`` or ``"auto"`` selects the default
    (:func:`default_backend_name`); ``"numpy"`` degrades to ``stdlib``
    when numpy is absent; :class:`Backend` instances pass through.
    """
    if isinstance(kernel, Backend):
        return kernel
    if kernel is None or kernel == "auto":
        kernel = default_backend_name()
    if kernel == "scalar":
        return SCALAR
    if kernel == "stdlib":
        return STDLIB
    if kernel == "numpy":
        return NUMPY if NUMPY is not None else STDLIB
    raise ValueError(f"unknown kernel backend {kernel!r} "
                     f"(known: scalar, stdlib, numpy)")
