"""Semantic views: the trace abstraction of Sec. 2.4 and Fig. 7.

A *view* is a named projection over a trace.  Each trace entry is mapped to
a set of view names by the per-type mapping functions ``nu_chi``:

* ``TH`` (thread views): one view per thread id; an entry belongs to the
  view of the thread it executed on.
* ``CM`` (method views): one view per fully qualified method name; an entry
  belongs to the view of the method on top of the call stack when it fired
  (the entry's ``m`` component).
* ``TO`` (target-object views): one view per object; an entry belongs to
  the view of the object that is the *target* of its event (callee of a
  call/return, accessed object of a get/set, created object of an init).
* ``AO`` (active-object views): one view per object; an entry belongs to
  the view of the object on top of the call stack (the entry's ``rho``).

Views are linked implicitly: a projected view stores original trace
*indices*, so any entry can be navigated from one view to its position in
every other view it belongs to (the "web" of views, built by
:mod:`repro.core.web`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterator

from repro.core.entries import TraceEntry
from repro.core.traces import Trace


class ViewType(Enum):
    """The four view types of Fig. 7."""

    THREAD = "TH"
    METHOD = "CM"
    TARGET_OBJECT = "TO"
    ACTIVE_OBJECT = "AO"

    def __str__(self) -> str:  # pragma: no cover - display only
        return self.value


@dataclass(frozen=True, slots=True)
class ViewName:
    """A view name ``<chi, kappa>``: view type plus type-specific key.

    Keys are: the thread id for TH, the qualified method name for CM, and
    the object *location* for TO/AO (locations identify objects within one
    trace; cross-trace object identification is the correlators' job).
    """

    vtype: ViewType
    key: object

    def __str__(self) -> str:  # pragma: no cover - display only
        return f"<{self.vtype.value},{self.key}>"


def nu_thread(entry: TraceEntry) -> ViewName | None:
    """``nu_TH``: every entry belongs to its thread's view."""
    return ViewName(ViewType.THREAD, entry.tid)


def nu_method(entry: TraceEntry) -> ViewName | None:
    """``nu_CM``: every entry belongs to the view of the method under
    execution."""
    return ViewName(ViewType.METHOD, entry.method)


def nu_target_object(entry: TraceEntry) -> ViewName | None:
    """``nu_TO``: entries whose event targets an object belong to that
    object's view; thread events map to no TO view (the ``bottom`` case)."""
    target = entry.event.target()
    if target is None or target.location is None:
        return None
    return ViewName(ViewType.TARGET_OBJECT, target.location)


def nu_active_object(entry: TraceEntry) -> ViewName | None:
    """``nu_AO``: every entry with an active object belongs to that
    object's view."""
    if entry.active is None or entry.active.location is None:
        return None
    return ViewName(ViewType.ACTIVE_OBJECT, entry.active.location)


#: The view-name mapping function for each view type.
NAME_MAPPINGS: dict[ViewType, Callable[[TraceEntry], ViewName | None]] = {
    ViewType.THREAD: nu_thread,
    ViewType.METHOD: nu_method,
    ViewType.TARGET_OBJECT: nu_target_object,
    ViewType.ACTIVE_OBJECT: nu_active_object,
}


def _key_thread(entry: TraceEntry):
    return entry.tid


def _key_method(entry: TraceEntry):
    return entry.method


def _key_target_object(entry: TraceEntry):
    target = entry.event.target()
    if target is None:
        return None
    return target.location


def _key_active_object(entry: TraceEntry):
    if entry.active is None:
        return None
    return entry.active.location


#: Raw-key variants of the ``nu_chi`` mappings: the type-specific key
#: alone (``kappa``), without wrapping it in a :class:`ViewName`.  The
#: hot paths use these — constructing and hashing name objects per
#: lookup is measurable at trace scale.
KEY_MAPPINGS: dict[ViewType, Callable[[TraceEntry], object]] = {
    ViewType.THREAD: _key_thread,
    ViewType.METHOD: _key_method,
    ViewType.TARGET_OBJECT: _key_target_object,
    ViewType.ACTIVE_OBJECT: _key_active_object,
}


def view_names(entry: TraceEntry) -> list[ViewName]:
    """Union of all mapping functions for one entry (Sec. 2.4)."""
    names = []
    for mapping in NAME_MAPPINGS.values():
        name = mapping(entry)
        if name is not None:
            names.append(name)
    return names


class View:
    """One materialised view: a name plus the (sorted) original-trace
    indices of its member entries.

    Because views retain original indices, ``position_of`` implements the
    link-navigation of Sec. 2.4: given an entry's eid, find where it sits
    inside this view.

    ``indices`` is an index *column*: any integer sequence works, and
    the web builds ``array('I')`` columns (4 bytes per member instead of
    a list of boxed ints).
    """

    __slots__ = ("name", "trace", "indices", "_index_positions")

    def __init__(self, name: ViewName, trace: Trace, indices):
        self.name = name
        self.trace = trace
        self.indices = indices
        self._index_positions: dict[int, int] | None = None

    def __len__(self) -> int:
        return len(self.indices)

    def __iter__(self) -> Iterator[TraceEntry]:
        entries = self.trace.entries
        for index in self.indices:
            yield entries[index]

    def __getitem__(self, position: int) -> TraceEntry:
        return self.trace.entries[self.indices[position]]

    def entry_at(self, position: int) -> TraceEntry:
        return self[position]

    def position_of(self, eid: int) -> int:
        """Position of the entry with identifier ``eid`` inside this view
        (the ``index(nu, tau)`` helper of Fig. 9), or ``-1`` if absent."""
        if self._index_positions is None:
            self._index_positions = {
                eid_: pos for pos, eid_ in enumerate(self.indices)}
        return self._index_positions.get(eid, -1)

    def window(self, eid: int, radius: int) -> list[TraceEntry]:
        """``win``: the entries of this view whose view-position lies within
        ``radius`` of the position of ``eid`` (Fig. 9's fixed-size window).
        """
        center = self.position_of(eid)
        if center < 0:
            return []
        lo = max(0, center - radius)
        hi = min(len(self.indices), center + radius + 1)
        entries = self.trace.entries
        return [entries[i] for i in self.indices[lo:hi]]

    def window_around_position(self, position: int,
                               radius: int) -> list[TraceEntry]:
        """Window by view position rather than eid."""
        lo = max(0, position - radius)
        hi = min(len(self.indices), position + radius + 1)
        entries = self.trace.entries
        return [entries[i] for i in self.indices[lo:hi]]

    def project(self) -> Trace:
        """Materialise this view as a standalone trace (projection ``p``)."""
        return Trace([self.trace.entries[i] for i in self.indices],
                     name=f"{self.trace.name}{self.name}")
