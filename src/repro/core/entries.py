"""Trace entries: ``entry(eid, tid, m, rho, e)`` plus the ``eof`` sentinel.

A trace entry is a five-tuple (Fig. 4): the entry identifier ``eid`` (its
index in the trace), the active thread ``tid``, the method under execution
``m`` (top of the call stack when the event fired), the active object
``rho`` on which ``m`` executes, and the event ``e`` itself.

The differencing semantics (Fig. 8) appends a special ``eof`` entry to each
trace and pads the shorter trace with further ``eof`` entries; ``EOF``
below is that sentinel.  Its event key collides with nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Event
from repro.core.values import ValueRep


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One entry of an execution trace."""

    eid: int
    tid: int
    method: str
    active: ValueRep | None
    event: Event

    def __repr__(self) -> str:
        # Byte-identical to the generated dataclass repr.  The trace
        # content digest hashes one repr per entry, which makes this
        # the hottest repr in the system — hand-written, it skips the
        # generated version's recursion guard and format machinery (a
        # several-fold difference that shows up directly in capture
        # shipping cost).  Any field change must update this string
        # *and* accepts that stored digests change with it.
        return (f"TraceEntry(eid={self.eid!r}, tid={self.tid!r}, "
                f"method={self.method!r}, active={self.active!r}, "
                f"event={self.event!r})")

    def key(self) -> tuple:
        """Event-equality (``=e``) key; delegates to the event.

        Note the key deliberately excludes ``eid``/``tid`` (per-trace
        identifiers) and the context ``m``/``rho`` — Fig. 9 defines ``=e``
        purely over the event's underlying values.
        """
        return self.event.key()

    @property
    def is_eof(self) -> bool:
        return False

    def brief(self) -> str:
        return f"[{self.eid}@t{self.tid} in {self.method}] {self.event.brief()}"


class _EofEvent(Event):
    """Event carried by the ``eof`` sentinel entry."""

    __slots__ = ()

    kind = "eof"

    def key(self) -> tuple:
        return ("eof",)

    def target(self) -> None:
        return None

    def brief(self) -> str:
        return "eof"


class EofEntry(TraceEntry):
    """The ``eof`` trace entry of Fig. 8 (a singleton, ``EOF``)."""

    @property
    def is_eof(self) -> bool:
        return True

    def brief(self) -> str:
        return "eof"


#: Singleton ``eof`` entry used to pad traces during differencing.
EOF = EofEntry(eid=-1, tid=-1, method="<eof>", active=None, event=_EofEvent())


def entries_equal(a: TraceEntry, b: TraceEntry) -> bool:
    """The event-equality predicate ``=e`` over entries."""
    return a.key() == b.key()
