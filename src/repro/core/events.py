"""Trace events (Fig. 4) and the event-equality keys behind ``=e``.

The grammar distinguishes four event families::

    event e ::= FE | ME | KE | TE
    FE ::= get(rho, f, rho) | set(rho, f, rho)
    ME ::= call(rho, m, rho*) | return(rho, m, rho)
    KE ::= init(A, rho*, rho)
    TE ::= fork(S*) | end(S*)

Each event class exposes:

* ``key()`` — a hashable, *location-free* tuple implementing the event
  equality predicate ``=e`` of Fig. 9 ("the underlying primitive values of
  the events of the two entries are equal").  Two entries are ``=e``-equal
  iff their event keys are equal.
* ``target()`` — the object the event acts upon (``rho'`` in the TO view
  mapping of Fig. 7), or ``None`` for thread events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.values import ValueRep


@dataclass(frozen=True, slots=True)
class StackFrame:
    """One stack entry ``s(m, rho, rho')``: method ``m`` invoked on object
    ``callee`` from object ``caller``."""

    method: str
    caller: ValueRep | None
    callee: ValueRep | None

    def key(self) -> tuple:
        caller = None if self.caller is None else self.caller.key()
        callee = None if self.callee is None else self.callee.key()
        return (self.method, caller, callee)

    def __repr__(self) -> str:
        # Hand-written, byte-identical to the generated dataclass repr:
        # the trace content digest hashes entry reprs, so the format is
        # part of digest stability (see TraceEntry.__repr__).
        return (f"StackFrame(method={self.method!r}, "
                f"caller={self.caller!r}, callee={self.callee!r})")


class Event:
    """Base class for all trace events."""

    __slots__ = ()

    kind: str = "event"

    def key(self) -> tuple:
        raise NotImplementedError

    def target(self) -> ValueRep | None:
        raise NotImplementedError

    def brief(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class FieldGet(Event):
    """``get(rho, f, rho'')`` — read of field ``f`` on object ``obj``."""

    obj: ValueRep
    field: str
    value: ValueRep

    kind = "get"

    def __repr__(self) -> str:
        return (f"FieldGet(obj={self.obj!r}, field={self.field!r}, "
                f"value={self.value!r})")

    def key(self) -> tuple:
        return ("get", self.obj.key(), self.field, self.value.key())

    def target(self) -> ValueRep:
        return self.obj

    def brief(self) -> str:
        return f"get {self.obj.brief()}.{self.field} -> {self.value.brief()}"


@dataclass(frozen=True, slots=True)
class FieldSet(Event):
    """``set(rho, f, rho'')`` — write of field ``f`` on object ``obj``."""

    obj: ValueRep
    field: str
    value: ValueRep

    kind = "set"

    def __repr__(self) -> str:
        return (f"FieldSet(obj={self.obj!r}, field={self.field!r}, "
                f"value={self.value!r})")

    def key(self) -> tuple:
        return ("set", self.obj.key(), self.field, self.value.key())

    def target(self) -> ValueRep:
        return self.obj

    def brief(self) -> str:
        return f"set {self.obj.brief()}.{self.field} = {self.value.brief()}"


@dataclass(frozen=True, slots=True)
class Call(Event):
    """``call(rho, m, rho*)`` — invocation of ``method`` on ``obj``."""

    obj: ValueRep
    method: str
    args: tuple[ValueRep, ...]

    kind = "call"

    def __repr__(self) -> str:
        return (f"Call(obj={self.obj!r}, method={self.method!r}, "
                f"args={self.args!r})")

    def key(self) -> tuple:
        return ("call", self.obj.key(), self.method,
                tuple(a.key() for a in self.args))

    def target(self) -> ValueRep:
        return self.obj

    def brief(self) -> str:
        args = ", ".join(a.brief() for a in self.args)
        return f"--> {self.obj.brief()}.{self.method}({args})"


@dataclass(frozen=True, slots=True)
class Return(Event):
    """``return(rho, m, rho'')`` — return from ``method`` on ``obj``."""

    obj: ValueRep
    method: str
    value: ValueRep

    kind = "return"

    def __repr__(self) -> str:
        return (f"Return(obj={self.obj!r}, method={self.method!r}, "
                f"value={self.value!r})")

    def key(self) -> tuple:
        return ("return", self.obj.key(), self.method, self.value.key())

    def target(self) -> ValueRep:
        return self.obj

    def brief(self) -> str:
        return f"<-- {self.obj.brief()}.{self.method} ret={self.value.brief()}"


@dataclass(frozen=True, slots=True)
class Init(Event):
    """``init(A, rho*, rho)`` — creation of ``obj`` of class ``class_name``
    with constructor arguments ``args``."""

    class_name: str
    args: tuple[ValueRep, ...]
    obj: ValueRep

    kind = "init"

    def __repr__(self) -> str:
        return (f"Init(class_name={self.class_name!r}, "
                f"args={self.args!r}, obj={self.obj!r})")

    def key(self) -> tuple:
        return ("init", self.class_name,
                tuple(a.key() for a in self.args), self.obj.key())

    def target(self) -> ValueRep:
        return self.obj

    def brief(self) -> str:
        args = ", ".join(a.brief() for a in self.args)
        return f"new {self.obj.brief()}({args})"


@dataclass(frozen=True, slots=True)
class Fork(Event):
    """``fork(S*)`` — creation of a thread.

    ``ancestry`` records the spawn-point call stack of the new thread *and*
    recursively of each spawning ancestor ("spawn-point call stack, call
    stack of spawn-point of spawning thread, etc."), outermost ancestor
    first.  ``child_tid`` identifies the created thread within this trace;
    like locations it is excluded from the ``=e`` key.
    """

    child_tid: int
    ancestry: tuple[tuple[StackFrame, ...], ...]

    kind = "fork"

    def __repr__(self) -> str:
        return (f"Fork(child_tid={self.child_tid!r}, "
                f"ancestry={self.ancestry!r})")

    def key(self) -> tuple:
        return ("fork", tuple(tuple(f.key() for f in stack)
                              for stack in self.ancestry))

    def target(self) -> None:
        return None

    def brief(self) -> str:
        return f"fork thread-{self.child_tid}"


@dataclass(frozen=True, slots=True)
class End(Event):
    """``end(S*)`` — completion of a thread."""

    tid: int
    ancestry: tuple[tuple[StackFrame, ...], ...]

    kind = "end"

    def __repr__(self) -> str:
        return f"End(tid={self.tid!r}, ancestry={self.ancestry!r})"

    def key(self) -> tuple:
        return ("end", tuple(tuple(f.key() for f in stack)
                             for stack in self.ancestry))

    def target(self) -> None:
        return None

    def brief(self) -> str:
        return f"end thread-{self.tid}"


#: All concrete event classes, handy for tests and serialisation.
EVENT_CLASSES: tuple[type[Event], ...] = (
    FieldGet, FieldSet, Call, Return, Init, Fork, End,
)
