"""Views-based trace differencing (Sec. 3.3, Fig. 12) — the contribution.

Each pair of correlated thread views is evaluated in lock step:

* STEP-VIEW-MATCH — equal heads (``=e``) are removed and placed in the
  similarity set ``sigma``.
* STEP-VIEW-NOMATCH — on differing heads, secondary views *linked* to
  nearby entries are explored (``LinkedSimilarEntries``): entries within a
  constant distance ``delta`` of the current positions whose views of some
  type are correlated (X_chi) have the LCS computed over fixed windows
  (``omega``) of those views.  Entries in the windowed LCS are marked
  similar ("anchors" in Fig. 13) even when they are far apart in the
  thread views — this is what makes the approach resilient to reordered
  operations.  The evaluation then skips to the next point of
  correspondence and resumes lock-step scanning.

The implementation is linear in time and space: windows are constant-size,
each (view-pair, window) is explored at most once, and the
next-correspondence search's overshoot is bounded by the distance actually
skipped.

RPRISM's relaxed correlation (Sec. 5) is implemented here: when two
entries sit at the *same distance* from the current (known-correlated)
positions, their method/object views are treated as correlated even if
their names differ — providing tolerance to rename/split/merge
refactorings.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.core.anchors import AnchorConfig, select_anchor_runs
from repro.core.correlation import ViewCorrelator
from repro.core.diffs import DiffResult, DifferenceSequence, build_sequences
from repro.core.kernels import get_backend
from repro.core.keytable import KeyTable
from repro.core.lcs import OpCounter, lcs_dp
from repro.core.traces import Trace
from repro.core.views import KEY_MAPPINGS, View, ViewType
from repro.core.web import ViewWeb


@dataclass(slots=True)
class ViewDiffConfig:
    """Tunable parameters of the views-based differencing semantics."""

    #: omega — radius of the fixed-size windows over secondary views that
    #: the LCS is computed on (Fig. 9's ``win``).
    window: int = 12
    #: delta — how far around the differing entries tau_1/tau_3 to look
    #: for entries with correlated secondary views
    #: (SIMILAR-FROM-LINKED-VIEWS's first two antecedent lines).
    radius: int = 4
    #: Secondary view types explored by LinkedSimilarEntries.
    view_types: tuple[ViewType, ...] = (
        ViewType.METHOD, ViewType.TARGET_OBJECT, ViewType.ACTIVE_OBJECT)
    #: Enable RPRISM's relaxed same-distance correlation (Sec. 5).
    relaxed: bool = True
    #: Cap on distinct correlated view pairs explored per nomatch point.
    max_secondary_pairs: int = 4
    #: Cap on next-correspondence overshoot; ``None`` means scan to the end
    #: (still amortised-linear, see module docstring).
    scan_limit: int | None = None
    #: Cell cap for aligning the two skipped segments of a NOMATCH step
    #: with a small LCS (recovers equal entries inside the skipped
    #: region).  Each entry joins at most one such LCS, so the pass stays
    #: linear; 0 disables it.
    skip_lcs_cells: int = 4096
    #: Compare interned key-table ids instead of ``=e`` key tuples.
    #: Interning is a bijection on keys, so the similarity sets are
    #: identical either way; ``False`` restores the tuple path.
    interned: bool = True
    #: Anchored evaluation (:mod:`repro.core.anchors`): precompute
    #: patience-style ``=e`` anchor runs per correlated thread pair and
    #: bulk-match them without per-entry compares whenever the
    #: lock-step scan reaches a run start exactly aligned.  The scan's
    #: state trajectory — and therefore sigma, the matched pairs, the
    #: anchors, and the sequences — is identical to the unanchored
    #: evaluation; only the compare count drops.
    anchored: bool = False
    #: Anchor runs shorter than this are not trusted
    #: (:attr:`~repro.core.anchors.AnchorConfig.min_run`).
    anchor_min_run: int = 2
    #: Occurrence cap for anchor candidate keys
    #: (:attr:`~repro.core.anchors.AnchorConfig.max_occurrence`).
    anchor_max_occurrence: int = 1
    #: Method names predicted unstable (typically
    #: ``PredictedImpact.method_hints()`` from
    #: :mod:`repro.static.impact`): with ``anchored``, entries of these
    #: methods are barred from anchor candidacy so anchors land in
    #: predicted-stable regions.  Results are identical either way
    #: (anchored evaluation is trajectory-preserving); only anchor
    #: placement and compare counts shift.
    anchor_method_hints: tuple[str, ...] = ()
    #: Kernel backend for the inner compare loops
    #: (:mod:`repro.core.kernels`): ``"scalar"``, ``"stdlib"``,
    #: ``"numpy"``, or ``None``/``"auto"`` to auto-detect (the
    #: ``REPRO_KERNEL`` environment variable overrides auto).  A pure
    #: performance knob: results and compare counts are bit-identical
    #: across backends, so it does not participate in cache keys.
    kernel: str | None = None


class _ThreadPairDiffer:
    """Lock-step evaluation of one correlated thread-view pair."""

    def __init__(self, left_view: View, right_view: View, web_l: ViewWeb,
                 web_r: ViewWeb, correlator: ViewCorrelator,
                 config: ViewDiffConfig, counter: OpCounter,
                 similar_left: set[int], similar_right: set[int],
                 anchor_pairs: list[tuple[int, int]],
                 ids_l=None, ids_r=None,
                 window_keys_l: dict | None = None,
                 window_keys_r: dict | None = None):
        self.lv = left_view
        self.rv = right_view
        self.web_l = web_l
        self.web_r = web_r
        self.correlator = correlator
        self.config = config
        self.counter = counter
        self.similar_left = similar_left
        self.similar_right = similar_right
        self.anchor_pairs = anchor_pairs
        # Full-trace interned id columns (None on the tuple-key path).
        self.ids_l = ids_l
        self.ids_r = ids_r
        # Secondary-view window key caches, shared across the pair's
        # thread differs: (view name, lo, hi) -> key list.
        self._window_keys_l = window_keys_l if window_keys_l is not None \
            else {}
        self._window_keys_r = window_keys_r if window_keys_r is not None \
            else {}
        # Per-view key caches: position -> =e key (interned id or tuple).
        if ids_l is not None:
            self.lkeys = [ids_l[i] for i in left_view.indices]
            self.rkeys = [ids_r[i] for i in right_view.indices]
        else:
            entries_l = web_l.trace.entries
            entries_r = web_r.trace.entries
            self.lkeys = [entries_l[i].key() for i in left_view.indices]
            self.rkeys = [entries_r[i].key() for i in right_view.indices]
        # key -> sorted positions, for the next-correspondence search.
        self.rpos: dict = {}
        for pos, key in enumerate(self.rkeys):
            self.rpos.setdefault(key, []).append(pos)
        # (left view name, right view name, window bucket) pairs already
        # explored, so each window is LCS'd at most once.
        self._explored: set[tuple] = set()
        # Anchored positions (in the two thread views) found by secondary
        # view exploration and still ahead of the scan.
        self._pending_anchors: list[tuple[int, int]] = []
        # eid -> position caches for the main views.
        self._lpos_by_eid = {left_view.indices[p]: p
                             for p in range(len(left_view.indices))}
        self._rpos_by_eid = {right_view.indices[p]: p
                             for p in range(len(right_view.indices))}
        # Kernel backend for the lock-step scans and window LCS fills.
        self._backend = get_backend(config.kernel)
        # Anchored evaluation: (run start left, run start right) ->
        # run length, bulk-matched compare-free when the scan lands on
        # a start exactly aligned (see ViewDiffConfig.anchored).
        self._anchor_starts: dict[tuple[int, int], int] = {}
        # Run starts per diagonal (right - left), sorted by left
        # position: the bulk lock-step scan must stop exactly where
        # the scalar trajectory would take the anchor fast path.
        self._diag_starts: dict[int, list[int]] = {}
        if config.anchored:
            exclude_l = exclude_r = None
            if config.anchor_method_hints:
                hinted = set(config.anchor_method_hints)
                entries_l = web_l.trace.entries
                entries_r = web_r.trace.entries
                exclude_l = {pos for pos, eid
                             in enumerate(left_view.indices)
                             if entries_l[eid].method in hinted}
                exclude_r = {pos for pos, eid
                             in enumerate(right_view.indices)
                             if entries_r[eid].method in hinted}
            runs = select_anchor_runs(
                self.lkeys, self.rkeys,
                AnchorConfig.from_view_config(config), counter=counter,
                kernel=self._backend, exclude_left=exclude_l,
                exclude_right=exclude_r)
            self._anchor_starts = {(run.left, run.right): run.length
                                   for run in runs}
            for run in runs:
                self._diag_starts.setdefault(
                    run.right - run.left, []).append(run.left)
            for starts in self._diag_starts.values():
                starts.sort()

    # -- driver --------------------------------------------------------------

    def run(self) -> list[tuple[int, int]]:
        """Evaluate the pair, returning the monotonic match pairs
        (left eid, right eid)."""
        lv, rv = self.lv, self.rv
        lkeys, rkeys = self.lkeys, self.rkeys
        indices_l, indices_r = lv.indices, rv.indices
        similar_left, similar_right = self.similar_left, self.similar_right
        n, m = len(lkeys), len(rkeys)
        match_pairs: list[tuple[int, int]] = []
        anchor_starts = self._anchor_starts
        diag_starts = self._diag_starts
        common_run = self._backend.common_run
        i = j = 0
        while i < n and j < m:
            if anchor_starts:
                # Anchored fast path: an aligned common run is matched
                # wholesale, exactly as L consecutive STEP-VIEW-MATCH
                # steps would — minus their L entry compares.  The
                # bookkeeping is bulk slice/zip work, O(1) compare
                # credit (zero: the run was verified at selection).
                run_length = anchor_starts.get((i, j))
                if run_length:
                    left_eids = indices_l[i:i + run_length]
                    right_eids = indices_r[j:j + run_length]
                    similar_left.update(left_eids)
                    similar_right.update(right_eids)
                    match_pairs.extend(zip(left_eids, right_eids))
                    i += run_length
                    j += run_length
                    continue
            self.counter.bump()
            if lkeys[i] == rkeys[j]:
                # STEP-VIEW-MATCH, bulk-extended: the whole equal run
                # is consumed through the kernel scan.  The scan may
                # not cross the next anchor start on this diagonal —
                # the scalar trajectory would bulk-match there with
                # zero compares — and is credited one compare per
                # matched entry, exactly the per-step bumps; the
                # stopping mismatch (or anchor/bounds check) is
                # re-examined by the next loop iteration, which bumps
                # it when (and only when) the scalar loop would.
                limit = n - i if n - i <= m - j else m - j
                if diag_starts:
                    starts = diag_starts.get(j - i)
                    if starts:
                        at = bisect_left(starts, i + 1)
                        if at < len(starts) and starts[at] - i < limit:
                            limit = starts[at] - i
                run = 1 + common_run(lkeys, rkeys, i + 1, j + 1,
                                     limit - 1)
                self.counter.bump(run - 1)
                left_eids = indices_l[i:i + run]
                right_eids = indices_r[j:j + run]
                similar_left.update(left_eids)
                similar_right.update(right_eids)
                match_pairs.extend(zip(left_eids, right_eids))
                i += run
                j += run
                continue
            # STEP-VIEW-NOMATCH
            self._linked_similar_entries(i, j)
            ni, nj = self._next_correspondence(i, j)
            if (ni, nj) == (i, j):  # pragma: no cover - defensive
                ni, nj = i + 1, j + 1
            self._align_skipped(i, ni, j, nj, match_pairs)
            i, j = ni, nj
        return match_pairs

    def _align_skipped(self, i: int, ni: int, j: int, nj: int,
                       match_pairs: list[tuple[int, int]]) -> None:
        """Recover equal entries inside the skipped NOMATCH region with a
        small bounded LCS over the two skipped segments."""
        cells = self.config.skip_lcs_cells
        width_l = ni - i
        width_r = nj - j
        if cells <= 0 or width_l == 0 or width_r == 0 or \
                width_l * width_r > cells:
            return
        lcs = lcs_dp(self.lkeys[i:ni], self.rkeys[j:nj],
                     counter=self.counter, kernel=self._backend)
        lv, rv = self.lv, self.rv
        for wi, wj in lcs.pairs:
            left_eid = lv.indices[i + wi]
            right_eid = rv.indices[j + wj]
            self.similar_left.add(left_eid)
            self.similar_right.add(right_eid)
            match_pairs.append((left_eid, right_eid))

    # -- LinkedSimilarEntries (SIMILAR-FROM-LINKED-VIEWS) ----------------------

    def _linked_similar_entries(self, i: int, j: int) -> None:
        """Explore secondary views linked near positions (i, j) and mark
        windowed-LCS entries as similar."""
        config = self.config
        lv, rv = self.lv, self.rv
        entries_l = self.web_l.trace.entries
        entries_r = self.web_r.trace.entries
        explored_now = 0
        radius = config.radius
        lo_l = max(0, i - radius)
        hi_l = min(len(lv.indices), i + radius + 1)
        lo_r = max(0, j - radius)
        hi_r = min(len(rv.indices), j + radius + 1)
        for pl in range(lo_l, hi_l):
            tau5 = entries_l[lv.indices[pl]]
            for pr in range(lo_r, hi_r):
                if explored_now >= config.max_secondary_pairs:
                    return
                tau6 = entries_r[rv.indices[pr]]
                for vtype in config.view_types:
                    keys = self.correlator.correlate_keys(tau5, tau6, vtype)
                    if keys is None and config.relaxed and (pl - i) == (pr - j):
                        # Relaxed correlation: same distance from the
                        # current (correlated) positions.
                        keys = self._relaxed_keys(tau5, tau6, vtype)
                    if keys is None:
                        continue
                    if self._explore_view_pair(vtype, keys[0], keys[1],
                                               tau5.eid, tau6.eid):
                        explored_now += 1

    def _relaxed_keys(self, tau5, tau6, vtype: ViewType):
        key_l = KEY_MAPPINGS[vtype](tau5)
        key_r = KEY_MAPPINGS[vtype](tau6)
        if key_l is None or key_r is None:
            return None
        return (key_l, key_r)

    def _explore_view_pair(self, vtype: ViewType, key_l, key_r,
                           center_eid_l: int, center_eid_r: int) -> bool:
        """Windowed LCS over one correlated secondary-view pair.

        Returns True if a (new) exploration was performed.
        """
        view_l = self.web_l.typed_view(vtype, key_l)
        view_r = self.web_r.typed_view(vtype, key_r)
        if view_l is None or view_r is None:
            return False
        pos_l = view_l.position_of(center_eid_l)
        pos_r = view_r.position_of(center_eid_r)
        if pos_l < 0 or pos_r < 0:
            return False
        omega = self.config.window
        bucket = (vtype.value, key_l, key_r, pos_l // max(omega, 1),
                  pos_r // max(omega, 1))
        if bucket in self._explored:
            return False
        self._explored.add(bucket)
        index_l, keys_l = self._window_keys(view_l, pos_l, omega,
                                            self.ids_l, self.web_l,
                                            self._window_keys_l)
        index_r, keys_r = self._window_keys(view_r, pos_r, omega,
                                            self.ids_r, self.web_r,
                                            self._window_keys_r)
        if not keys_l or not keys_r:
            return True
        lcs = lcs_dp(keys_l, keys_r, counter=self.counter,
                     kernel=self._backend)
        entries_l = self.web_l.trace.entries
        entries_r = self.web_r.trace.entries
        for wi, wj in lcs.pairs:
            entry_l = entries_l[index_l[wi]]
            entry_r = entries_r[index_r[wj]]
            self.similar_left.add(entry_l.eid)
            self.similar_right.add(entry_r.eid)
            self.anchor_pairs.append((entry_l.eid, entry_r.eid))
            # If both anchored entries live in the main thread views ahead
            # of the scan, they become correspondence candidates.
            apl = self._lpos_by_eid.get(entry_l.eid)
            apr = self._rpos_by_eid.get(entry_r.eid)
            if apl is not None and apr is not None:
                self._pending_anchors.append((apl, apr))
        return True

    def _window_keys(self, view: View, position: int, omega: int,
                     ids, web: ViewWeb, cache: dict):
        """The (index slice, key list) of one secondary-view window,
        memoised per (view, lo, hi) across every thread-pair differ of
        the trace pair."""
        lo = max(0, position - omega)
        hi = min(len(view.indices), position + omega + 1)
        # Views are owned by their web for the differ's whole lifetime,
        # so id() is a stable (and cheap) cache token here.
        token = (id(view), lo, hi)
        got = cache.get(token)
        if got is None:
            index = view.indices[lo:hi]
            if ids is not None:
                keys = [ids[i] for i in index]
            else:
                entries = web.trace.entries
                keys = [entries[i].key() for i in index]
            got = (index, keys)
            cache[token] = got
        return got

    # -- next point of correspondence -----------------------------------------

    def _next_correspondence(self, i: int, j: int) -> tuple[int, int]:
        """Find the nearest (i', j') >= (i, j) with equal heads, taking the
        closer of the scan-discovered pair and any anchor pair; entries in
        between remain outside sigma (the skipped differences of
        STEP-VIEW-NOMATCH)."""
        lkeys, rkeys = self.lkeys, self.rkeys
        n, m = len(lkeys), len(rkeys)
        best: tuple[int, int] | None = None
        best_cost: int | None = None
        # Anchor candidates strictly ahead of (i, j).
        kept_anchors = []
        for apl, apr in self._pending_anchors:
            if apl >= i and apr >= j:
                kept_anchors.append((apl, apr))
                cost = (apl - i) + (apr - j)
                if best_cost is None or cost < best_cost:
                    best, best_cost = (apl, apr), cost
        self._pending_anchors = kept_anchors
        # Forward scan over left positions, bisecting into right positions.
        limit = n
        if self.config.scan_limit is not None:
            limit = min(n, i + self.config.scan_limit)
        for ip in range(i, limit):
            left_cost = ip - i
            if best_cost is not None and left_cost >= best_cost:
                break
            positions = self.rpos.get(lkeys[ip])
            if not positions:
                continue
            self.counter.bump()
            at = bisect_left(positions, j)
            if at == len(positions):
                continue
            jp = positions[at]
            cost = left_cost + (jp - j)
            if best_cost is None or cost < best_cost:
                best, best_cost = (ip, jp), cost
        if best is None:
            return (n, m)
        return best


@dataclass(slots=True)
class PairMarks:
    """Everything one correlated thread pair's evaluation produced.

    Marks are *independent* per pair — the lock-step evaluation only
    ever writes into the similarity sets, never reads them — which is
    what lets the execution phase run pairs in any order (or in other
    threads/processes) and still merge to a result bit-identical to the
    serial evaluation.  ``compares`` carries the pair's entry-compare
    count so counters aggregate order-independently.
    """

    ltid: int
    rtid: int
    similar_left: set[int] = field(default_factory=set)
    similar_right: set[int] = field(default_factory=set)
    match_pairs: list[tuple[int, int]] = field(default_factory=list)
    anchor_pairs: list[tuple[int, int]] = field(default_factory=list)
    compares: int = 0


class ViewDiffPlan:
    """The planning phase of a views-based diff.

    Construction does all the pair-independent work: build (or adopt)
    the two view webs, intern the ``=e`` id columns, correlate the
    webs' views, and enumerate the correlated thread pairs
    (``plan.pairs``).  The execution phase is then embarrassingly
    parallel — :meth:`run_pair` per enumerated pair, in any order,
    through any executor — and :meth:`merge` folds the
    :class:`PairMarks` back together deterministically (always in
    ``plan.pairs`` order, regardless of completion order).
    """

    def __init__(self, left: Trace, right: Trace,
                 config: ViewDiffConfig | None = None,
                 web_left: ViewWeb | None = None,
                 web_right: ViewWeb | None = None,
                 key_table: KeyTable | None = None):
        self.left = left
        self.right = right
        self.config = config if config is not None else ViewDiffConfig()
        self.web_l = web_left if web_left is not None else ViewWeb(left)
        self.web_r = web_right if web_right is not None else ViewWeb(right)
        # Interning the two id columns is deferred to the first local
        # run_pair: a parent plan whose execution phase runs entirely
        # in worker processes (which re-intern from the wire) never
        # pays the two O(n) passes.
        self.ids_l = self.ids_r = None
        self._key_table = key_table
        self._ids_built = not self.config.interned
        self._ids_lock = threading.Lock()
        self.correlator = ViewCorrelator(self.web_l, self.web_r)
        #: Correlated thread pairs with a materialised view on both
        #: sides — the execution phase's work list.
        self.pairs: list[tuple[int, int]] = [
            (ltid, rtid)
            for ltid, rtid in self.correlator.thread_pairs()
            if self.web_l.thread_view(ltid) is not None
            and self.web_r.thread_view(rtid) is not None]
        # Secondary-view window key caches, shared across this plan's
        # pair evaluations (pure memoisation: values are deterministic,
        # so concurrent fills are benign).
        self._window_keys_l: dict = {}
        self._window_keys_r: dict = {}

    def _ensure_ids(self) -> None:
        """Intern both traces' ``=e`` id columns once, on first local
        pair evaluation (thread-safe: pairs may run concurrently)."""
        if self._ids_built:
            return
        with self._ids_lock:
            if self._ids_built:
                return
            table = self._key_table if self._key_table is not None \
                else KeyTable.for_pair(self.left, self.right)
            self.ids_l = table.ids_for(self.left)
            self.ids_r = table.ids_for(self.right)
            self._ids_built = True

    def run_pair(self, pair: tuple[int, int]) -> PairMarks:
        """Execution phase for one correlated thread pair: the
        lock-step evaluation, into pair-private marks."""
        self._ensure_ids()
        ltid, rtid = pair
        marks = PairMarks(ltid=ltid, rtid=rtid)
        counter = OpCounter()
        differ = _ThreadPairDiffer(
            self.web_l.thread_view(ltid), self.web_r.thread_view(rtid),
            self.web_l, self.web_r, self.correlator, self.config,
            counter, marks.similar_left, marks.similar_right,
            marks.anchor_pairs, ids_l=self.ids_l, ids_r=self.ids_r,
            window_keys_l=self._window_keys_l,
            window_keys_r=self._window_keys_r)
        marks.match_pairs = differ.run()
        marks.compares = counter.total
        return marks

    def merge(self, marks: "list[PairMarks]",
              counter: OpCounter | None = None,
              started: float | None = None) -> DiffResult:
        """Fold per-pair marks into the final :class:`DiffResult`.

        ``marks`` must be ordered like ``plan.pairs`` (executors
        preserve submission order); the union/concatenation below then
        reproduces the serial evaluation exactly.
        """
        if counter is None:
            counter = OpCounter()
        similar_left: set[int] = set()
        similar_right: set[int] = set()
        anchor_pairs: list[tuple[int, int]] = []
        all_match_pairs: list[tuple[int, int]] = []
        for mark in marks:
            similar_left |= mark.similar_left
            similar_right |= mark.similar_right
            anchor_pairs.extend(mark.anchor_pairs)
            all_match_pairs.extend(mark.match_pairs)
            counter.bump(mark.compares)
        # Sequences are segmented only after every thread pair has
        # contributed to sigma, so cross-thread anchors are honoured
        # everywhere.
        sequences: list[DifferenceSequence] = []
        for mark in marks:
            lv = self.web_l.thread_view(mark.ltid)
            rv = self.web_r.thread_view(mark.rtid)
            sequences.extend(build_sequences(
                self.left, self.right, mark.match_pairs,
                similar_left, similar_right,
                left_eids=list(lv.indices), right_eids=list(rv.indices)))

        # Uncorrelated threads: every entry is a difference.
        matched_left_tids = {mark.ltid for mark in marks}
        matched_right_tids = {mark.rtid for mark in marks}
        for tid in self.left.thread_ids():
            if tid in matched_left_tids:
                continue
            lv = self.web_l.thread_view(tid)
            if lv is None:
                continue
            entries = [e for e in lv if e.eid not in similar_left]
            if entries:
                sequences.append(DifferenceSequence(
                    kind="delete", left_entries=entries, right_entries=[]))
        for tid in self.right.thread_ids():
            if tid in matched_right_tids:
                continue
            rv = self.web_r.thread_view(tid)
            if rv is None:
                continue
            entries = [e for e in rv if e.eid not in similar_right]
            if entries:
                sequences.append(DifferenceSequence(
                    kind="insert", left_entries=[], right_entries=entries))

        elapsed = 0.0 if started is None else time.perf_counter() - started
        return DiffResult(
            left=self.left,
            right=self.right,
            similar_left=similar_left,
            similar_right=similar_right,
            match_pairs=sorted(all_match_pairs),
            anchor_pairs=anchor_pairs,
            sequences=sequences,
            counter=counter,
            algorithm="views",
            seconds=elapsed,
        )


def plan_view_diff(left: Trace, right: Trace,
                   config: ViewDiffConfig | None = None,
                   web_left: ViewWeb | None = None,
                   web_right: ViewWeb | None = None,
                   key_table: KeyTable | None = None) -> ViewDiffPlan:
    """The planning phase alone (webs + interning + correlation + the
    correlated-thread-pair work list), for callers that drive the
    execution phase themselves."""
    return ViewDiffPlan(left, right, config=config, web_left=web_left,
                        web_right=web_right, key_table=key_table)


def view_diff(left: Trace, right: Trace,
              config: ViewDiffConfig | None = None,
              counter: OpCounter | None = None,
              web_left: ViewWeb | None = None,
              web_right: ViewWeb | None = None,
              key_table: KeyTable | None = None,
              executor=None) -> DiffResult:
    """Difference two traces with the views-based semantics of Fig. 12.

    Every pair of correlated thread views (X_TH) is evaluated under the
    lock-step semantics; the per-pair similarity sets are unioned into the
    final ``sigma`` and the differences derived by subtraction.  Threads
    with no correlated partner contribute all their entries as
    insertions/deletions.

    With ``config.interned`` (the default) both traces are expressed as
    dense id columns of one shared :class:`KeyTable` — ``key_table`` if
    given, the table the traces already carry when it is common to both,
    a fresh pair table otherwise — and every ``=e`` compare below is an
    int compare.  The similarity sets are identical to the tuple path's.

    ``executor`` runs the per-thread-pair execution phase through an
    *in-process* executor (anything with an order-preserving
    ``map(fn, items)``); the merged result is bit-identical to the
    serial evaluation.  Process executors cannot share the in-memory
    webs — route those through
    :func:`repro.exec.diffing.executed_view_diff`.
    """
    started = time.perf_counter()
    plan = ViewDiffPlan(left, right, config=config, web_left=web_left,
                        web_right=web_right, key_table=key_table)
    if executor is None:
        marks = [plan.run_pair(pair) for pair in plan.pairs]
    else:
        if not getattr(executor, "in_process", True):
            raise ValueError(
                "process executors cannot share in-memory view webs; "
                "use repro.exec.diffing.executed_view_diff instead")
        marks = executor.map(plan.run_pair, plan.pairs)
    return plan.merge(marks, counter=counter, started=started)
