"""Longest-common-subsequence algorithms (the paper's baseline machinery).

The LCS-based differencing semantics of Fig. 11 and the windowed-LCS step
of LinkedSimilarEntries (Fig. 12) both reduce to LCS computations over
sequences of trace entries compared with the event-equality predicate
``=e``.  This module provides:

* :func:`lcs_dp` — the textbook Theta(nm) dynamic program with full
  traceback (the paper's baseline, including its memory appetite).
* :func:`lcs_hirschberg` — Hirschberg's linear-space divide and conquer
  [CACM 1975], cited by the paper as "roughly twice the computation time".
* :func:`myers_lcs_length` — Myers' O((n+m)D) greedy forward search,
  returning the exact LCS *length* cheaply when the inputs are similar.
* :func:`trim_common` — the common-prefix/suffix optimisation the paper's
  "optimized LCS" baseline applies before the quadratic core.
* :func:`lcs_fast` — anchored recursive differ: exact DP on small cores,
  unique-anchor (patience) splitting on large ones.  Exact whenever the
  DP core is reached; an LCS-style approximation otherwise.
* :func:`lcs_optimized` — the baseline configuration used by the benches:
  trim + DP, with a cell *budget* reproducing the paper's out-of-memory
  failure and DP-equivalent compare *charging* when the fast path stands
  in for the quadratic core.
* :func:`lcs_bitparallel` — Hirschberg's alignment driven by the
  bit-parallel LCS row kernel (:mod:`repro.core.kernels.bitvector`):
  matched pairs and compare counts identical to :func:`lcs_hirschberg`,
  with the row DP running ~a word's worth of cells per operation.

The inner loops are kernelized (:mod:`repro.core.kernels`): every
function takes an optional ``kernel`` selecting a backend (``scalar`` /
``stdlib`` / ``numpy``; ``None`` auto-detects, ``REPRO_KERNEL``
overrides).  Backends are bit-identical and compare-count-transparent —
counters are credited in bulk with exactly what the scalar loops would
have counted.

All functions operate on arbitrary sequences plus a ``key`` function; trace
entries pass ``TraceEntry.key`` so that equality is ``=e``.

``OpCounter`` counts entry compare operations — the paper's speedup metric
("the number of trace entry compare operations performed during the LCS
comparison divided by the number ... with RPRISM").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.kernels import BITVECTOR_ROWS, get_backend


class LcsMemoryError(MemoryError):
    """Raised when an LCS computation would exceed its cell budget
    (models the paper's out-of-memory failure at 32 GB)."""

    def __init__(self, needed_cells: int, budget_cells: int):
        super().__init__(
            f"LCS table needs {needed_cells} cells, budget is {budget_cells}")
        self.needed_cells = needed_cells
        self.budget_cells = budget_cells


@dataclass(slots=True)
class OpCounter:
    """Counts element compare operations (the paper's cost metric)."""

    compares: int = 0
    #: Extra charge registered for compares that the modelled algorithm
    #: *would* perform (used when the fast differ stands in for the
    #: quadratic DP baseline; see :func:`lcs_optimized`).
    charged: int = 0

    def bump(self, amount: int = 1) -> None:
        self.compares += amount

    def charge(self, amount: int) -> None:
        self.charged += amount

    @property
    def total(self) -> int:
        return self.compares + self.charged

    def reset(self) -> None:
        self.compares = 0
        self.charged = 0


@dataclass(slots=True)
class MemoryBudget:
    """A budget on DP table cells, plus a high-water mark for reporting."""

    max_cells: int | None = None
    peak_cells: int = 0

    def request(self, cells: int) -> None:
        if self.max_cells is not None and cells > self.max_cells:
            raise LcsMemoryError(cells, self.max_cells)
        if cells > self.peak_cells:
            self.peak_cells = cells

    def peak_bytes(self, bytes_per_cell: int = 4) -> int:
        return self.peak_cells * bytes_per_cell


@dataclass(slots=True)
class LcsResult:
    """An LCS as a list of (left index, right index) matched pairs, in
    increasing order on both sides."""

    pairs: list[tuple[int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def left_indices(self) -> list[int]:
        return [i for i, _ in self.pairs]

    def right_indices(self) -> list[int]:
        return [j for _, j in self.pairs]

    def shifted(self, left_offset: int, right_offset: int) -> "LcsResult":
        return LcsResult([(i + left_offset, j + right_offset)
                          for i, j in self.pairs])


def _keys(seq: Sequence, key: Callable | None) -> list:
    if key is None:
        return list(seq)
    return [key(item) for item in seq]


def trim_common(a_keys: list, b_keys: list,
                counter: OpCounter | None = None,
                kernel=None) -> tuple[int, int, int]:
    """Common-prefix/suffix optimisation.

    Returns ``(prefix, a_mid, b_mid)`` where ``prefix`` is the common
    prefix length and ``a_mid`` / ``b_mid`` are the lengths of the middle
    (untrimmed) regions; the common suffix length is then
    ``len(a) - prefix - a_mid``.

    The scans run through the active kernel backend; the counter is
    credited with exactly the scalar loop's compares (one per matched
    item, plus the mismatch probe when the scan stops short).
    """
    backend = get_backend(kernel)
    n, m = len(a_keys), len(b_keys)
    limit = min(n, m)
    prefix = backend.common_run(a_keys, b_keys, 0, 0, limit)
    if counter is not None:
        counter.bump(prefix + (1 if prefix < limit else 0))
    limit = min(n, m) - prefix
    suffix = backend.common_run_back(a_keys, b_keys, n, m, limit)
    if counter is not None:
        counter.bump(suffix + (1 if suffix < limit else 0))
    return prefix, n - prefix - suffix, m - prefix - suffix


def lcs_dp(a: Sequence, b: Sequence, key: Callable | None = None,
           counter: OpCounter | None = None,
           budget: MemoryBudget | None = None,
           kernel=None) -> LcsResult:
    """Exact LCS via the standard dynamic program, with full traceback.

    Time and space are Theta(nm); ``budget`` can cap the table size to
    emulate memory exhaustion on long traces.  The table fill runs
    through the active kernel backend (value-identical, so the
    traceback — and the matched pairs — are unchanged); the fill's
    ``n * m`` compares are credited to the counter in bulk.
    """
    a_keys = _keys(a, key)
    b_keys = _keys(b, key)
    n, m = len(a_keys), len(b_keys)
    if budget is not None:
        budget.request((n + 1) * (m + 1))
    if n == 0 or m == 0:
        return LcsResult()
    if counter is not None:
        counter.bump(n * m)
    table = get_backend(kernel).dp_table(a_keys, b_keys)
    pairs: list[tuple[int, int]] = []
    i, j = n, m
    while i > 0 and j > 0:
        if a_keys[i - 1] == b_keys[j - 1]:
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    return LcsResult(pairs)


def _lcs_lengths_row(a_keys: list, b_keys: list,
                     counter: OpCounter | None,
                     backend=None) -> list[int]:
    """Final row of the LCS length table (linear space), through the
    given kernel backend (the active default when ``None``); the row
    loop's ``n * m`` compares are credited in bulk (see lcs_dp)."""
    if counter is not None:
        counter.bump(len(a_keys) * len(b_keys))
    if backend is None:
        backend = get_backend(None)
    return backend.lengths_row(a_keys, b_keys)


def lcs_length(a: Sequence, b: Sequence, key: Callable | None = None,
               counter: OpCounter | None = None,
               kernel=None) -> int:
    """LCS length only, in O(min(n, m)) space and Theta(nm) time."""
    a_keys = _keys(a, key)
    b_keys = _keys(b, key)
    if len(b_keys) > len(a_keys):
        a_keys, b_keys = b_keys, a_keys
    return _lcs_lengths_row(a_keys, b_keys, counter,
                            get_backend(kernel))[-1]


def lcs_hirschberg(a: Sequence, b: Sequence, key: Callable | None = None,
                   counter: OpCounter | None = None,
                   kernel=None) -> LcsResult:
    """Exact LCS in linear space (Hirschberg 1975)."""
    a_keys = _keys(a, key)
    b_keys = _keys(b, key)
    pairs: list[tuple[int, int]] = []
    _hirschberg(a_keys, b_keys, 0, 0, counter, pairs,
                get_backend(kernel))
    return LcsResult(pairs)


def lcs_bitparallel(a: Sequence, b: Sequence, key: Callable | None = None,
                    counter: OpCounter | None = None,
                    kernel=None) -> LcsResult:
    """Exact LCS via Hirschberg's alignment over bit-parallel rows.

    The length rows come from the Hyyrö bit-vector recurrence
    (:mod:`repro.core.kernels.bitvector`) regardless of the active
    backend — the algorithm *is* the kernel — so the split points, the
    matched pairs, and the bulk-credited compare counts are all
    identical to :func:`lcs_hirschberg`; only the wall clock drops.
    ``kernel`` is accepted for signature uniformity.
    """
    del kernel
    a_keys = _keys(a, key)
    b_keys = _keys(b, key)
    pairs: list[tuple[int, int]] = []
    _hirschberg(a_keys, b_keys, 0, 0, counter, pairs, BITVECTOR_ROWS)
    return LcsResult(pairs)


def _hirschberg(a_keys: list, b_keys: list, a_off: int, b_off: int,
                counter: OpCounter | None,
                out: list[tuple[int, int]],
                backend=None) -> None:
    n, m = len(a_keys), len(b_keys)
    if n == 0 or m == 0:
        return
    if n == 1:
        for j, bk in enumerate(b_keys):
            if counter is not None:
                counter.bump()
            if a_keys[0] == bk:
                out.append((a_off, b_off + j))
                return
        return
    mid = n // 2
    upper = _lcs_lengths_row(a_keys[:mid], b_keys, counter, backend)
    lower = _lcs_lengths_row(a_keys[mid:][::-1], b_keys[::-1], counter,
                             backend)
    best_j, best = 0, -1
    for j in range(m + 1):
        score = upper[j] + lower[m - j]
        if score > best:
            best, best_j = score, j
    _hirschberg(a_keys[:mid], b_keys[:best_j], a_off, b_off, counter, out,
                backend)
    _hirschberg(a_keys[mid:], b_keys[best_j:], a_off + mid, b_off + best_j,
                counter, out, backend)


class LcsBudgetExceeded(RuntimeError):
    """Raised by :func:`myers_lcs_length` when the edit-distance frontier
    exceeds ``max_d`` (models the baseline becoming intractable)."""

    def __init__(self, max_d: int):
        super().__init__(f"edit distance exceeds cap {max_d}")
        self.max_d = max_d


def myers_lcs_length(a: Sequence, b: Sequence, key: Callable | None = None,
                     counter: OpCounter | None = None,
                     max_d: int | None = None) -> int:
    """Exact LCS length via Myers' greedy O((n+m)D) forward search.

    ``LCS length = (n + m - D) / 2`` where ``D`` is the shortest edit
    distance.  Cheap when the sequences are similar; ``max_d`` bounds the
    search frontier (raising :class:`LcsBudgetExceeded`) for degenerate
    inputs.
    """
    a_keys = _keys(a, key)
    b_keys = _keys(b, key)
    prefix, a_mid, b_mid = trim_common(a_keys, b_keys, counter)
    suffix = len(a_keys) - prefix - a_mid
    a_core = a_keys[prefix:prefix + a_mid]
    b_core = b_keys[prefix:prefix + b_mid]
    n, m = len(a_core), len(b_core)
    if n == 0 or m == 0:
        return prefix + suffix
    cap = n + m if max_d is None else min(max_d, n + m)
    # v[k] = furthest x on diagonal k; dict keyed by k
    v: dict[int, int] = {1: 0}
    for d in range(cap + 1):
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
                x = v.get(k + 1, 0)
            else:
                x = v.get(k - 1, 0) + 1
            y = x - k
            while x < n and y < m:
                if counter is not None:
                    counter.bump()
                if a_core[x] != b_core[y]:
                    break
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                return prefix + suffix + (n + m - d) // 2
    raise LcsBudgetExceeded(cap)


def _unique_anchor(a_keys: list, b_keys: list) -> tuple[int, int] | None:
    """Find a key that occurs exactly once in each sequence, preferring one
    near the middle of ``a`` (patience-diff pivot)."""
    a_counts: dict = {}
    for k in a_keys:
        a_counts[k] = a_counts.get(k, 0) + 1
    b_counts: dict = {}
    b_pos: dict = {}
    for j, k in enumerate(b_keys):
        b_counts[k] = b_counts.get(k, 0) + 1
        b_pos[k] = j
    mid = len(a_keys) // 2
    best: tuple[int, int] | None = None
    best_score = None
    for i, k in enumerate(a_keys):
        if a_counts[k] == 1 and b_counts.get(k) == 1:
            score = abs(i - mid)
            if best_score is None or score < best_score:
                best_score = score
                best = (i, b_pos[k])
    return best


def lcs_fast(a: Sequence, b: Sequence, key: Callable | None = None,
             counter: OpCounter | None = None,
             dp_cell_limit: int = 1_000_000,
             kernel=None) -> LcsResult:
    """Anchored recursive common-subsequence computation.

    Strategy: strip common prefix/suffix; if the remaining core fits in
    ``dp_cell_limit`` DP cells, solve it exactly; otherwise split at a
    unique common anchor (patience pivot) and recurse.  When no anchor
    exists the longer side is bisected against the best nearby match.

    Exact LCS whenever recursion bottoms out in DP cores (the common
    case); otherwise a high-quality common subsequence.
    """
    a_keys = _keys(a, key)
    b_keys = _keys(b, key)
    pairs: list[tuple[int, int]] = []
    _lcs_fast(a_keys, b_keys, 0, 0, counter, dp_cell_limit, pairs,
              get_backend(kernel))
    return LcsResult(pairs)


def _lcs_fast(a_keys: list, b_keys: list, a_off: int, b_off: int,
              counter: OpCounter | None, cell_limit: int,
              out: list[tuple[int, int]], backend=None) -> None:
    prefix, a_mid, b_mid = trim_common(a_keys, b_keys, counter,
                                       kernel=backend)
    for i in range(prefix):
        out.append((a_off + i, b_off + i))
    suffix = len(a_keys) - prefix - a_mid
    core_a = a_keys[prefix:prefix + a_mid]
    core_b = b_keys[prefix:prefix + b_mid]
    if core_a and core_b:
        if a_mid * b_mid <= cell_limit:
            core = lcs_dp(core_a, core_b, counter=counter, kernel=backend)
            for i, j in core.pairs:
                out.append((a_off + prefix + i, b_off + prefix + j))
        else:
            anchor = _unique_anchor(core_a, core_b)
            if anchor is None:
                # No unique pivot: bisect ``a`` and align the split point
                # to the nearest equal key in ``b`` (greedy).
                i = a_mid // 2
                j = _nearest_match(core_a[i], core_b, b_mid // 2, counter)
                if j is None:
                    j = b_mid // 2
                    _lcs_fast(core_a[:i], core_b[:j], a_off + prefix,
                              b_off + prefix, counter, cell_limit, out, backend)
                    _lcs_fast(core_a[i:], core_b[j:], a_off + prefix + i,
                              b_off + prefix + j, counter, cell_limit, out, backend)
                else:
                    _lcs_fast(core_a[:i], core_b[:j], a_off + prefix,
                              b_off + prefix, counter, cell_limit, out, backend)
                    out.append((a_off + prefix + i, b_off + prefix + j))
                    _lcs_fast(core_a[i + 1:], core_b[j + 1:],
                              a_off + prefix + i + 1, b_off + prefix + j + 1,
                              counter, cell_limit, out, backend)
            else:
                i, j = anchor
                _lcs_fast(core_a[:i], core_b[:j], a_off + prefix,
                          b_off + prefix, counter, cell_limit, out, backend)
                out.append((a_off + prefix + i, b_off + prefix + j))
                _lcs_fast(core_a[i + 1:], core_b[j + 1:],
                          a_off + prefix + i + 1, b_off + prefix + j + 1,
                          counter, cell_limit, out, backend)
    for i in range(suffix):
        out.append((a_off + len(a_keys) - suffix + i,
                    b_off + len(b_keys) - suffix + i))


def _nearest_match(target_key, b_keys: list, around: int,
                   counter: OpCounter | None) -> int | None:
    """Index of the occurrence of ``target_key`` in ``b_keys`` nearest to
    position ``around``, or None."""
    for distance in range(max(around + 1, len(b_keys) - around)):
        for j in (around - distance, around + distance):
            if 0 <= j < len(b_keys):
                if counter is not None:
                    counter.bump()
                if b_keys[j] == target_key:
                    return j
    return None


def lcs_optimized(a: Sequence, b: Sequence, key: Callable | None = None,
                  counter: OpCounter | None = None,
                  budget: MemoryBudget | None = None,
                  dp_cell_limit: int = 4_000_000,
                  kernel=None) -> LcsResult:
    """The paper's baseline: exact LCS with common-prefix/suffix trimming.

    The middle region runs through the quadratic DP when it fits in
    ``dp_cell_limit`` cells (counting real compares); otherwise the fast
    anchored differ computes the alignment and the DP compare cost
    (``mid_a * mid_b``) is *charged* to the counter, so speedup metrics
    reflect the modelled quadratic baseline.  ``budget`` bounds the middle
    region as if the DP table were allocated, reproducing the paper's
    memory-exhaustion failure mode on very long traces.
    """
    backend = get_backend(kernel)
    a_keys = _keys(a, key)
    b_keys = _keys(b, key)
    prefix, a_mid, b_mid = trim_common(a_keys, b_keys, counter,
                                       kernel=backend)
    if budget is not None:
        budget.request((a_mid + 1) * (b_mid + 1))
    core_a = a_keys[prefix:prefix + a_mid]
    core_b = b_keys[prefix:prefix + b_mid]
    if a_mid * b_mid <= dp_cell_limit:
        core = lcs_dp(core_a, core_b, counter=counter, kernel=backend)
    else:
        core = lcs_fast(core_a, core_b, counter=None,
                        dp_cell_limit=dp_cell_limit, kernel=backend)
        if counter is not None:
            counter.charge(a_mid * b_mid)
    pairs = [(i, i) for i in range(prefix)]
    pairs.extend(core.shifted(prefix, prefix).pairs)
    suffix = len(a_keys) - prefix - a_mid
    for i in range(suffix):
        pairs.append((len(a_keys) - suffix + i, len(b_keys) - suffix + i))
    return LcsResult(pairs)
