"""Core library: the paper's trace model, views, differencing semantics,
and regression-cause analysis."""

from repro.core.anchors import (AnchorConfig, AnchorRun, Gap, Segmentation,
                                merge_segment_results, segment_pair,
                                segment_sequences, select_anchor_runs)
from repro.core.correlation import ViewCorrelator, ancestry_similarity
from repro.core.diffs import DiffResult, DifferenceSequence, build_sequences
from repro.core.entries import EOF, TraceEntry, entries_equal
from repro.core.events import (Call, End, Event, FieldGet, FieldSet, Fork,
                               Init, Return, StackFrame)
from repro.core.keytable import KeyTable
from repro.core.lcs import (LcsBudgetExceeded, LcsMemoryError, LcsResult,
                            MemoryBudget, OpCounter, lcs_bitparallel,
                            lcs_dp, lcs_fast, lcs_hirschberg, lcs_length,
                            lcs_optimized, myers_lcs_length, trim_common)
from repro.core.lcs_diff import lcs_diff
from repro.core.regression import (MODE_INTERSECT, MODE_SUBTRACT,
                                   CandidateSequence, RegressionReport,
                                   TruthEvaluation, analyze_regression,
                                   evaluate_against_truth)
from repro.core.stats import (ACCURACY_BINS, SPEEDUP_BINS, Histogram,
                              accuracy, accuracy_histogram, speedup,
                              speedup_histogram)
from repro.core.traces import Trace, TraceBuilder
from repro.core.values import UNIT, ObjectRegistry, ValueRep, prim
from repro.core.view_diff import ViewDiffConfig, view_diff
from repro.core.views import View, ViewName, ViewType, view_names
from repro.core.web import ObjectInfo, ThreadInfo, ViewWeb

__all__ = [
    "ACCURACY_BINS", "SPEEDUP_BINS", "EOF", "MODE_INTERSECT", "MODE_SUBTRACT",
    "AnchorConfig", "AnchorRun",
    "Call", "CandidateSequence", "DiffResult", "DifferenceSequence", "End",
    "Event", "FieldGet", "FieldSet", "Fork", "Gap", "Histogram", "Init",
    "KeyTable", "LcsBudgetExceeded", "LcsMemoryError", "LcsResult",
    "MemoryBudget",
    "ObjectInfo", "ObjectRegistry", "OpCounter", "RegressionReport", "Return",
    "Segmentation", "StackFrame", "ThreadInfo", "Trace", "TraceBuilder",
    "TraceEntry",
    "TruthEvaluation", "UNIT", "ValueRep", "View", "ViewCorrelator",
    "ViewDiffConfig", "ViewName", "ViewType", "ViewWeb",
    "accuracy", "accuracy_histogram", "analyze_regression",
    "ancestry_similarity", "build_sequences", "entries_equal",
    "evaluate_against_truth", "lcs_bitparallel", "lcs_diff", "lcs_dp",
    "lcs_fast", "lcs_hirschberg", "lcs_length", "lcs_optimized",
    "merge_segment_results", "myers_lcs_length",
    "prim", "segment_pair", "segment_sequences", "select_anchor_runs",
    "speedup", "speedup_histogram", "trim_common", "view_diff",
    "view_names",
]
