"""LCS-based trace differencing (Sec. 3.2, Fig. 11) — the baseline.

Evaluation places into ``sigma`` exactly those entries that belong to the
longest common subsequence of the two traces under event equality ``=e``
(rules STEP-LEFT-LCS / STEP-RIGHT-LCS); everything else is a difference.
The correspondence mapping produced by the LCS lets each contiguous run of
differences be read as an insertion, deletion, or modification.

``lcs_diff`` implements this directly: rather than literally stepping the
small-step rules one entry at a time, the LCS is computed once and the
similarity set read off it — observably the same ``sigma``.

By default the key sequences are *interned* through a
:class:`~repro.core.keytable.KeyTable` shared by the pair, so every
``=e`` compare inside the LCS machinery is an int compare instead of a
nested-tuple walk; interning is a bijection on keys, so the computed
``sigma`` is identical either way.  ``interned=False`` restores the
tuple-key path.
"""

from __future__ import annotations

import time

from repro.core.diffs import DiffResult, build_sequences
from repro.core.keytable import KeyTable
from repro.core.lcs import (LcsResult, MemoryBudget, OpCounter, lcs_dp,
                            lcs_fast, lcs_hirschberg, lcs_optimized)
from repro.core.traces import Trace

#: Selectable baseline algorithms.
ALGORITHMS = ("optimized", "dp", "hirschberg", "fast")


def lcs_diff(left: Trace, right: Trace, algorithm: str = "optimized",
             counter: OpCounter | None = None,
             budget: MemoryBudget | None = None,
             dp_cell_limit: int = 4_000_000,
             interned: bool = True,
             key_table: KeyTable | None = None) -> DiffResult:
    """Difference two traces with the LCS-based semantics of Fig. 11.

    ``algorithm`` selects the LCS implementation: ``"optimized"`` is the
    paper's baseline (common-prefix/suffix trimming + quadratic core);
    ``"dp"`` the untrimmed dynamic program; ``"hirschberg"`` the
    linear-space variant; ``"fast"`` the anchored recursive differ.

    ``budget`` (DP cell cap) models the memory-exhaustion failures the
    paper reports on traces beyond ~100K entries: exceeding it raises
    :class:`repro.core.lcs.LcsMemoryError`.

    ``interned`` compares dense key-table ids instead of key tuples
    (``key_table`` supplies the pair's shared table; one is derived
    from the traces otherwise).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown LCS algorithm: {algorithm!r}")
    if counter is None:
        counter = OpCounter()
    started = time.perf_counter()
    if interned:
        table = key_table if key_table is not None \
            else KeyTable.for_pair(left, right)
        keys_l = table.ids_for(left).tolist()
        keys_r = table.ids_for(right).tolist()
    else:
        keys_l = [entry.key() for entry in left.entries]
        keys_r = [entry.key() for entry in right.entries]

    if algorithm == "optimized":
        result: LcsResult = lcs_optimized(keys_l, keys_r, counter=counter,
                                          budget=budget,
                                          dp_cell_limit=dp_cell_limit)
    elif algorithm == "dp":
        result = lcs_dp(keys_l, keys_r, counter=counter, budget=budget)
    elif algorithm == "hirschberg":
        result = lcs_hirschberg(keys_l, keys_r, counter=counter)
    else:
        result = lcs_fast(keys_l, keys_r, counter=counter,
                          dp_cell_limit=dp_cell_limit)

    match_pairs = [(left.entries[i].eid, right.entries[j].eid)
                   for i, j in result.pairs]
    similar_left = {l for l, _ in match_pairs}
    similar_right = {r for _, r in match_pairs}
    sequences = build_sequences(left, right, match_pairs, similar_left,
                                similar_right)
    elapsed = time.perf_counter() - started
    return DiffResult(
        left=left,
        right=right,
        similar_left=similar_left,
        similar_right=similar_right,
        match_pairs=match_pairs,
        sequences=sequences,
        counter=counter,
        algorithm=f"lcs-{algorithm}",
        seconds=elapsed,
        peak_cells=budget.peak_cells if budget is not None else 0,
    )
