"""LCS-based trace differencing (Sec. 3.2, Fig. 11) — the baseline.

Evaluation places into ``sigma`` exactly those entries that belong to the
longest common subsequence of the two traces under event equality ``=e``
(rules STEP-LEFT-LCS / STEP-RIGHT-LCS); everything else is a difference.
The correspondence mapping produced by the LCS lets each contiguous run of
differences be read as an insertion, deletion, or modification.

``lcs_diff`` implements this directly: rather than literally stepping the
small-step rules one entry at a time, the LCS is computed once and the
similarity set read off it — observably the same ``sigma``.

By default the key sequences are *interned* through a
:class:`~repro.core.keytable.KeyTable` shared by the pair, so every
``=e`` compare inside the LCS machinery is an int compare instead of a
nested-tuple walk; interning is a bijection on keys, so the computed
``sigma`` is identical either way.  ``interned=False`` restores the
tuple-key path.
"""

from __future__ import annotations

import time

from repro.core.anchors import (AnchorConfig, merge_segment_results,
                                segment_pair)
from repro.core.diffs import DiffResult, build_sequences
from repro.core.keytable import KeyTable
from repro.core.lcs import (LcsResult, MemoryBudget, OpCounter,
                            lcs_bitparallel, lcs_dp, lcs_fast,
                            lcs_hirschberg, lcs_optimized)
from repro.core.traces import Trace

#: Selectable baseline algorithms.
ALGORITHMS = ("optimized", "dp", "hirschberg", "fast", "bitparallel")


def lcs_diff(left: Trace, right: Trace, algorithm: str = "optimized",
             counter: OpCounter | None = None,
             budget: MemoryBudget | None = None,
             dp_cell_limit: int = 4_000_000,
             interned: bool = True,
             key_table: KeyTable | None = None,
             anchors: AnchorConfig | None = None,
             kernel: str | None = None) -> DiffResult:
    """Difference two traces with the LCS-based semantics of Fig. 11.

    ``algorithm`` selects the LCS implementation: ``"optimized"`` is the
    paper's baseline (common-prefix/suffix trimming + quadratic core);
    ``"dp"`` the untrimmed dynamic program; ``"hirschberg"`` the
    linear-space variant; ``"fast"`` the anchored recursive differ;
    ``"bitparallel"`` Hirschberg's alignment over the bit-parallel
    Myers/Hyyrö row kernel (pairs and compare counts identical to
    ``"hirschberg"``).

    ``kernel`` selects the compute backend for the inner loops
    (:mod:`repro.core.kernels`: ``scalar`` / ``stdlib`` / ``numpy``;
    ``None`` auto-detects).  Backends are bit-identical and
    compare-count-transparent, so ``sigma``, the sequences and the
    counter totals do not depend on the choice.

    ``budget`` (DP cell cap) models the memory-exhaustion failures the
    paper reports on traces beyond ~100K entries: exceeding it raises
    :class:`repro.core.lcs.LcsMemoryError`.

    ``interned`` compares dense key-table ids instead of key tuples
    (``key_table`` supplies the pair's shared table; one is derived
    from the traces otherwise).

    ``anchors`` enables anchored segmental evaluation
    (:mod:`repro.core.anchors`): the pair is split along patience-style
    ``=e`` anchor runs and this very algorithm runs on each divergent
    gap independently, the per-gap results merged into one full-trace
    result.  On mostly-identical pairs this replaces one huge O(n·m)
    problem with a chain of tiny ones — including under a memory
    ``budget``, where each gap requests only its own DP table.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown LCS algorithm: {algorithm!r}")
    if counter is None:
        counter = OpCounter()
    if anchors is not None:
        return _anchored_lcs_diff(left, right, algorithm, anchors,
                                  counter=counter, budget=budget,
                                  dp_cell_limit=dp_cell_limit,
                                  interned=interned, key_table=key_table,
                                  kernel=kernel)
    started = time.perf_counter()
    if interned:
        table = key_table if key_table is not None \
            else KeyTable.for_pair(left, right)
        keys_l = table.ids_for(left).tolist()
        keys_r = table.ids_for(right).tolist()
    else:
        keys_l = [entry.key() for entry in left.entries]
        keys_r = [entry.key() for entry in right.entries]

    if algorithm == "optimized":
        result: LcsResult = lcs_optimized(keys_l, keys_r, counter=counter,
                                          budget=budget,
                                          dp_cell_limit=dp_cell_limit,
                                          kernel=kernel)
    elif algorithm == "dp":
        result = lcs_dp(keys_l, keys_r, counter=counter, budget=budget,
                        kernel=kernel)
    elif algorithm == "hirschberg":
        result = lcs_hirschberg(keys_l, keys_r, counter=counter,
                                kernel=kernel)
    elif algorithm == "bitparallel":
        result = lcs_bitparallel(keys_l, keys_r, counter=counter,
                                 kernel=kernel)
    else:
        result = lcs_fast(keys_l, keys_r, counter=counter,
                          dp_cell_limit=dp_cell_limit, kernel=kernel)

    match_pairs = [(left.entries[i].eid, right.entries[j].eid)
                   for i, j in result.pairs]
    similar_left = {l for l, _ in match_pairs}
    similar_right = {r for _, r in match_pairs}
    sequences = build_sequences(left, right, match_pairs, similar_left,
                                similar_right)
    elapsed = time.perf_counter() - started
    return DiffResult(
        left=left,
        right=right,
        similar_left=similar_left,
        similar_right=similar_right,
        match_pairs=match_pairs,
        sequences=sequences,
        counter=counter,
        algorithm=f"lcs-{algorithm}",
        seconds=elapsed,
        peak_cells=budget.peak_cells if budget is not None else 0,
    )


def _anchored_lcs_diff(left: Trace, right: Trace, algorithm: str,
                       anchors: AnchorConfig,
                       counter: OpCounter,
                       budget: MemoryBudget | None,
                       dp_cell_limit: int,
                       interned: bool,
                       key_table: KeyTable | None,
                       kernel: str | None = None) -> DiffResult:
    """The anchored segmental path of :func:`lcs_diff` (serial; the
    executor-parallel and segment-cached variant is
    :func:`repro.exec.diffing.anchored_segment_diff`)."""
    started = time.perf_counter()
    table = None
    if interned:
        table = key_table if key_table is not None \
            else KeyTable.for_pair(left, right)
    segmentation = segment_pair(left, right, config=anchors,
                                interned=interned, key_table=table,
                                counter=counter, kernel=kernel)
    gap_results: list[DiffResult | None] = []
    for gap in segmentation.gaps:
        if gap.left_len == 0 or gap.right_len == 0:
            # One-sided gap: pure insertion/deletion, nothing to align.
            gap_results.append(None)
            continue
        gap_results.append(lcs_diff(
            left[gap.left_lo:gap.left_hi],
            right[gap.right_lo:gap.right_hi],
            algorithm=algorithm, counter=counter, budget=budget,
            dp_cell_limit=dp_cell_limit, interned=interned,
            key_table=table, kernel=kernel))
    return merge_segment_results(
        left, right, segmentation, gap_results, counter=counter,
        algorithm=f"anchored-lcs-{algorithm}",
        seconds=time.perf_counter() - started,
        peak_cells=budget.peak_cells if budget is not None else 0)
