"""Measurements of Sec. 5.1: accuracy, speedup, and their histograms.

Accuracy measures how many semantic correlations RPRISM identifies versus
the LCS comparison::

    Accuracy = ((totalEntries - rprismNumDiffs) / totalEntries)
             / ((totalEntries - lcsNumDiffs)   / totalEntries)

Values above 100% mean the views-based differ found *more* correlations
than the LCS (it can match reordered operations the LCS inherently
cannot).  Speedup is the ratio of trace-entry compare operations performed
by the LCS comparison to those performed by RPRISM.

The histogram bin edges replicate Fig. 14's x-axes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fig. 14(a) bin upper bounds (accuracy, as ratios).
ACCURACY_BINS = (0.99, 1.00, 1.05, 1.10, 1.25, 1.50, 2.00)
#: Fig. 14(b) bin upper bounds (speedup, as factors).
SPEEDUP_BINS = (0.5, 1, 5, 10, 50, 100, 500, 1000, 2500, 5000)


def accuracy(total_entries: int, rprism_num_diffs: int,
             lcs_num_diffs: int) -> float:
    """The paper's accuracy ratio (1.0 == "same as LCS")."""
    if total_entries <= 0:
        raise ValueError("total_entries must be positive")
    rprism_score = (total_entries - rprism_num_diffs) / total_entries
    lcs_score = (total_entries - lcs_num_diffs) / total_entries
    if lcs_score <= 0:
        return float("inf") if rprism_score > 0 else 1.0
    return rprism_score / lcs_score


def speedup(lcs_compares: int, rprism_compares: int) -> float:
    """Compare-operation speedup of RPRISM over the LCS baseline."""
    if rprism_compares <= 0:
        return float("inf")
    return lcs_compares / rprism_compares


def bin_index(value: float, bins: tuple[float, ...]) -> int:
    """Index of the first bin whose upper bound is >= value (the paper's
    histograms label bins by upper bound); values beyond the last bound
    land in the last bin."""
    for index, bound in enumerate(bins):
        if value <= bound:
            return index
    return len(bins) - 1


@dataclass(slots=True)
class Histogram:
    """A labelled histogram matching the paper's figure axes."""

    labels: tuple[str, ...]
    counts: list[int]

    def add(self, index: int) -> None:
        self.counts[index] += 1

    def total(self) -> int:
        return sum(self.counts)

    def render(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        peak = max(self.counts) if self.counts else 0
        for label, count in zip(self.labels, self.counts):
            bar = "#" * count
            lines.append(f"  {label:>7} | {bar:<{max(peak, 1)}} ({count})")
        return "\n".join(lines)


def accuracy_histogram(values: list[float]) -> Histogram:
    """Bin accuracy ratios into Fig. 14(a)'s buckets."""
    labels = tuple(f"{int(round(b * 100))}%" for b in ACCURACY_BINS)
    hist = Histogram(labels=labels, counts=[0] * len(ACCURACY_BINS))
    for value in values:
        hist.add(bin_index(value, ACCURACY_BINS))
    return hist


def speedup_histogram(values: list[float]) -> Histogram:
    """Bin speedup factors into Fig. 14(b)'s buckets."""
    labels = tuple(
        f"{b:g}x" for b in SPEEDUP_BINS)
    hist = Histogram(labels=labels, counts=[0] * len(SPEEDUP_BINS))
    for value in values:
        hist.add(bin_index(value, SPEEDUP_BINS))
    return hist


def dynamic_slicing_percentage(candidate_entries: int,
                               executed_entries: int) -> float:
    """The Sec. 6 comparison metric: reported differences as a percentage
    of executed statements (0.1%-1% is considered excellent for dynamic
    slicing; RPRISM reports 0.001%-0.02%)."""
    if executed_entries <= 0:
        raise ValueError("executed_entries must be positive")
    return 100.0 * candidate_entries / executed_entries
