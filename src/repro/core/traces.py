"""Trace containers.

A trace ``gamma = tau_1 . ... . tau_n`` is a sequence of trace entries;
``len(trace)`` is ``|gamma|``.  Traces are identified by a ``name``
(the paper's superscript, e.g. ``gamma^L`` / ``gamma^R``).

``TraceBuilder`` is the write-side used by the interpreter and the capture
layer: it assigns entry identifiers, tracks per-thread call stacks, and owns
the per-trace :class:`~repro.core.values.ObjectRegistry`.
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.entries import TraceEntry
from repro.core.events import (Call, End, Event, FieldGet, FieldSet, Fork,
                               Init, Return, StackFrame)
from repro.core.values import UNIT, ObjectRegistry, ValueRep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.keytable import KeyTable


class LazyEntrySequence:
    """A list-like sequence of :class:`TraceEntry` built on demand.

    The serialisation-v3 decoder hands :class:`Trace` one of these
    instead of a materialised list: ``decode(position)`` constructs the
    entry at an absolute backing position, and every constructed entry
    is memoised in a cache shared by all slices of the sequence, so an
    entry is decoded at most once per loaded trace no matter how the
    trace is sliced.  ``tids`` optionally carries the backing thread-id
    column (any int sequence) so :meth:`Trace.thread_ids` never has to
    materialise entries at all; ``owner`` pins whatever object keeps
    the backing buffer alive (e.g. a mapped shared-memory segment).

    The core layer defines only the container contract; decoders live
    with their formats (:mod:`repro.analysis.serialize`).
    """

    __slots__ = ("_decode", "_positions", "_cache", "_tids", "owner")

    def __init__(self, decode, length: int | None = None, *,
                 tids=None, owner=None, _positions: range | None = None,
                 _cache: "list | None" = None):
        self._decode = decode
        if _positions is None:
            _positions = range(length or 0)
        self._positions = _positions
        self._cache = [None] * len(_positions) if _cache is None else _cache
        self._tids = tids
        self.owner = owner

    def __len__(self) -> int:
        return len(self._positions)

    def _entry_at(self, position: int) -> TraceEntry:
        entry = self._cache[position]
        if entry is None:
            entry = self._cache[position] = self._decode(position)
        return entry

    def __getitem__(self, index):
        if isinstance(index, slice):
            return LazyEntrySequence(self._decode, tids=self._tids,
                                     owner=self.owner,
                                     _positions=self._positions[index],
                                     _cache=self._cache)
        return self._entry_at(self._positions[index])

    def __iter__(self) -> Iterator[TraceEntry]:
        for position in self._positions:
            yield self._entry_at(position)

    def __eq__(self, other):
        if isinstance(other, (list, tuple, LazyEntrySequence)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return (f"LazyEntrySequence({len(self)} entr(ies), "
                f"{sum(1 for p in self._positions if self._cache[p] is not None)} "
                f"materialised)")

    def iter_tids(self):
        """The thread-id column in sequence order, without building a
        single entry — ``None`` when the decoder supplied no column."""
        if self._tids is None:
            return None
        column = self._tids
        return (column[position] for position in self._positions)


class Trace:
    """An immutable-by-convention sequence of trace entries.

    Immutability is what makes the derived data safe to cache: the
    distinct-thread list and the fingerprint are computed at most once,
    and :class:`TraceBuilder` (the only sanctioned mutator) snapshots
    the entry list on every :meth:`TraceBuilder.build`, so a built trace
    never sees later recording.

    ``key_table`` / ``key_ids`` carry the interned ``=e`` representation
    when the trace was ingested through a
    :class:`~repro.core.keytable.KeyTable` (capture with a session
    table, or a format-v2 trace file): ``key_ids[i]`` is the dense id of
    ``entries[i].key()`` in ``key_table``.  Both are ``None`` for
    uninterned traces — every consumer falls back to key tuples.
    """

    __slots__ = ("name", "entries", "metadata", "_key_table", "key_ids",
                 "_thread_ids", "_fingerprint", "_content_digest")

    def __init__(self, entries: Iterable[TraceEntry] = (), name: str = "",
                 metadata: dict | None = None,
                 key_table: "KeyTable | None" = None,
                 key_ids: "array | None" = None):
        self.name = name
        # Lazy sequences stay lazy (copying into a list would defeat
        # the on-demand decode); anything else is snapshotted so the
        # trace owns its entries.
        if isinstance(entries, LazyEntrySequence):
            self.entries = entries
        else:
            self.entries = list(entries)
        self.metadata: dict = metadata or {}
        self._key_table = key_table
        self.key_ids = key_ids
        self._thread_ids: list[int] | None = None
        self._fingerprint: str | None = None
        self._content_digest: str | None = None

    @property
    def key_table(self) -> "KeyTable | None":
        """The trace's interned ``=e`` table (or None).

        Lazy decoders pass a zero-argument *thunk* instead of a table;
        the first access materialises it and caches the result, so a
        v3-loaded trace whose table is never consulted never parses
        its key section at all.
        """
        table = self._key_table
        if callable(table):
            table = table()
            self._key_table = table
        return table

    @key_table.setter
    def key_table(self, table: "KeyTable | None") -> None:
        self._key_table = table

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            # Materialise the selected positions once and apply them to
            # *both* columns: entries (a list) and key_ids (an array, or
            # any caller-provided sequence) must select the exact same
            # positions — including under extended slices (step != 1) —
            # or interned compares on the sliced trace would silently
            # use the wrong ids.
            column = None
            if self.key_ids is not None:
                if len(self.key_ids) != len(self.entries):
                    raise ValueError(
                        f"trace {self.name!r}: key column carries "
                        f"{len(self.key_ids)} id(s) for "
                        f"{len(self.entries)} entries — the trace was "
                        f"mutated after interning; rebuild it instead")
                picked = range(*index.indices(len(self.entries)))
                column = array("I", (self.key_ids[i] for i in picked))
            return Trace(self.entries[index], name=self.name,
                         metadata=dict(self.metadata),
                         key_table=self.key_table,
                         key_ids=column)
        return self.entries[index]

    def thread_ids(self) -> list[int]:
        """Distinct thread identifiers, in order of first appearance
        (computed once; traces are immutable by convention)."""
        if self._thread_ids is None:
            tids = self.entries.iter_tids() \
                if isinstance(self.entries, LazyEntrySequence) else None
            if tids is None:
                tids = (entry.tid for entry in self.entries)
            seen: dict[int, None] = {}
            for tid in tids:
                if tid not in seen:
                    seen[tid] = None
            self._thread_ids = list(seen)
        return list(self._thread_ids)

    def fingerprint(self) -> str:
        """A cheap *provenance* fingerprint (name, length, per-entry
        thread and event kind), cached after the first call.

        **Provenance only** — never an identity.  Two traces with the
        same shape (equal names, lengths, thread columns, and event
        kinds) but different methods, arguments, or values share a
        fingerprint, so it must not be used as a cache key or an
        equality hint; that is :meth:`content_digest`'s job.  The
        fingerprint survives in store metadata because it is priced to
        be callable on every save and is useful for tracing where a
        file came from.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=12)
            digest.update(self.name.encode("utf-8", "replace"))
            digest.update(len(self.entries).to_bytes(8, "little"))
            for entry in self.entries:
                digest.update(b"%d:%s;" % (entry.tid,
                                           entry.event.kind.encode()))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def content_digest(self) -> str:
        """A strong content digest, suitable as a cache key.

        Covers the complete entry sequence: eids, thread ids, methods,
        active object representations, and the full events — a strict
        superset of the ``=e`` key (object locations, creation sequence
        numbers, and the entry identifiers feed the views, the
        correlators, and the eid-addressed diff results even though
        ``=e`` excludes them).  Deliberately *excludes* the trace
        ``name`` and ``metadata`` (provenance, not content), and is
        independent of whether the trace carries an interned key
        column — the same content always digests the same, so
        v2-loaded and freshly captured traces meet in one cache entry.
        Digest equality therefore implies the traces are
        indistinguishable to every differencing engine, which is what
        lets a cached result rehydrate exactly.

        Invalidation semantics: traces are immutable by convention
        (see the class docstring), so the digest is computed once and
        cached.  Code that mutates ``entries`` in place violates that
        convention and must rebuild the trace (``Trace(entries, ...)``)
        to get a fresh digest; the
        :class:`~repro.cache.DiffCache` relies on this.
        """
        if self._content_digest is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(b"trace-content-v1;")
            digest.update(len(self.entries).to_bytes(8, "little"))
            for entry in self.entries:
                # Frozen-dataclass reprs are deterministic functions of
                # the field values (strings, ints, floats, None, and
                # nested tuples/dataclasses), so equal content yields
                # equal bytes across processes and sessions.
                digest.update(repr(entry).encode("utf-8", "replace"))
                digest.update(b";")
            self._content_digest = digest.hexdigest()
        return self._content_digest

    def methods(self) -> set[str]:
        return {entry.method for entry in self.entries}

    def event_kinds(self) -> dict[str, int]:
        """Histogram of event kinds, useful for stats and tests."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            kind = entry.event.kind
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def render(self, limit: int | None = None) -> str:
        """Human-readable dump (mostly for examples and debugging)."""
        lines = []
        shown = self.entries if limit is None else self.entries[:limit]
        for entry in shown:
            lines.append(entry.brief())
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... ({len(self.entries) - limit} more entries)")
        return "\n".join(lines)


@dataclass(slots=True)
class _ThreadState:
    """Book-keeping for one thread while its trace is being generated."""

    tid: int
    stack: list[StackFrame] = field(default_factory=list)
    #: Spawn ancestry: the call stacks at each ancestor's spawn point,
    #: outermost ancestor first (the paper's ``fork(S*)`` payload).
    ancestry: tuple[tuple[StackFrame, ...], ...] = ()

    def snapshot(self) -> tuple[StackFrame, ...]:
        return tuple(self.stack)


class TraceBuilder:
    """Write-side of a trace: event recording with call-stack tracking.

    The builder mirrors the structure the operational semantics maintains —
    an ordered set of stacks ``S*``, one per thread — and exposes one method
    per evaluation rule that records an entry (CONS-E, FIELD-ACC-E,
    FIELD-ASS-E, METH-E, RETURN-E, FORK-E, END-E).
    """

    ROOT_METHOD = "<main>"

    def __init__(self, name: str = "",
                 key_table: "KeyTable | None" = None):
        self.name = name
        self.registry = ObjectRegistry()
        self.key_table = key_table
        self._key_ids: list[int] | None = None if key_table is None else []
        self._entries: list[TraceEntry] = []
        self._threads: dict[int, _ThreadState] = {}
        self._next_tid = 0
        self._next_location = 1
        self.main_tid = self._spawn_thread(ancestry=())

    # -- thread management -------------------------------------------------

    def _spawn_thread(self, ancestry: tuple[tuple[StackFrame, ...], ...]) -> int:
        tid = self._next_tid
        self._next_tid += 1
        self._threads[tid] = _ThreadState(tid=tid, ancestry=ancestry)
        return tid

    def register_thread(self,
                        ancestry: tuple[tuple[StackFrame, ...], ...] = (),
                        ) -> int:
        """Allocate a thread id for a thread not created through a fork
        event (e.g. one that pre-existed trace capture)."""
        return self._spawn_thread(ancestry)

    def thread_state(self, tid: int) -> _ThreadState:
        return self._threads[tid]

    def current_method(self, tid: int) -> str:
        stack = self._threads[tid].stack
        return stack[-1].method if stack else self.ROOT_METHOD

    def current_active(self, tid: int) -> ValueRep | None:
        stack = self._threads[tid].stack
        return stack[-1].callee if stack else None

    def stack_depth(self, tid: int) -> int:
        return len(self._threads[tid].stack)

    # -- low-level entry recording -----------------------------------------

    def _record(self, tid: int, event: Event) -> TraceEntry:
        entry = TraceEntry(
            eid=len(self._entries),
            tid=tid,
            method=self.current_method(tid),
            active=self.current_active(tid),
            event=event,
        )
        self._entries.append(entry)
        if self._key_ids is not None:
            # Ingest-time interning: the ``=e`` key is built exactly
            # once here and compared as an int everywhere downstream.
            self._key_ids.append(self.key_table.intern_entry(entry))
        return entry

    # -- object creation ----------------------------------------------------

    def fresh_location(self) -> int:
        loc = self._next_location
        self._next_location += 1
        return loc

    def record_init(self, tid: int, class_name: str,
                    args: tuple[ValueRep, ...],
                    serialization: object = None,
                    location: int | None = None) -> ValueRep:
        """CONS-E: create an object, returning its representation."""
        if location is None:
            location = self.fresh_location()
        rep = self.registry.register(location, class_name, serialization)
        self._record(tid, Init(class_name=class_name, args=args, obj=rep))
        return rep

    def record_init_event(self, tid: int, class_name: str,
                          args: tuple[ValueRep, ...],
                          obj_rep: ValueRep) -> TraceEntry:
        """CONS-E variant for capture layers that manage their own object
        registry: records the init entry for an already-built
        representation."""
        return self._record(tid, Init(class_name=class_name, args=args,
                                      obj=obj_rep))

    # -- field events ---------------------------------------------------------

    def record_get(self, tid: int, obj: ValueRep, field_name: str,
                   value: ValueRep) -> TraceEntry:
        return self._record(tid, FieldGet(obj, field_name, value))

    def record_set(self, tid: int, obj: ValueRep, field_name: str,
                   value: ValueRep) -> TraceEntry:
        return self._record(tid, FieldSet(obj, field_name, value))

    # -- method events ---------------------------------------------------------

    def record_call(self, tid: int, obj: ValueRep, method: str,
                    args: tuple[ValueRep, ...]) -> TraceEntry:
        """METH-E: the call entry is recorded in the *caller's* context,
        then the new frame is pushed."""
        state = self._threads[tid]
        entry = self._record(tid, Call(obj=obj, method=method, args=args))
        caller = state.stack[-1].callee if state.stack else None
        state.stack.append(StackFrame(method=method, caller=caller, callee=obj))
        return entry

    def record_return(self, tid: int, value: ValueRep = UNIT) -> TraceEntry:
        """RETURN-E: pop the frame, record the return in the caller's
        context."""
        state = self._threads[tid]
        if not state.stack:
            raise RuntimeError(f"return with empty stack on thread {tid}")
        frame = state.stack.pop()
        return self._record(
            tid, Return(obj=frame.callee, method=frame.method, value=value))

    # -- thread events ---------------------------------------------------------

    def record_fork(self, tid: int) -> int:
        """FORK-E: record thread creation, returning the child tid.

        The fork event captures the spawning thread's current call stack
        appended to its own ancestry, giving the child's full parentage.
        """
        parent = self._threads[tid]
        ancestry = parent.ancestry + (parent.snapshot(),)
        child_tid = self._spawn_thread(ancestry)
        self._record(tid, Fork(child_tid=child_tid, ancestry=ancestry))
        return child_tid

    def record_end(self, tid: int) -> TraceEntry:
        """END-E: record thread completion."""
        state = self._threads[tid]
        ancestry = state.ancestry + (state.snapshot(),)
        return self._record(tid, End(tid=tid, ancestry=ancestry))

    # -- finishing -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def build(self, metadata: dict | None = None) -> Trace:
        if self._key_ids is None:
            return Trace(self._entries, name=self.name, metadata=metadata)
        return Trace(self._entries, name=self.name, metadata=metadata,
                     key_table=self.key_table,
                     key_ids=array("I", self._key_ids))
