"""View correlation functions X_chi (Sec. 3.1).

Correlation functions decide whether a view in the left trace semantically
corresponds to a view in the right trace.  One function exists per view
type:

* ``X_TH`` — thread views: all thread pairs are scored by the similarity
  of their spawn ancestry (the call stacks captured at each ancestor's
  spawn point), and a best-match assignment is formed.  The main threads
  (empty ancestry) always correlate.
* ``X_CM`` — method views: two methods correlate iff their fully qualified
  signatures are equal.
* ``X_TO`` / ``X_AO`` — object views: two objects correlate iff their
  value representations are equal, or their (class name, class-specific
  creation sequence number) pairs are equal.

The correlators work on *entries* rather than view names because the
decision may be context-sensitive (value representations live on the
entries).  ``correlate(entry_l, entry_r, vtype)`` returns the pair of view
names, or ``None`` when the views do not correspond — mirroring the
``<bottom, bottom>`` case of Fig. 9.

The relaxed, distance-based correlation RPRISM adds on top (Sec. 5) is
implemented in :mod:`repro.core.view_diff`, which knows the anchor points
the relaxation is measured from.
"""

from __future__ import annotations

from typing import Callable

from repro.core.entries import TraceEntry
from repro.core.keytable import KeyTable
from repro.core.values import ValueRep
from repro.core.views import ViewName, ViewType
from repro.core.web import ObjectInfo, ThreadInfo, ViewWeb


def _ancestry_keys(info: ThreadInfo,
                   frame_key: Callable) -> list[tuple]:
    """Per-level spawn-stack comparison keys, computed once per thread
    (the seed rebuilt every ``frame.key()`` tuple inside the O(T^2)
    scoring loop)."""
    return [tuple(frame_key(frame) for frame in stack)
            for stack in info.ancestry]


def _keyed_similarity(a_stacks: list[tuple], b_stacks: list[tuple]) -> float:
    """Ancestry similarity over precomputed per-level key stacks."""
    if not a_stacks and not b_stacks:
        return 1.0
    if not a_stacks or not b_stacks:
        return 0.0
    levels = max(len(a_stacks), len(b_stacks))
    total = 0.0
    for stack_a, stack_b in zip(a_stacks, b_stacks):
        if not stack_a and not stack_b:
            total += 1.0
            continue
        frames = max(len(stack_a), len(stack_b))
        common = 0
        for ka, kb in zip(stack_a, stack_b):
            if ka == kb:
                common += 1
            else:
                break
        total += common / frames if frames else 1.0
    return total / levels


def ancestry_similarity(a: ThreadInfo, b: ThreadInfo) -> float:
    """Similarity score between two threads' spawn ancestries.

    Compares the per-ancestor spawn stacks outermost-first, scoring each
    level by the longest common prefix of frame keys; levels beyond the
    shorter ancestry score zero.  The result is normalised to [0, 1], with
    1 meaning identical ancestry (including both being main threads).
    """
    frame_key = lambda frame: frame.key()  # noqa: E731
    return _keyed_similarity(_ancestry_keys(a, frame_key),
                             _ancestry_keys(b, frame_key))


class ViewCorrelator:
    """Pairwise view correlation between a left and a right trace web.

    Every comparison key the correlator builds — stack-frame keys for
    X_TH, representation and creation keys for X_TO / X_AO — is
    interned through a *correlator-private* :class:`KeyTable`, so
    scoring compares and hashes dense ints.  The table is private on
    purpose: these keys are only ever compared within one correlator,
    and interning them into a long-lived shared table (a session's
    ingest table) would grow it with every diff.
    """

    def __init__(self, left: ViewWeb, right: ViewWeb,
                 key_table: KeyTable | None = None):
        self.left = left
        self.right = right
        self.key_table = key_table if key_table is not None else KeyTable()
        self._thread_map = self._correlate_threads()
        self._object_map = self._correlate_objects()

    def _key(self, value):
        """Intern a comparison key."""
        return self.key_table.intern(value)

    # -- thread correlation (X_TH) ------------------------------------------

    def _correlate_threads(self) -> dict[int, int]:
        """Best-match assignment over all thread pairs by ancestry score."""
        intern = self.key_table.intern
        frame_key = lambda frame: intern(frame.key())  # noqa: E731
        left_threads = [(lt, _ancestry_keys(lt, frame_key))
                        for lt in self.left.threads.values()]
        right_threads = [(rt, _ancestry_keys(rt, frame_key))
                         for rt in self.right.threads.values()]
        scored: list[tuple[float, int, int]] = []
        for lt, lt_stacks in left_threads:
            for rt, rt_stacks in right_threads:
                score = _keyed_similarity(lt_stacks, rt_stacks)
                if score > 0.0:
                    scored.append((score, lt.tid, rt.tid))
        # Greedy assignment, highest score first; ties broken by tid order
        # so the mapping is deterministic.
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        mapping: dict[int, int] = {}
        used_right: set[int] = set()
        for _score, ltid, rtid in scored:
            if ltid in mapping or rtid in used_right:
                continue
            mapping[ltid] = rtid
            used_right.add(rtid)
        return mapping

    def thread_pairs(self) -> list[tuple[int, int]]:
        """All correlated (left tid, right tid) pairs."""
        return sorted(self._thread_map.items())

    def correlated_thread(self, ltid: int) -> int | None:
        return self._thread_map.get(ltid)

    # -- object correlation (X_TO / X_AO) -----------------------------------

    def _correlate_objects(self) -> dict[int, int]:
        """Map left object locations to right object locations.

        Priority 1: equal non-empty value representations (class name +
        serialisation).  Priority 2: equal (class name, creation sequence
        number).  Each right object is used at most once.
        """
        by_rep: dict[object, list[int]] = {}
        by_seq: dict[object, int] = {}
        for info in self.right.objects.values():
            if info.serialization is not None:
                rep_key = self._key((info.class_name, info.serialization))
                by_rep.setdefault(rep_key, []).append(info.location)
            if info.creation_seq is not None:
                seq_key = self._key((info.class_name, info.creation_seq))
                by_seq[seq_key] = info.location
        mapping: dict[int, int] = {}
        used_right: set[int] = set()
        # Deterministic order: by left location.
        for location in sorted(self.left.objects):
            info = self.left.objects[location]
            chosen: int | None = None
            if info.serialization is not None:
                rep_key = self._key((info.class_name, info.serialization))
                for candidate in by_rep.get(rep_key, ()):
                    if candidate not in used_right:
                        chosen = candidate
                        break
            if chosen is None and info.creation_seq is not None:
                seq_key = self._key((info.class_name, info.creation_seq))
                candidate = by_seq.get(seq_key)
                if candidate is not None and candidate not in used_right:
                    chosen = candidate
            if chosen is not None:
                mapping[location] = chosen
                used_right.add(chosen)
        return mapping

    def correlated_object(self, left_location: int) -> int | None:
        return self._object_map.get(left_location)

    def object_pairs(self) -> list[tuple[int, int]]:
        return sorted(self._object_map.items())

    # -- the generic X_chi entry point ---------------------------------------

    def correlate_keys(self, entry_l: TraceEntry, entry_r: TraceEntry,
                       vtype: ViewType) -> tuple | None:
        """``X_chi(tau_l, tau_r)`` over raw view keys: the correlated
        ``(kappa_l, kappa_r)`` pair of type ``vtype`` containing the two
        entries, or ``None`` — the hot-path variant of :meth:`correlate`
        (no ViewName objects are built)."""
        if vtype is ViewType.THREAD:
            if self._thread_map.get(entry_l.tid) == entry_r.tid:
                return (entry_l.tid, entry_r.tid)
            return None
        if vtype is ViewType.METHOD:
            if entry_l.method == entry_r.method:
                return (entry_l.method, entry_r.method)
            return None
        if vtype is ViewType.TARGET_OBJECT:
            return self._object_key_pair(entry_l.event.target(),
                                         entry_r.event.target())
        if vtype is ViewType.ACTIVE_OBJECT:
            return self._object_key_pair(entry_l.active, entry_r.active)
        raise ValueError(f"unknown view type: {vtype}")

    def correlate(self, entry_l: TraceEntry, entry_r: TraceEntry,
                  vtype: ViewType) -> tuple[ViewName, ViewName] | None:
        """``X_chi(tau_l, tau_r)``: the correlated view-name pair of type
        ``vtype`` containing the two entries, or ``None``."""
        keys = self.correlate_keys(entry_l, entry_r, vtype)
        if keys is None:
            return None
        return (ViewName(vtype, keys[0]), ViewName(vtype, keys[1]))

    def _object_key_pair(self, left_obj: ValueRep | None,
                         right_obj: ValueRep | None) -> tuple | None:
        if (left_obj is None or right_obj is None
                or left_obj.location is None or right_obj.location is None):
            return None
        if self._object_map.get(left_obj.location) == right_obj.location:
            return (left_obj.location, right_obj.location)
        return None

    # -- bulk correlated view pairs ------------------------------------------

    def correlated_view_pairs(self, vtype: ViewType) -> list[
            tuple[ViewName, ViewName]]:
        """All correlated view-name pairs of the given type that exist as
        materialised views in both webs."""
        pairs: list[tuple[ViewName, ViewName]] = []
        if vtype is ViewType.THREAD:
            for ltid, rtid in self.thread_pairs():
                ln = ViewName(vtype, ltid)
                rn = ViewName(vtype, rtid)
                if self.left.view(ln) and self.right.view(rn):
                    pairs.append((ln, rn))
        elif vtype is ViewType.METHOD:
            left_names = set(self.left.view_names_of_type(vtype))
            for rn in self.right.view_names_of_type(vtype):
                ln = ViewName(vtype, rn.key)
                if ln in left_names:
                    pairs.append((ln, rn))
            pairs.sort(key=lambda p: str(p[0].key))
        else:
            for lloc, rloc in self.object_pairs():
                ln = ViewName(vtype, lloc)
                rn = ViewName(vtype, rloc)
                if self.left.view(ln) and self.right.view(rn):
                    pairs.append((ln, rn))
        return pairs


def object_identity_key(info: ObjectInfo) -> tuple:
    """Cross-version identity heuristic used in tests and reports."""
    if info.serialization is not None:
        return ("rep", info.class_name, info.serialization)
    return ("seq", info.class_name, info.creation_seq)
