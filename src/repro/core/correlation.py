"""View correlation functions X_chi (Sec. 3.1).

Correlation functions decide whether a view in the left trace semantically
corresponds to a view in the right trace.  One function exists per view
type:

* ``X_TH`` — thread views: all thread pairs are scored by the similarity
  of their spawn ancestry (the call stacks captured at each ancestor's
  spawn point), and a best-match assignment is formed.  The main threads
  (empty ancestry) always correlate.
* ``X_CM`` — method views: two methods correlate iff their fully qualified
  signatures are equal.
* ``X_TO`` / ``X_AO`` — object views: two objects correlate iff their
  value representations are equal, or their (class name, class-specific
  creation sequence number) pairs are equal.

The correlators work on *entries* rather than view names because the
decision may be context-sensitive (value representations live on the
entries).  ``correlate(entry_l, entry_r, vtype)`` returns the pair of view
names, or ``None`` when the views do not correspond — mirroring the
``<bottom, bottom>`` case of Fig. 9.

The relaxed, distance-based correlation RPRISM adds on top (Sec. 5) is
implemented in :mod:`repro.core.view_diff`, which knows the anchor points
the relaxation is measured from.
"""

from __future__ import annotations

from repro.core.entries import TraceEntry
from repro.core.values import ValueRep
from repro.core.views import ViewName, ViewType
from repro.core.web import ObjectInfo, ThreadInfo, ViewWeb


def ancestry_similarity(a: ThreadInfo, b: ThreadInfo) -> float:
    """Similarity score between two threads' spawn ancestries.

    Compares the per-ancestor spawn stacks outermost-first, scoring each
    level by the longest common prefix of frame keys; levels beyond the
    shorter ancestry score zero.  The result is normalised to [0, 1], with
    1 meaning identical ancestry (including both being main threads).
    """
    if not a.ancestry and not b.ancestry:
        return 1.0
    if not a.ancestry or not b.ancestry:
        return 0.0
    levels = max(len(a.ancestry), len(b.ancestry))
    total = 0.0
    for depth in range(levels):
        if depth >= len(a.ancestry) or depth >= len(b.ancestry):
            continue
        stack_a = a.ancestry[depth]
        stack_b = b.ancestry[depth]
        if not stack_a and not stack_b:
            total += 1.0
            continue
        frames = max(len(stack_a), len(stack_b))
        common = 0
        for fa, fb in zip(stack_a, stack_b):
            if fa.key() == fb.key():
                common += 1
            else:
                break
        total += common / frames if frames else 1.0
    return total / levels


class ViewCorrelator:
    """Pairwise view correlation between a left and a right trace web."""

    def __init__(self, left: ViewWeb, right: ViewWeb):
        self.left = left
        self.right = right
        self._thread_map = self._correlate_threads()
        self._object_map = self._correlate_objects()

    # -- thread correlation (X_TH) ------------------------------------------

    def _correlate_threads(self) -> dict[int, int]:
        """Best-match assignment over all thread pairs by ancestry score."""
        left_threads = list(self.left.threads.values())
        right_threads = list(self.right.threads.values())
        scored: list[tuple[float, int, int]] = []
        for lt in left_threads:
            for rt in right_threads:
                score = ancestry_similarity(lt, rt)
                if score > 0.0:
                    scored.append((score, lt.tid, rt.tid))
        # Greedy assignment, highest score first; ties broken by tid order
        # so the mapping is deterministic.
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        mapping: dict[int, int] = {}
        used_right: set[int] = set()
        for _score, ltid, rtid in scored:
            if ltid in mapping or rtid in used_right:
                continue
            mapping[ltid] = rtid
            used_right.add(rtid)
        return mapping

    def thread_pairs(self) -> list[tuple[int, int]]:
        """All correlated (left tid, right tid) pairs."""
        return sorted(self._thread_map.items())

    def correlated_thread(self, ltid: int) -> int | None:
        return self._thread_map.get(ltid)

    # -- object correlation (X_TO / X_AO) -----------------------------------

    def _correlate_objects(self) -> dict[int, int]:
        """Map left object locations to right object locations.

        Priority 1: equal non-empty value representations (class name +
        serialisation).  Priority 2: equal (class name, creation sequence
        number).  Each right object is used at most once.
        """
        by_rep: dict[tuple, list[int]] = {}
        by_seq: dict[tuple, int] = {}
        for info in self.right.objects.values():
            if info.serialization is not None:
                rep_key = (info.class_name, info.serialization)
                by_rep.setdefault(rep_key, []).append(info.location)
            if info.creation_seq is not None:
                by_seq[(info.class_name, info.creation_seq)] = info.location
        mapping: dict[int, int] = {}
        used_right: set[int] = set()
        # Deterministic order: by left location.
        for location in sorted(self.left.objects):
            info = self.left.objects[location]
            chosen: int | None = None
            if info.serialization is not None:
                for candidate in by_rep.get(
                        (info.class_name, info.serialization), ()):
                    if candidate not in used_right:
                        chosen = candidate
                        break
            if chosen is None and info.creation_seq is not None:
                candidate = by_seq.get((info.class_name, info.creation_seq))
                if candidate is not None and candidate not in used_right:
                    chosen = candidate
            if chosen is not None:
                mapping[location] = chosen
                used_right.add(chosen)
        return mapping

    def correlated_object(self, left_location: int) -> int | None:
        return self._object_map.get(left_location)

    def object_pairs(self) -> list[tuple[int, int]]:
        return sorted(self._object_map.items())

    # -- the generic X_chi entry point ---------------------------------------

    def correlate(self, entry_l: TraceEntry, entry_r: TraceEntry,
                  vtype: ViewType) -> tuple[ViewName, ViewName] | None:
        """``X_chi(tau_l, tau_r)``: the correlated view-name pair of type
        ``vtype`` containing the two entries, or ``None``."""
        if vtype is ViewType.THREAD:
            if self._thread_map.get(entry_l.tid) == entry_r.tid:
                return (ViewName(vtype, entry_l.tid),
                        ViewName(vtype, entry_r.tid))
            return None
        if vtype is ViewType.METHOD:
            if entry_l.method == entry_r.method:
                return (ViewName(vtype, entry_l.method),
                        ViewName(vtype, entry_r.method))
            return None
        if vtype is ViewType.TARGET_OBJECT:
            left_obj = entry_l.event.target()
            right_obj = entry_r.event.target()
            return self._object_view_pair(left_obj, right_obj, vtype)
        if vtype is ViewType.ACTIVE_OBJECT:
            return self._object_view_pair(entry_l.active, entry_r.active,
                                          vtype)
        raise ValueError(f"unknown view type: {vtype}")

    def _object_view_pair(self, left_obj: ValueRep | None,
                          right_obj: ValueRep | None,
                          vtype: ViewType) -> tuple[ViewName, ViewName] | None:
        if (left_obj is None or right_obj is None
                or left_obj.location is None or right_obj.location is None):
            return None
        if self._object_map.get(left_obj.location) == right_obj.location:
            return (ViewName(vtype, left_obj.location),
                    ViewName(vtype, right_obj.location))
        return None

    # -- bulk correlated view pairs ------------------------------------------

    def correlated_view_pairs(self, vtype: ViewType) -> list[
            tuple[ViewName, ViewName]]:
        """All correlated view-name pairs of the given type that exist as
        materialised views in both webs."""
        pairs: list[tuple[ViewName, ViewName]] = []
        if vtype is ViewType.THREAD:
            for ltid, rtid in self.thread_pairs():
                ln = ViewName(vtype, ltid)
                rn = ViewName(vtype, rtid)
                if self.left.view(ln) and self.right.view(rn):
                    pairs.append((ln, rn))
        elif vtype is ViewType.METHOD:
            left_names = set(self.left.view_names_of_type(vtype))
            for rn in self.right.view_names_of_type(vtype):
                ln = ViewName(vtype, rn.key)
                if ln in left_names:
                    pairs.append((ln, rn))
            pairs.sort(key=lambda p: str(p[0].key))
        else:
            for lloc, rloc in self.object_pairs():
                ln = ViewName(vtype, lloc)
                rn = ViewName(vtype, rloc)
                if self.left.view(ln) and self.right.view(rn):
                    pairs.append((ln, rn))
        return pairs


def object_identity_key(info: ObjectInfo) -> tuple:
    """Cross-version identity heuristic used in tests and reports."""
    if info.serialization is not None:
        return ("rep", info.class_name, info.serialization)
    return ("seq", info.class_name, info.creation_seq)
