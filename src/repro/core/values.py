"""Value and object representations used in trace entries.

The paper's trace grammar (Fig. 4) represents an object simply by its
location ``l``.  For cross-version differencing, Fig. 8 extends the
representation to a tuple ``<l, r>`` where ``r`` is a recursively computed
*serialisation* of the object's value.  Locations are meaningless across
program versions, so event equality (``=e``) and object-view correlation
compare serialisations, never locations.

``ValueRep`` below carries both halves of the extended representation plus
two pieces of derived trace data used by the correlation functions of
Sec. 3.1:

* ``class_name`` — the dynamic type of the value.
* ``creation_seq`` — the class-specific object creation sequence number
  ("derivable from trace data" per the paper), used by X_TO / X_AO when
  serialisations are unavailable or empty.

The RPRISM implementation approximates serialisations with Java's
``hashCode``/``toString`` truncated to 128 characters, forcing the
representation to be empty when a class inherits the defaults from
``java.lang.Object`` (such strings embed identity hashes and are useless
across versions).  ``repr_string`` mirrors this for Python: callers pass the
already-vetted printable form, or ``None`` for the "empty" representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Maximum length of a string-valued serialisation, matching RPRISM's
#: truncation of ``toString`` output.
REPR_TRUNCATION = 128

#: Primitive type tags (the paper's value-object domain ``D``).
PRIM_CLASSES = {
    bool: "Bool",
    int: "Int",
    float: "Float",
    str: "Str",
    bytes: "Bytes",
    type(None): "Null",
}


def truncate_repr(text: str, limit: int = REPR_TRUNCATION) -> str:
    """Truncate a printable representation to ``limit`` characters."""
    if len(text) <= limit:
        return text
    return text[:limit]


@dataclass(frozen=True, slots=True)
class ValueRep:
    """Extended object representation ``<l, r>`` (Fig. 8).

    ``serialization`` is a hashable summary of the value (``r`` in the
    paper): for primitives the ``(D, d)`` pair, for objects either a
    truncated printable form or a recursive tuple of field representations.
    An empty serialisation is represented by ``None``.

    ``location`` (``l``) is the per-trace store location; it identifies the
    object *within one trace* and deliberately does not participate in
    cross-trace equality (see :meth:`key`).
    """

    class_name: str
    serialization: object = None
    location: int | None = None
    creation_seq: int | None = None

    def key(self) -> tuple:
        """Location-free comparison key used by event equality ``=e``."""
        return (self.class_name, self.serialization)

    def __repr__(self) -> str:
        # Byte-identical to the generated dataclass repr (the trace
        # content digest hashes these strings, so the format is part of
        # digest stability) — hand-written because repr is on the
        # digest hot path and the generated one is several times
        # slower.
        return (f"ValueRep(class_name={self.class_name!r}, "
                f"serialization={self.serialization!r}, "
                f"location={self.location!r}, "
                f"creation_seq={self.creation_seq!r})")

    @property
    def is_primitive(self) -> bool:
        return self.location is None and self.creation_seq is None

    def brief(self) -> str:
        """Short printable form for reports."""
        if self.is_primitive:
            return f"{self.class_name}({self.serialization!r})"
        seq = "?" if self.creation_seq is None else self.creation_seq
        return f"{self.class_name}-{seq}"

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.brief()


#: Representation of "no value" (e.g. the return value of a void method).
UNIT = ValueRep(class_name="Unit", serialization=None)


def prim(value: object) -> ValueRep:
    """Build the representation of a primitive value (rule E# for ``D(d)``).

    Raises ``TypeError`` for non-primitive inputs; object representations
    must be built by the store/capture layer that knows locations and
    creation sequence numbers.
    """
    cls = PRIM_CLASSES.get(type(value))
    if cls is None:
        raise TypeError(f"not a primitive value: {value!r}")
    if isinstance(value, str):
        value = truncate_repr(value)
    return ValueRep(class_name=cls, serialization=value)


@dataclass(slots=True)
class ObjectRegistry:
    """Tracks per-class creation sequence numbers and location metadata.

    One registry exists per trace being generated.  ``register`` is called
    when an object is created, yielding its class-specific creation
    sequence number; ``describe`` rebuilds a :class:`ValueRep` for a known
    location (used when an object shows up again later in the trace).
    """

    _next_seq: dict[str, int] = field(default_factory=dict)
    _by_location: dict[int, ValueRep] = field(default_factory=dict)

    def register(self, location: int, class_name: str,
                 serialization: object = None) -> ValueRep:
        seq = self._next_seq.get(class_name, 0) + 1
        self._next_seq[class_name] = seq
        rep = ValueRep(class_name=class_name, serialization=serialization,
                       location=location, creation_seq=seq)
        self._by_location[location] = rep
        return rep

    def describe(self, location: int) -> ValueRep:
        try:
            return self._by_location[location]
        except KeyError:
            raise KeyError(f"unknown location: {location}") from None

    def update_serialization(self, location: int,
                             serialization: object) -> ValueRep:
        """Refresh the stored serialisation after the object mutates."""
        old = self.describe(location)
        rep = ValueRep(class_name=old.class_name, serialization=serialization,
                       location=location, creation_seq=old.creation_seq)
        self._by_location[location] = rep
        return rep

    def known_locations(self) -> list[int]:
        return list(self._by_location)

    def creation_count(self, class_name: str) -> int:
        return self._next_seq.get(class_name, 0)
