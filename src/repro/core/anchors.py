"""Anchored segmental differencing: patience-style ``=e`` anchors.

The paper's premise is that a regression trace pair is *mostly
identical* — yet every whole-pair differencing pass still walks the full
O(n·m) problem even when 95% of the entries align trivially.  This
module turns the interned ``=e`` id columns of
:class:`~repro.core.keytable.KeyTable` into *anchors*: maximal aligned
runs of entries that any reasonable alignment must match, selected the
way patience diff selects its pivots.

Selection pipeline (:func:`select_anchor_runs`):

1. **Candidates** — keys whose occurrence count is equal on both sides
   and at most ``max_occurrence`` (1 is classic patience: unique in
   both; larger values admit histogram-style low-frequency keys, k-th
   occurrence paired with k-th occurrence).  Candidate discovery is
   pure hashing — it performs no ``=e`` compares.
2. **LIS** — the longest chain of candidates increasing on both sides
   (patience algorithm, O(k log k)), discarding crossing pairs so the
   anchors are a monotonic correspondence.
3. **Coalescing & extension** — chain pairs adjacent on both sides fuse
   into runs, and each run is greedily extended outward while the
   neighbouring entries stay ``=e``-equal (these *are* real compares
   and are charged to the :class:`~repro.core.lcs.OpCounter`).
4. **min-run filter** — runs shorter than ``min_run`` are dropped: a
   lone anchor in conflicting context (the classic patience failure
   mode) is cheaper to re-derive inside its gap than to trust.

:func:`segment_pair` slices a trace pair along the surviving runs into
an alternating sequence of *common runs* and *gaps*; a segmental driver
(:func:`~repro.core.lcs_diff.lcs_diff` with ``anchors=``, or the
``anchored:*`` engines of :mod:`repro.api.engines`) then runs a full
differencing engine on each gap independently and
:func:`merge_segment_results` folds the per-gap results back into one
full-trace :class:`~repro.core.diffs.DiffResult` — matched pairs are
already expressed in original entry ids (trace slices preserve
``eid``\\ s), similarity sets union, and difference sequences are
re-segmented over the whole pair so the merged result is
indistinguishable from a whole-pair evaluation.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.diffs import DiffResult, build_sequences
from repro.core.kernels import get_backend
from repro.core.keytable import KeyTable
from repro.core.lcs import OpCounter
from repro.core.traces import Trace


@dataclass(slots=True, frozen=True)
class AnchorConfig:
    """Tunable parameters of anchor selection."""

    #: Anchor runs shorter than this (after coalescing and extension)
    #: are dropped — short runs are the ones whose context can
    #: contradict them.
    min_run: int = 2
    #: Keys occurring at most this many times on *both* sides (with
    #: equal counts) are anchor candidates.  1 is classic patience
    #: (unique-unique); larger values admit histogram-style
    #: low-frequency keys.
    max_occurrence: int = 1
    #: Method names predicted unstable (e.g. by
    #: :func:`repro.static.impact.predict_impact`): entries of these
    #: methods are excluded from anchor *candidacy*, biasing anchor
    #: selection toward predicted-stable regions.  Extension may still
    #: grow a run into a hinted region — those entries are verified
    #: ``=e``-equal, so results are unchanged; only where anchors land
    #: (and hence the compare counts) shifts.
    exclude_methods: tuple[str, ...] = ()

    @classmethod
    def from_view_config(cls, config) -> "AnchorConfig":
        """The anchor knobs carried by a
        :class:`~repro.core.view_diff.ViewDiffConfig` (duck-typed to
        avoid the import cycle — ``view_diff`` imports this module)."""
        return cls(min_run=config.anchor_min_run,
                   max_occurrence=config.anchor_max_occurrence,
                   exclude_methods=tuple(
                       getattr(config, "anchor_method_hints", ()) or ()))


@dataclass(slots=True, frozen=True)
class AnchorRun:
    """One maximal aligned common run: ``left_keys[left + k] ==
    right_keys[right + k]`` for ``k in range(length)``."""

    left: int
    right: int
    length: int


@dataclass(slots=True, frozen=True)
class Gap:
    """One divergent region between consecutive anchor runs
    (half-open position ranges; either side may be empty)."""

    left_lo: int
    left_hi: int
    right_lo: int
    right_hi: int

    @property
    def left_len(self) -> int:
        return self.left_hi - self.left_lo

    @property
    def right_len(self) -> int:
        return self.right_hi - self.right_lo


@dataclass(slots=True)
class Segmentation:
    """A trace pair split into aligned common runs and divergent gaps.

    ``runs`` and ``gaps`` are both ordered and strictly increasing on
    both sides; together they cover each sequence exactly once (gaps
    where both sides are empty are omitted).
    """

    runs: list[AnchorRun] = field(default_factory=list)
    gaps: list[Gap] = field(default_factory=list)
    left_len: int = 0
    right_len: int = 0
    #: How many candidate anchor pairs selection started from, and how
    #: many survived the LIS — the ``--anchor-stats`` numbers.
    candidates: int = 0
    chained: int = 0

    def anchored_entries(self) -> int:
        """Entries per side covered by anchor runs."""
        return sum(run.length for run in self.runs)

    def gap_entries(self) -> tuple[int, int]:
        return (sum(gap.left_len for gap in self.gaps),
                sum(gap.right_len for gap in self.gaps))

    def largest_gap(self) -> tuple[int, int]:
        if not self.gaps:
            return (0, 0)
        worst = max(self.gaps, key=lambda g: g.left_len * g.right_len)
        return (worst.left_len, worst.right_len)

    def render(self) -> str:
        anchored = self.anchored_entries()
        gap_l, gap_r = self.gap_entries()
        big_l, big_r = self.largest_gap()
        lines = [
            f"anchors: {len(self.runs)} run(s) covering "
            f"{anchored}/{self.left_len} left and "
            f"{anchored}/{self.right_len} right entries",
            f"  candidates: {self.candidates} pair(s), "
            f"{self.chained} after LIS ordering",
            f"  gaps: {len(self.gaps)} ({gap_l} left / {gap_r} right "
            f"entries, largest {big_l}x{big_r})",
        ]
        return "\n".join(lines)


# -- selection ---------------------------------------------------------------


def anchor_candidates(keys_l: Sequence, keys_r: Sequence,
                      max_occurrence: int = 1) -> list[tuple[int, int]]:
    """Candidate anchor pairs, sorted by left position.

    A key qualifies when it occurs the *same* number of times on both
    sides and at most ``max_occurrence`` times; its k-th left
    occurrence pairs with its k-th right occurrence.  Pure hashing —
    no ``=e`` compares are performed.
    """
    overflow = max_occurrence + 1

    def positions(keys: Sequence) -> dict:
        at: dict = {}
        for pos, key in enumerate(keys):
            got = at.get(key)
            if got is None:
                at[key] = [pos]
            elif len(got) < overflow:
                # Positions beyond the overflow cap are never read (the
                # key is already disqualified), so don't store them.
                got.append(pos)
        return at

    left_at = positions(keys_l)
    right_at = positions(keys_r)
    pairs: list[tuple[int, int]] = []
    for key, lpos in left_at.items():
        if len(lpos) > max_occurrence:
            continue
        rpos = right_at.get(key)
        if rpos is None or len(rpos) != len(lpos):
            continue
        pairs.extend(zip(lpos, rpos))
    pairs.sort()
    return pairs


def _increasing_chain(pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """The longest subsequence of ``pairs`` (sorted by left position,
    left positions distinct) whose right positions strictly increase —
    the patience-sort LIS, O(k log k)."""
    if not pairs:
        return []
    tails: list[int] = []          # minimal tail right-position per length
    tails_at: list[int] = []       # index into pairs achieving that tail
    back = [-1] * len(pairs)
    for index, (_left, right) in enumerate(pairs):
        at = bisect_left(tails, right)
        if at == len(tails):
            tails.append(right)
            tails_at.append(index)
        else:
            tails[at] = right
            tails_at[at] = index
        back[index] = tails_at[at - 1] if at else -1
    chain: list[tuple[int, int]] = []
    index = tails_at[-1]
    while index != -1:
        chain.append(pairs[index])
        index = back[index]
    chain.reverse()
    return chain


def _coalesce(chain: list[tuple[int, int]]) -> list[AnchorRun]:
    """Fuse chain pairs adjacent on both sides into runs."""
    runs: list[AnchorRun] = []
    for left, right in chain:
        if runs:
            last = runs[-1]
            if left == last.left + last.length \
                    and right == last.right + last.length:
                runs[-1] = AnchorRun(last.left, last.right,
                                     last.length + 1)
                continue
        runs.append(AnchorRun(left, right, 1))
    return runs


def _extend(runs: list[AnchorRun], keys_l: Sequence, keys_r: Sequence,
            counter: OpCounter | None, kernel=None) -> list[AnchorRun]:
    """Greedily extend each run outward while neighbours stay equal
    (real ``=e`` compares — charged), merging runs that meet.

    The probe scans run through the kernel backend
    (:mod:`repro.core.kernels`); the counter is credited with exactly
    the scalar loops' compares — one per extension step, plus the
    probe that stopped a scan short of its bound.
    """
    backend = get_backend(kernel)
    extended: list[AnchorRun] = []
    for position, run in enumerate(runs):
        left, right, length = run.left, run.right, run.length
        if extended:
            prev = extended[-1]
            floor_l = prev.left + prev.length
            floor_r = prev.right + prev.length
        else:
            floor_l = floor_r = 0
        limit = min(left - floor_l, right - floor_r)
        back = backend.common_run_back(keys_l, keys_r, left, right, limit)
        if counter is not None:
            counter.bump(back + (1 if back < limit else 0))
        left -= back
        right -= back
        length += back
        if position + 1 < len(runs):
            ceil_l = runs[position + 1].left
            ceil_r = runs[position + 1].right
        else:
            ceil_l = len(keys_l)
            ceil_r = len(keys_r)
        limit = min(ceil_l - left, ceil_r - right) - length
        ahead = backend.common_run(keys_l, keys_r, left + length,
                                   right + length, limit)
        if counter is not None:
            counter.bump(ahead + (1 if ahead < limit else 0))
        length += ahead
        if extended:
            prev = extended[-1]
            if left == prev.left + prev.length \
                    and right == prev.right + prev.length:
                extended[-1] = AnchorRun(prev.left, prev.right,
                                         prev.length + length)
                continue
        extended.append(AnchorRun(left, right, length))
    return extended


def _select(keys_l: Sequence, keys_r: Sequence,
            config: AnchorConfig | None,
            counter: OpCounter | None,
            kernel=None,
            exclude_left: "set[int] | None" = None,
            exclude_right: "set[int] | None" = None
            ) -> tuple[list[AnchorRun], int, int]:
    """The one selection pipeline both public entry points share:
    ``(surviving runs, candidate count, chained count)``.

    ``exclude_left``/``exclude_right`` are position sets barred from
    anchor candidacy (the method-hint bias; see
    :attr:`AnchorConfig.exclude_methods`)."""
    if config is None:
        config = AnchorConfig()
    pairs = anchor_candidates(keys_l, keys_r, config.max_occurrence)
    if exclude_left or exclude_right:
        exclude_left = exclude_left or set()
        exclude_right = exclude_right or set()
        pairs = [(left, right) for left, right in pairs
                 if left not in exclude_left
                 and right not in exclude_right]
    chain = _increasing_chain(pairs)
    runs = [run for run in _extend(_coalesce(chain), keys_l, keys_r,
                                   counter, kernel=kernel)
            if run.length >= config.min_run]
    return runs, len(pairs), len(chain)


def select_anchor_runs(keys_l: Sequence, keys_r: Sequence,
                       config: AnchorConfig | None = None,
                       counter: OpCounter | None = None,
                       kernel=None,
                       exclude_left: "set[int] | None" = None,
                       exclude_right: "set[int] | None" = None
                       ) -> list[AnchorRun]:
    """The full selection pipeline (see module docstring); ``keys``
    may be interned id columns or raw ``=e`` key tuples — anything
    hashable and comparable.  ``kernel`` selects the compare-scan
    backend (:mod:`repro.core.kernels`); counts are unchanged."""
    return _select(keys_l, keys_r, config, counter, kernel=kernel,
                   exclude_left=exclude_left,
                   exclude_right=exclude_right)[0]


def segment_sequences(keys_l: Sequence, keys_r: Sequence,
                      config: AnchorConfig | None = None,
                      counter: OpCounter | None = None,
                      kernel=None,
                      exclude_left: "set[int] | None" = None,
                      exclude_right: "set[int] | None" = None
                      ) -> Segmentation:
    """Segment two key sequences along their selected anchor runs."""
    runs, candidates, chained = _select(keys_l, keys_r, config, counter,
                                        kernel=kernel,
                                        exclude_left=exclude_left,
                                        exclude_right=exclude_right)
    gaps: list[Gap] = []
    at_l = at_r = 0
    for run in runs:
        if run.left > at_l or run.right > at_r:
            gaps.append(Gap(at_l, run.left, at_r, run.right))
        at_l = run.left + run.length
        at_r = run.right + run.length
    if at_l < len(keys_l) or at_r < len(keys_r):
        gaps.append(Gap(at_l, len(keys_l), at_r, len(keys_r)))
    return Segmentation(runs=runs, gaps=gaps, left_len=len(keys_l),
                        right_len=len(keys_r), candidates=candidates,
                        chained=chained)


def segment_pair(left: Trace, right: Trace,
                 config: AnchorConfig | None = None,
                 interned: bool = True,
                 key_table: KeyTable | None = None,
                 counter: OpCounter | None = None,
                 kernel=None) -> Segmentation:
    """Segment a trace pair on its ``=e`` keys.

    With ``interned`` (the default) both traces are expressed as dense
    id columns of one shared :class:`KeyTable` (``key_table`` if given,
    derived from the pair otherwise); interning is a bijection on keys,
    so the segmentation is identical to the tuple-key path's.
    """
    if interned:
        table = key_table if key_table is not None \
            else KeyTable.for_pair(left, right)
        keys_l = table.ids_for(left).tolist()
        keys_r = table.ids_for(right).tolist()
    else:
        keys_l = [entry.key() for entry in left.entries]
        keys_r = [entry.key() for entry in right.entries]
    exclude_l = exclude_r = None
    if config is not None and config.exclude_methods:
        hinted = set(config.exclude_methods)
        exclude_l = {pos for pos, entry in enumerate(left.entries)
                     if entry.method in hinted}
        exclude_r = {pos for pos, entry in enumerate(right.entries)
                     if entry.method in hinted}
    return segment_sequences(keys_l, keys_r, config=config,
                             counter=counter, kernel=kernel,
                             exclude_left=exclude_l,
                             exclude_right=exclude_r)


# -- merging -----------------------------------------------------------------


def merge_segment_results(left: Trace, right: Trace,
                          segmentation: Segmentation,
                          gap_results: "list[DiffResult | None]",
                          counter: OpCounter,
                          algorithm: str = "anchored",
                          seconds: float = 0.0,
                          peak_cells: int = 0) -> DiffResult:
    """Fold per-gap diff results and anchor runs into one full-trace
    :class:`DiffResult`.

    ``gap_results`` aligns with ``segmentation.gaps``; ``None`` entries
    stand for gaps that needed no diff (one side empty — every entry is
    a plain insertion/deletion).  Gap results are expressed in original
    entry ids already (trace slices preserve ``eid``), so merging is
    pure bookkeeping: marks union, matched pairs concatenate in
    positional order, and difference sequences are rebuilt over the
    whole pair exactly the way a whole-pair evaluation builds them.
    """
    if len(gap_results) != len(segmentation.gaps):
        raise ValueError(
            f"{len(gap_results)} gap result(s) for "
            f"{len(segmentation.gaps)} gap(s)")
    similar_left: set[int] = set()
    similar_right: set[int] = set()
    match_pairs: list[tuple[int, int]] = []
    anchor_pairs: list[tuple[int, int]] = []

    # Interleave runs and gap results in positional order (both are
    # strictly increasing on both sides; a gap that starts where a run
    # starts has an empty left side and precedes it on the right).
    ordered: list[tuple[tuple[int, int], object]] = [
        ((run.left, run.right), run) for run in segmentation.runs]
    ordered.extend(((gap.left_lo, gap.right_lo), index)
                   for index, gap in enumerate(segmentation.gaps))
    ordered.sort(key=lambda item: item[0])

    entries_l = left.entries
    entries_r = right.entries
    for _position, item in ordered:
        if isinstance(item, AnchorRun):
            for offset in range(item.length):
                left_eid = entries_l[item.left + offset].eid
                right_eid = entries_r[item.right + offset].eid
                similar_left.add(left_eid)
                similar_right.add(right_eid)
                match_pairs.append((left_eid, right_eid))
            continue
        result = gap_results[item]
        if result is None:
            continue
        similar_left |= result.similar_left
        similar_right |= result.similar_right
        match_pairs.extend(result.match_pairs)
        anchor_pairs.extend(result.anchor_pairs)

    sequences = build_sequences(left, right, match_pairs, similar_left,
                                similar_right)
    return DiffResult(
        left=left,
        right=right,
        similar_left=similar_left,
        similar_right=similar_right,
        match_pairs=match_pairs,
        anchor_pairs=anchor_pairs,
        sequences=sequences,
        counter=counter,
        algorithm=algorithm,
        seconds=seconds,
        peak_cells=peak_cells,
    )
