"""Differencing results: the similarity set sigma, difference runs, and
difference sequences.

Both differencing semantics (Figs. 11 and 12) produce a set ``sigma`` of
entries considered *similar* between the left and right traces; the set of
differences is derived from ``sigma`` by set subtraction against the
original traces.  RPRISM then organises contiguous runs of differences
into *difference sequences* — "each representing one higher-level semantic
difference that manifests as a contiguous set of differences" — which are
the units reported to developers and consumed by the regression-cause
analysis of Sec. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.entries import EOF, TraceEntry
from repro.core.lcs import OpCounter
from repro.core.traces import Trace


@dataclass(slots=True)
class DifferenceSequence:
    """One contiguous semantic difference between the two traces.

    ``kind`` is ``"delete"`` (entries only in the left/original trace),
    ``"insert"`` (only in the right/new trace) or ``"modify"`` (both).
    """

    kind: str
    left_entries: list[TraceEntry]
    right_entries: list[TraceEntry]

    def size(self) -> int:
        """Number of raw differences in this sequence (both sides)."""
        return len(self.left_entries) + len(self.right_entries)

    def left_keys(self) -> frozenset:
        return frozenset(e.key() for e in self.left_entries)

    def right_keys(self) -> frozenset:
        return frozenset(e.key() for e in self.right_entries)

    def all_keys(self) -> frozenset:
        return self.left_keys() | self.right_keys()

    def methods(self) -> frozenset[str]:
        """Method views this sequence touches (used in signatures and
        reports)."""
        return frozenset(e.method for e in self.left_entries) | frozenset(
            e.method for e in self.right_entries)

    def signature(self) -> tuple:
        """Cross-trace-pair identity for the set algebra of Sec. 4."""
        return (self.kind, self.left_keys(), self.right_keys())

    def span(self) -> tuple[int | None, int | None]:
        """(first left eid, first right eid) for ordering and reports."""
        left = self.left_entries[0].eid if self.left_entries else None
        right = self.right_entries[0].eid if self.right_entries else None
        return (left, right)

    def brief(self, limit: int = 6) -> str:
        lines = [f"~ {self.kind} ({len(self.left_entries)} old / "
                 f"{len(self.right_entries)} new entries)"]
        for entry in self.left_entries[:limit]:
            lines.append(f"  - {entry.brief()}")
        if len(self.left_entries) > limit:
            lines.append(f"  - ... ({len(self.left_entries) - limit} more)")
        for entry in self.right_entries[:limit]:
            lines.append(f"  + {entry.brief()}")
        if len(self.right_entries) > limit:
            lines.append(f"  + ... ({len(self.right_entries) - limit} more)")
        return "\n".join(lines)


@dataclass(slots=True)
class DiffResult:
    """Outcome of differencing a (left, right) trace pair."""

    left: Trace
    right: Trace
    #: eids of left/right entries in the similarity set ``sigma``.
    similar_left: set[int]
    similar_right: set[int]
    #: Monotonic correspondence pairs (left eid, right eid) from lock-step
    #: matching / the LCS; used to segment difference sequences.
    match_pairs: list[tuple[int, int]]
    #: Entries marked similar through secondary-view exploration
    #: (the "anchors" of Fig. 13); subset of the similarity sets.
    anchor_pairs: list[tuple[int, int]] = field(default_factory=list)
    sequences: list[DifferenceSequence] = field(default_factory=list)
    counter: OpCounter = field(default_factory=OpCounter)
    algorithm: str = ""
    seconds: float = 0.0
    peak_cells: int = 0

    # -- difference accessors ------------------------------------------------

    def left_diff_eids(self) -> list[int]:
        return [e.eid for e in self.left.entries
                if e.eid not in self.similar_left]

    def right_diff_eids(self) -> list[int]:
        return [e.eid for e in self.right.entries
                if e.eid not in self.similar_right]

    def num_diffs(self) -> int:
        """Total number of raw differences (both sides) — the paper's
        "Num Diffs." column."""
        left = len(self.left) - len(self.similar_left)
        right = len(self.right) - len(self.similar_right)
        return left + right

    def num_similar(self) -> int:
        return len(self.similar_left) + len(self.similar_right)

    def total_entries(self) -> int:
        return len(self.left) + len(self.right)

    def num_sequences(self) -> int:
        return len(self.sequences)

    def compares(self) -> int:
        return self.counter.total

    def mean_sequence_size(self) -> float:
        if not self.sequences:
            return 0.0
        return sum(s.size() for s in self.sequences) / len(self.sequences)

    def render(self, limit: int = 20) -> str:
        lines = [
            f"diff {self.left.name or 'left'} vs {self.right.name or 'right'}"
            f" [{self.algorithm}]: {self.num_diffs()} differences in "
            f"{len(self.sequences)} sequences",
        ]
        for seq in self.sequences[:limit]:
            lines.append(seq.brief())
        if len(self.sequences) > limit:
            lines.append(f"... ({len(self.sequences) - limit} more sequences)")
        return "\n".join(lines)


# -- wire codec (the diff cache's disk tier) --------------------------------

#: Version stamp of the :func:`result_to_wire` encoding; bumped whenever
#: the shape changes so stale cache entries read as misses, not garbage.
RESULT_WIRE_VERSION = 1


def result_to_wire(result: DiffResult,
                   counter_totals: "tuple[int, int] | None" = None) -> dict:
    """A :class:`DiffResult` as a JSON-encodable dict.

    Entries are stored *by eid only* — a cached result is always
    rehydrated against the caller's own trace objects
    (:func:`result_from_wire`), so the wire form stays small (no trace
    bodies) and a hit hands back sequences built from the very entries
    the caller is holding.

    ``counter_totals`` overrides the stored ``(compares, charged)``
    pair: ``result.counter`` may be a caller's *shared* accumulator
    spanning several diffs, and a cache entry must record only this
    diff's own cost (the cache layer passes the measured delta).
    """
    if counter_totals is None:
        counter_totals = (result.counter.compares, result.counter.charged)
    return {
        "version": RESULT_WIRE_VERSION,
        "algorithm": result.algorithm,
        "seconds": result.seconds,
        "peak_cells": result.peak_cells,
        "similar_left": sorted(result.similar_left),
        "similar_right": sorted(result.similar_right),
        "match_pairs": [list(pair) for pair in result.match_pairs],
        "anchor_pairs": [list(pair) for pair in result.anchor_pairs],
        "sequences": [{"kind": seq.kind,
                       "left": [e.eid for e in seq.left_entries],
                       "right": [e.eid for e in seq.right_entries]}
                      for seq in result.sequences],
        "counter": {"compares": counter_totals[0],
                    "charged": counter_totals[1]},
    }


def result_from_wire(wire: dict, left: Trace, right: Trace) -> DiffResult:
    """Inverse of :func:`result_to_wire`, rehydrated over the caller's
    ``left``/``right`` traces.

    Raises ``ValueError`` on any mismatch — unknown wire version, or an
    eid the traces do not contain (a digest collision or a hand-edited
    cache file) — so cache layers can treat a bad entry as a miss
    rather than returning a corrupt result.
    """
    if not isinstance(wire, dict) \
            or wire.get("version") != RESULT_WIRE_VERSION:
        version = wire.get("version") if isinstance(wire, dict) else wire
        raise ValueError(
            f"unsupported diff-result wire version: {version!r}")

    def entry_map(trace: Trace) -> dict[int, TraceEntry]:
        mapping = {entry.eid: entry for entry in trace.entries}
        mapping[EOF.eid] = EOF  # the differs may pad with the sentinel
        return mapping

    by_left = entry_map(left)
    by_right = entry_map(right)

    def pick(mapping: dict[int, TraceEntry], eids) -> list[TraceEntry]:
        try:
            return [mapping[eid] for eid in eids]
        except KeyError as missing:
            raise ValueError(f"diff-result wire references eid "
                             f"{missing.args[0]} absent from the trace "
                             f"pair") from None

    try:
        sequences = [DifferenceSequence(
            kind=seq["kind"],
            left_entries=pick(by_left, seq["left"]),
            right_entries=pick(by_right, seq["right"]))
            for seq in wire["sequences"]]
        counter = OpCounter(compares=wire["counter"]["compares"],
                            charged=wire["counter"]["charged"])
        return DiffResult(
            left=left,
            right=right,
            similar_left=set(wire["similar_left"]),
            similar_right=set(wire["similar_right"]),
            match_pairs=[tuple(pair) for pair in wire["match_pairs"]],
            anchor_pairs=[tuple(pair) for pair in wire["anchor_pairs"]],
            sequences=sequences,
            counter=counter,
            algorithm=wire["algorithm"],
            seconds=wire["seconds"],
            peak_cells=wire["peak_cells"],
        )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed diff-result wire: {error}") from None


def result_identity(result: DiffResult) -> tuple:
    """Everything *semantically* observable about a result — similarity
    sets, matched and anchor pairs, and difference sequences — as one
    comparable value, excluding the cost accounting (compare counters,
    peak cells, timing) and the algorithm label.

    This is what "the anchored engine is bit-identical to its inner
    engine" means: the two compute the same differences while charging
    different costs (fewer ``=e`` compares is the anchored path's whole
    point), so identity is asserted over this tuple rather than
    :func:`result_signature` (which includes the counters).
    """
    return (tuple(sorted(result.similar_left)),
            tuple(sorted(result.similar_right)),
            tuple(tuple(pair) for pair in result.match_pairs),
            tuple(tuple(pair) for pair in result.anchor_pairs),
            tuple((seq.kind,
                   tuple(e.eid for e in seq.left_entries),
                   tuple(e.eid for e in seq.right_entries))
                  for seq in result.sequences))


def result_signature(result: DiffResult) -> tuple:
    """Everything semantically observable about a result, as one
    comparable value (wall-clock excluded) — what the cache tests and
    benchmark mean by "bit-identical"."""
    wire = result_to_wire(result)
    wire.pop("seconds")
    return (tuple(sorted(wire.pop("similar_left"))),
            tuple(sorted(wire.pop("similar_right"))),
            tuple(tuple(p) for p in wire.pop("match_pairs")),
            tuple(tuple(p) for p in wire.pop("anchor_pairs")),
            tuple((s["kind"], tuple(s["left"]), tuple(s["right"]))
                  for s in wire.pop("sequences")),
            tuple(sorted(wire.pop("counter").items())),
            tuple(sorted(wire.items())))


def build_sequences(left: Trace, right: Trace,
                    match_pairs: list[tuple[int, int]],
                    similar_left: set[int], similar_right: set[int],
                    left_eids: list[int] | None = None,
                    right_eids: list[int] | None = None,
                    ) -> list[DifferenceSequence]:
    """Group raw differences into difference sequences.

    Walks the (monotonic) correspondence mapping; the differing entries
    between consecutive matched pairs form one sequence.  ``left_eids`` /
    ``right_eids`` restrict the walk to a sub-sequence of each trace (a
    thread view), defaulting to the whole trace.
    """
    if left_eids is None:
        rows_l = left.entries
    else:
        by_eid = {e.eid: e for e in left.entries}
        rows_l = [by_eid[eid] for eid in left_eids]
    if right_eids is None:
        rows_r = right.entries
    else:
        by_eid = {e.eid: e for e in right.entries}
        rows_r = [by_eid[eid] for eid in right_eids]

    sequences: list[DifferenceSequence] = []
    # Positions of matched pairs within the (restricted) entry rows.
    pos_l = {entry.eid: i for i, entry in enumerate(rows_l)}
    pos_r = {entry.eid: i for i, entry in enumerate(rows_r)}
    boundaries = [(-1, -1)]
    for l_eid, r_eid in match_pairs:
        if l_eid in pos_l and r_eid in pos_r:
            boundaries.append((pos_l[l_eid], pos_r[r_eid]))
    boundaries.append((len(rows_l), len(rows_r)))

    for (prev_l, prev_r), (next_l, next_r) in zip(boundaries, boundaries[1:]):
        if next_l - prev_l <= 1 and next_r - prev_r <= 1:
            continue  # adjacent matches: no gap on either side
        left_gap = [e for e in rows_l[prev_l + 1:next_l]
                    if e.eid not in similar_left]
        right_gap = [e for e in rows_r[prev_r + 1:next_r]
                     if e.eid not in similar_right]
        if not left_gap and not right_gap:
            continue
        if left_gap and right_gap:
            kind = "modify"
        elif left_gap:
            kind = "delete"
        else:
            kind = "insert"
        sequences.append(DifferenceSequence(
            kind=kind, left_entries=left_gap, right_entries=right_gap))
    return sequences
