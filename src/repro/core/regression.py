"""Regression-cause analysis (Sec. 4).

Given three differencing results —

* ``A`` (*suspected differences*): original vs new version on a regressing
  test case,
* ``B`` (*expected differences*): original vs new version on a correct
  test case (differences due to ordinary program evolution),
* ``C`` (*regression differences*): new version, correct vs regressing
  test case (differences due to the differing inputs),

the analysis computes ``D = (A - B) ∩ C``, the differences highly likely
to be responsible for the regression.  For regressions caused by *removal*
of code (where C cannot contain the cause), the variant
``D = (A - B) - C`` applies.

The paper performs this set algebra on differences; difference identity
across trace pairs is by event key (the ``=e`` key, which is stable across
versions since it contains no locations).  Candidates are reported as the
difference *sequences* of A containing at least one surviving difference,
which matches how the paper counts |A|, |B|, |C| and |D| in Table 2
(sequence counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.diffs import DiffResult, DifferenceSequence
from repro.core.entries import TraceEntry

#: D = (A - B) ∩ C — the default.
MODE_INTERSECT = "intersect"
#: D = (A - B) - C — for regressions caused by code removal.
MODE_SUBTRACT = "subtract"


def diff_key_pool(result: DiffResult) -> set:
    """All ``=e`` keys of differing entries, both sides."""
    left, right = side_key_pools(result)
    return left | right


def side_key_pools(result: DiffResult) -> tuple[set, set]:
    """(left-side keys, right-side keys) of differing entries."""
    left = {e.key() for e in result.left.entries
            if e.eid not in result.similar_left}
    right = {e.key() for e in result.right.entries
             if e.eid not in result.similar_right}
    return left, right


@dataclass(slots=True)
class CandidateSequence:
    """A difference sequence of A that survived the analysis, with the
    specific entries that placed it in D.

    Identical sequences (same signature — e.g. one per loop iteration
    over the same wrong value) are grouped into a single candidate;
    ``occurrences`` counts how many times the sequence appeared.
    """

    sequence: DifferenceSequence
    surviving_left: list[TraceEntry]
    surviving_right: list[TraceEntry]
    occurrences: int = 1

    def surviving_count(self) -> int:
        return len(self.surviving_left) + len(self.surviving_right)

    def brief(self) -> str:
        lines = [self.sequence.brief()]
        times = f" (x{self.occurrences})" if self.occurrences > 1 else ""
        lines.append(f"  => {self.surviving_count()} difference(s) survive "
                     f"the A/B/C analysis{times}")
        return "\n".join(lines)


@dataclass(slots=True)
class RegressionReport:
    """Outcome of the regression-cause analysis."""

    mode: str
    candidates: list[CandidateSequence]
    #: |A|, |B|, |C|, |D| measured in difference sequences (Table 2).
    size_a: int = 0
    size_b: int = 0
    size_c: int = 0

    @property
    def size_d(self) -> int:
        return len(self.candidates)

    def set_sizes(self) -> dict[str, int]:
        return {"A": self.size_a, "B": self.size_b, "C": self.size_c,
                "D": self.size_d}

    def surviving_differences(self) -> int:
        return sum(c.surviving_count() for c in self.candidates)

    def render(self, limit: int = 10) -> str:
        sizes = self.set_sizes()
        lines = [
            f"regression analysis (mode={self.mode}): "
            f"|A|={sizes['A']} |B|={sizes['B']} |C|={sizes['C']} "
            f"-> |D|={sizes['D']} candidate sequence(s)",
        ]
        for candidate in self.candidates[:limit]:
            lines.append(candidate.brief())
        if len(self.candidates) > limit:
            lines.append(f"... ({len(self.candidates) - limit} more)")
        return "\n".join(lines)


def analyze_regression(suspected: DiffResult,
                       expected: DiffResult | None = None,
                       regression: DiffResult | None = None,
                       mode: str = MODE_INTERSECT) -> RegressionReport:
    """Run the Sec. 4 analysis.

    ``expected`` (B) and ``regression`` (C) are optional, modelling the
    paper's unattended-build configuration (Sec. 5.1 runs without the
    manually-crafted similar test case); omitting them skips the
    corresponding filtering step.
    """
    if mode not in (MODE_INTERSECT, MODE_SUBTRACT):
        raise ValueError(f"unknown analysis mode: {mode!r}")
    b_left: set = set()
    b_right: set = set()
    if expected is not None:
        b_left, b_right = side_key_pools(expected)
    c_pool: set | None = None
    if regression is not None:
        c_pool = diff_key_pool(regression)

    def survives(key: tuple, b_pool: set) -> bool:
        if key in b_pool:
            return False
        if c_pool is None:
            return True
        if mode == MODE_INTERSECT:
            return key in c_pool
        return key not in c_pool

    candidates: list[CandidateSequence] = []
    by_signature: dict[tuple, CandidateSequence] = {}
    for sequence in suspected.sequences:
        left = [e for e in sequence.left_entries if survives(e.key(), b_left)]
        right = [e for e in sequence.right_entries
                 if survives(e.key(), b_right)]
        if not left and not right:
            continue
        signature = sequence.signature()
        existing = by_signature.get(signature)
        if existing is not None:
            # One higher-level semantic difference repeated (e.g. per
            # loop iteration): report it once.
            existing.occurrences += 1
            continue
        candidate = CandidateSequence(
            sequence=sequence, surviving_left=left, surviving_right=right)
        by_signature[signature] = candidate
        candidates.append(candidate)
    return RegressionReport(
        mode=mode,
        candidates=candidates,
        size_a=len(suspected.sequences),
        size_b=len(expected.sequences) if expected is not None else 0,
        size_c=len(regression.sequences) if regression is not None else 0,
    )


@dataclass(slots=True)
class TruthEvaluation:
    """Accuracy of a report against a known ground-truth cause."""

    true_positives: int
    false_positives: int
    false_negatives: int
    matched_sequences: list[CandidateSequence] = field(default_factory=list)


def evaluate_against_truth(report: RegressionReport,
                           is_cause_entry: Callable[[TraceEntry], bool],
                           expected_cause_marks: int = 1) -> TruthEvaluation:
    """Score a report against a ground-truth predicate over entries.

    A candidate sequence is a true positive if any of its surviving
    entries satisfies ``is_cause_entry``; otherwise it is a false
    positive.  False negatives count how many of the
    ``expected_cause_marks`` distinct cause manifestations were *not*
    covered by any true-positive sequence.
    """
    matched: list[CandidateSequence] = []
    false_positives = 0
    for candidate in report.candidates:
        entries = candidate.surviving_left + candidate.surviving_right
        if any(is_cause_entry(e) for e in entries):
            matched.append(candidate)
        else:
            false_positives += 1
    true_positives = len(matched)
    false_negatives = max(0, expected_cause_marks - true_positives)
    return TruthEvaluation(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        matched_sequences=matched,
    )
