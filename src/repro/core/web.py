"""The view web: every view of a trace, linked through trace indices.

Building the web is a single O(n) pass: each entry's view names are
computed by the Fig. 7 mapping functions and the entry's index is appended
to each named view's index list.  The web also gathers the per-object
metadata (class name, creation sequence number, first-seen serialisation,
init eid) that the correlation functions of Sec. 3.1 need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entries import TraceEntry
from repro.core.events import Fork, Init, StackFrame
from repro.core.traces import Trace
from repro.core.values import ValueRep
from repro.core.views import View, ViewName, ViewType, view_names


@dataclass(frozen=True, slots=True)
class ObjectInfo:
    """Correlation-relevant facts about one object in one trace."""

    location: int
    class_name: str
    creation_seq: int | None
    serialization: object
    init_eid: int | None


@dataclass(frozen=True, slots=True)
class ThreadInfo:
    """Correlation-relevant facts about one thread in one trace."""

    tid: int
    #: Spawn ancestry captured by the fork event that created this thread
    #: (empty for the main thread).
    ancestry: tuple[tuple[StackFrame, ...], ...]
    fork_eid: int | None


class ViewWeb:
    """All views of a single trace, plus object/thread metadata."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self._views: dict[ViewName, View] = {}
        self.objects: dict[int, ObjectInfo] = {}
        self.threads: dict[int, ThreadInfo] = {}
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        indices: dict[ViewName, list[int]] = {}
        seen_tids: dict[int, ThreadInfo] = {}
        for position, entry in enumerate(self.trace.entries):
            for name in view_names(entry):
                indices.setdefault(name, []).append(position)
            self._note_metadata(position, entry, seen_tids)
        for name, index_list in indices.items():
            self._views[name] = View(name, self.trace, index_list)
        # Threads that never appear in a fork event (e.g. the main thread)
        # still deserve ThreadInfo records.
        for tid in self.trace.thread_ids():
            if tid not in seen_tids:
                seen_tids[tid] = ThreadInfo(tid=tid, ancestry=(), fork_eid=None)
        self.threads = seen_tids

    def _note_metadata(self, position: int, entry: TraceEntry,
                       seen_tids: dict[int, ThreadInfo]) -> None:
        event = entry.event
        if isinstance(event, Init):
            obj = event.obj
            if obj.location is not None and obj.location not in self.objects:
                self.objects[obj.location] = ObjectInfo(
                    location=obj.location,
                    class_name=obj.class_name,
                    creation_seq=obj.creation_seq,
                    serialization=obj.serialization,
                    init_eid=entry.eid,
                )
        elif isinstance(event, Fork):
            seen_tids[event.child_tid] = ThreadInfo(
                tid=event.child_tid,
                ancestry=event.ancestry,
                fork_eid=entry.eid,
            )
        # Objects first observed outside an init (e.g. pre-existing
        # receivers) are registered lazily from any event target.
        target = event.target()
        if (target is not None and target.location is not None
                and target.location not in self.objects):
            self.objects[target.location] = ObjectInfo(
                location=target.location,
                class_name=target.class_name,
                creation_seq=target.creation_seq,
                serialization=target.serialization,
                init_eid=None,
            )

    # -- lookup -----------------------------------------------------------

    def view(self, name: ViewName) -> View | None:
        return self._views.get(name)

    def views_of_type(self, vtype: ViewType) -> list[View]:
        return [v for n, v in self._views.items() if n.vtype is vtype]

    def view_names_of_type(self, vtype: ViewType) -> list[ViewName]:
        return [n for n in self._views if n.vtype is vtype]

    def all_views(self) -> list[View]:
        return list(self._views.values())

    def thread_view(self, tid: int) -> View | None:
        return self.view(ViewName(ViewType.THREAD, tid))

    def method_view(self, method: str) -> View | None:
        return self.view(ViewName(ViewType.METHOD, method))

    def target_object_view(self, location: int) -> View | None:
        return self.view(ViewName(ViewType.TARGET_OBJECT, location))

    def active_object_view(self, location: int) -> View | None:
        return self.view(ViewName(ViewType.ACTIVE_OBJECT, location))

    def views_of_entry(self, entry: TraceEntry) -> list[View]:
        """Navigate the web: all views an entry belongs to (Sec. 2.4)."""
        found = []
        for name in view_names(entry):
            view = self._views.get(name)
            if view is not None:
                found.append(view)
        return found

    def object_info(self, rep: ValueRep) -> ObjectInfo | None:
        if rep.location is None:
            return None
        return self.objects.get(rep.location)

    # -- statistics (Table 2) ----------------------------------------------

    def counts(self) -> dict[str, int]:
        """View counts in the shape of the paper's Table 2."""
        by_type = {vtype: 0 for vtype in ViewType}
        for name in self._views:
            by_type[name.vtype] += 1
        return {
            "total": len(self._views),
            "thread": by_type[ViewType.THREAD],
            "method": by_type[ViewType.METHOD],
            "target_object": by_type[ViewType.TARGET_OBJECT],
            "active_object": by_type[ViewType.ACTIVE_OBJECT],
        }
