"""The view web: every view of a trace, linked through trace indices.

The web is *lazy and columnar*: views of a type are materialised only
when something asks for that type — one O(n) pass per demanded
:class:`~repro.core.views.ViewType`, each view storing its member
indices as an ``array('I')`` column — and the per-object / per-thread
correlation metadata of Sec. 3.1 is gathered in its own single pass on
first access.  A diff that never explores, say, active-object views
never pays for building them; ``built_view_types()`` exposes what has
actually been materialised (the laziness contract the tests pin down).
"""

from __future__ import annotations

import threading
from array import array
from dataclasses import dataclass

from repro.core.entries import TraceEntry
from repro.core.events import Fork, Init, StackFrame
from repro.core.traces import Trace
from repro.core.values import ValueRep
from repro.core.views import (KEY_MAPPINGS, View, ViewName, ViewType,
                              view_names)


@dataclass(frozen=True, slots=True)
class ObjectInfo:
    """Correlation-relevant facts about one object in one trace."""

    location: int
    class_name: str
    creation_seq: int | None
    serialization: object
    init_eid: int | None


@dataclass(frozen=True, slots=True)
class ThreadInfo:
    """Correlation-relevant facts about one thread in one trace."""

    tid: int
    #: Spawn ancestry captured by the fork event that created this thread
    #: (empty for the main thread).
    ancestry: tuple[tuple[StackFrame, ...], ...]
    fork_eid: int | None


class ViewWeb:
    """All views of a single trace, plus object/thread metadata.

    Views materialise per type on first demand; ``objects`` / ``threads``
    materialise together on first access.  All public accessors behave
    exactly as they did when construction was eager.
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        self._views: dict[ViewName, View] = {}
        #: Per-type raw-key lookup tables (``kappa -> View``), one per
        #: materialised type.  The hot paths go through these: hashing a
        #: tid/method/location is much cheaper than hashing a ViewName.
        self._thread_views: dict | None = None
        self._method_views: dict | None = None
        self._target_views: dict | None = None
        self._active_views: dict | None = None
        self._objects: dict[int, ObjectInfo] | None = None
        self._threads: dict[int, ThreadInfo] | None = None
        # Lazy builds are guarded so concurrent thread-pair evaluations
        # (the parallel diff execution phase) materialise each view
        # type exactly once — View identity matters downstream (the
        # window-key caches token views by id()).
        self._build_lock = threading.RLock()

    # -- lazy construction -------------------------------------------------

    def built_view_types(self) -> frozenset[ViewType]:
        """The view types materialised so far (laziness introspection)."""
        return frozenset(vtype for vtype in ViewType
                         if self._typed(vtype) is not None)

    def _typed(self, vtype: ViewType) -> dict | None:
        if vtype is ViewType.THREAD:
            return self._thread_views
        if vtype is ViewType.METHOD:
            return self._method_views
        if vtype is ViewType.TARGET_OBJECT:
            return self._target_views
        if vtype is ViewType.ACTIVE_OBJECT:
            return self._active_views
        raise ValueError(f"unknown view type: {vtype!r}")

    def _ensure_type(self, vtype: ViewType) -> dict:
        typed = self._typed(vtype)
        if typed is not None:
            return typed
        with self._build_lock:
            return self._build_type(vtype)

    def _build_type(self, vtype: ViewType) -> dict:
        typed = self._typed(vtype)
        if typed is not None:  # raced: another thread built it first
            return typed
        key_of = KEY_MAPPINGS[vtype]
        columns: dict[object, array] = {}
        for position, entry in enumerate(self.trace.entries):
            key = key_of(entry)
            if key is None:
                continue
            column = columns.get(key)
            if column is None:
                columns[key] = column = array("I")
            column.append(position)
        typed = {}
        for key, column in columns.items():
            name = ViewName(vtype, key)
            typed[key] = self._views[name] = View(name, self.trace, column)
        if vtype is ViewType.THREAD:
            self._thread_views = typed
        elif vtype is ViewType.METHOD:
            self._method_views = typed
        elif vtype is ViewType.TARGET_OBJECT:
            self._target_views = typed
        else:  # _typed() has already rejected non-members
            self._active_views = typed
        return typed

    def _ensure_all(self) -> None:
        for vtype in ViewType:
            self._ensure_type(vtype)

    @property
    def objects(self) -> dict[int, ObjectInfo]:
        if self._objects is None:
            self._build_metadata()
        return self._objects

    @property
    def threads(self) -> dict[int, ThreadInfo]:
        if self._threads is None:
            self._build_metadata()
        return self._threads

    def _build_metadata(self) -> None:
        with self._build_lock:
            if self._objects is not None:  # raced: already built
                return
            self._build_metadata_locked()

    def _build_metadata_locked(self) -> None:
        objects: dict[int, ObjectInfo] = {}
        seen_tids: dict[int, ThreadInfo] = {}
        for entry in self.trace.entries:
            self._note_metadata(entry, objects, seen_tids)
        # Threads that never appear in a fork event (e.g. the main thread)
        # still deserve ThreadInfo records.
        for tid in self.trace.thread_ids():
            if tid not in seen_tids:
                seen_tids[tid] = ThreadInfo(tid=tid, ancestry=(),
                                            fork_eid=None)
        self._objects = objects
        self._threads = seen_tids

    def _note_metadata(self, entry: TraceEntry,
                       objects: dict[int, ObjectInfo],
                       seen_tids: dict[int, ThreadInfo]) -> None:
        event = entry.event
        if isinstance(event, Init):
            obj = event.obj
            if obj.location is not None and obj.location not in objects:
                objects[obj.location] = ObjectInfo(
                    location=obj.location,
                    class_name=obj.class_name,
                    creation_seq=obj.creation_seq,
                    serialization=obj.serialization,
                    init_eid=entry.eid,
                )
        elif isinstance(event, Fork):
            seen_tids[event.child_tid] = ThreadInfo(
                tid=event.child_tid,
                ancestry=event.ancestry,
                fork_eid=entry.eid,
            )
        # Objects first observed outside an init (e.g. pre-existing
        # receivers) are registered lazily from any event target.
        target = event.target()
        if (target is not None and target.location is not None
                and target.location not in objects):
            objects[target.location] = ObjectInfo(
                location=target.location,
                class_name=target.class_name,
                creation_seq=target.creation_seq,
                serialization=target.serialization,
                init_eid=None,
            )

    # -- lookup -----------------------------------------------------------

    def view(self, name: ViewName) -> View | None:
        return self._ensure_type(name.vtype).get(name.key)

    def typed_view(self, vtype: ViewType, key) -> View | None:
        """Raw-key lookup (``<chi, kappa>`` without a ViewName object);
        the differencing hot paths resolve views through this."""
        return self._ensure_type(vtype).get(key)

    def views_of_type(self, vtype: ViewType) -> list[View]:
        return list(self._ensure_type(vtype).values())

    def view_names_of_type(self, vtype: ViewType) -> list[ViewName]:
        return [view.name for view in self._ensure_type(vtype).values()]

    def all_views(self) -> list[View]:
        self._ensure_all()
        return list(self._views.values())

    def thread_view(self, tid: int) -> View | None:
        return self.typed_view(ViewType.THREAD, tid)

    def method_view(self, method: str) -> View | None:
        return self.typed_view(ViewType.METHOD, method)

    def target_object_view(self, location: int) -> View | None:
        return self.typed_view(ViewType.TARGET_OBJECT, location)

    def active_object_view(self, location: int) -> View | None:
        return self.typed_view(ViewType.ACTIVE_OBJECT, location)

    def views_of_entry(self, entry: TraceEntry) -> list[View]:
        """Navigate the web: all views an entry belongs to (Sec. 2.4)."""
        found = []
        for name in view_names(entry):
            view = self.view(name)
            if view is not None:
                found.append(view)
        return found

    def object_info(self, rep: ValueRep) -> ObjectInfo | None:
        if rep.location is None:
            return None
        return self.objects.get(rep.location)

    # -- statistics (Table 2) ----------------------------------------------

    def counts(self) -> dict[str, int]:
        """View counts in the shape of the paper's Table 2."""
        self._ensure_all()
        by_type = {vtype: 0 for vtype in ViewType}
        for name in self._views:
            by_type[name.vtype] += 1
        return {
            "total": len(self._views),
            "thread": by_type[ViewType.THREAD],
            "method": by_type[ViewType.METHOD],
            "target_object": by_type[ViewType.TARGET_OBJECT],
            "active_object": by_type[ViewType.ACTIVE_OBJECT],
        }
