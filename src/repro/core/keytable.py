"""Interned ``=e`` keys: the symbol table behind columnar differencing.

The paper's cost metric is the number of trace-entry compare operations
under event equality ``=e`` (Fig. 9), and every ``=e`` compare in the
seed recomputed ``entry.event.key()`` — a nested tuple — on both sides.
A :class:`KeyTable` maps each distinct key to a dense integer id exactly
once, so the hot loops (the LCS dynamic programs, the lock-step view
matching, the correlation indexes) compare and hash small ints instead
of walking tuple structure.

Sharing model: one table per diff *pair* is the baseline — both traces
interned against the same table get directly comparable ids.  Tables may
also be longer-lived (a capture session interning at ingest, a v2 trace
file carrying its table); :meth:`KeyTable.ids_for` bridges the cases by
reusing a carried column when the trace was interned against *this*
table, translating it (one intern per *distinct* key, not per entry)
when it was interned against another, and interning entry by entry only
for wholly uninterned traces.

Interning is a bijection on keys, so any algorithm that only ever asks
"are these two keys equal?" behaves identically over ids and over the
original tuples — which is what keeps interned and tuple-key diffing
result-identical (see ``benchmarks/bench_interning.py``).
"""

from __future__ import annotations

import threading
from array import array
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.entries import TraceEntry
    from repro.core.traces import Trace


class KeyTable:
    """A per-trace-pair (or longer-lived) ``=e`` key symbol table.

    ``intern`` accepts any hashable value, not only entry keys: the
    correlators use the same table for stack-frame keys and object
    representation keys, so every equality decision of a diff pair goes
    through one id space.
    """

    __slots__ = ("_ids", "_keys", "_lock", "key_constructions")

    def __init__(self):
        self._ids: dict[object, int] = {}
        self._keys: list = []
        self._lock = threading.RLock()
        #: How many ``entry.key()`` tuples this table has built — the
        #: benchmarks' "tuple construction" metric.
        self.key_constructions = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyTable({len(self)} key(s))"

    # -- interning ----------------------------------------------------------

    def intern(self, key) -> int:
        """The dense id of ``key``, allocating one on first sight."""
        with self._lock:
            kid = self._ids.get(key)
            if kid is None:
                kid = len(self._keys)
                self._ids[key] = kid
                self._keys.append(key)
            return kid

    def intern_entry(self, entry: "TraceEntry") -> int:
        """Intern one entry's ``=e`` key (the ingest-time hook)."""
        with self._lock:
            self.key_constructions += 1
            return self.intern(entry.key())

    def intern_entries(self, entries: Iterable["TraceEntry"]) -> array:
        """Intern a whole entry sequence into an id column."""
        column = array("I")
        with self._lock:
            ids = self._ids
            keys = self._keys
            for entry in entries:
                key = entry.key()
                self.key_constructions += 1
                kid = ids.get(key)
                if kid is None:
                    kid = len(keys)
                    ids[key] = kid
                    keys.append(key)
                column.append(kid)
        return column

    # -- lookup -------------------------------------------------------------

    def key_of(self, kid: int):
        """The key a dense id stands for (v2 serialisation needs this
        to write key tables without recomputing ``entry.key()``)."""
        return self._keys[kid]

    def keys(self) -> list:
        """Snapshot of all interned keys, in id order."""
        with self._lock:
            return list(self._keys)

    # -- columns ------------------------------------------------------------

    def translate(self, keys: Sequence, column: Sequence[int]) -> array:
        """Re-express a foreign id ``column`` (whose ids index ``keys``)
        in this table's id space: one intern per distinct key *used by
        the column* — a small trace never drags a big foreign table's
        unrelated keys into this one."""
        mapping: dict[int, int] = {}
        out = array("I")
        for kid in column:
            nid = mapping.get(kid)
            if nid is None:
                nid = mapping[kid] = self.intern(keys[kid])
            out.append(nid)
        return out

    def ids_for(self, trace: "Trace") -> array:
        """The interned id column of ``trace``.

        Preference order: the column the trace already carries (when it
        was interned against this very table — free), a translation of
        a foreign carried column (one intern per distinct key), and
        finally entry-by-entry interning.  The table deliberately keeps
        no per-trace cache of its own (it may be long-lived — a
        session's ingest table — and must not pin traces in memory);
        interning at ingest is what makes repeat diffs cheap.
        """
        carried = trace.key_ids
        if carried is not None and trace.key_table is self:
            return carried
        if carried is not None and trace.key_table is not None:
            return self.translate(trace.key_table.keys(), carried)
        return self.intern_entries(trace.entries)

    @classmethod
    def for_pair(cls, left: "Trace", right: "Trace") -> "KeyTable":
        """The table a diff pair should share: the carried table when
        both traces were interned against the same one (ids line up for
        free), a fresh pair table otherwise."""
        table = left.key_table
        if table is not None and table is right.key_table:
            return table
        return cls()
