"""``repro.api`` — the composable public surface of the library.

Four pieces, designed to grow independently:

* :class:`Session` — fluent configuration + explicit lifecycle
  (``capture`` / ``ingest`` / ``diff`` / ``analyze`` /
  ``run_scenario``), producing structured :class:`SessionResult`\\ s.
* the engine registry — :func:`register_engine` / :func:`get_engine` /
  :func:`available_engines` over the :class:`DiffEngine` protocol; the
  views-based semantics and every LCS baseline ship pre-registered.
* :class:`TraceStore` — persistent JSONL trace storage (capture now,
  diff later: the paper's offline workflow), flat or sharded layout,
  with a queryable catalog sidecar (:class:`TraceIndex` from
  :mod:`repro.index`).
* :class:`ScenarioPipeline` — batch execution of many regression
  scenarios over a worker pool, with per-job op/timing/worker
  aggregation.

How work *runs* is the execution layer's job (:mod:`repro.exec`):
sessions and pipelines take an ``executor`` (``serial`` / ``threads`` /
``processes``) that decides whether captures serialise under the
process-wide lock or fan out across worker processes, and whether
views-based diffs evaluate their thread pairs inline or in parallel.

The legacy ``repro.RPrism`` facade remains as a thin shim over
:class:`Session`.
"""

from repro.api.engines import (AnchoredEngine, DiffEngine, LcsEngine,
                               ViewsEngine, accepts_cache,
                               accepts_executor, accepts_key_table,
                               accepts_kwarg, available_engines,
                               get_engine, is_cacheable, register_engine,
                               unregister_engine)
from repro.cache import (CacheStats, DiffCache, SegmentCache,
                         cached_engine_diff)
from repro.core.keytable import KeyTable
from repro.exec.capture import CaptureOutcome, CaptureTask
from repro.exec.executors import (Executor, available_executors,
                                  get_executor)
from repro.api.pipeline import (JobOutcome, PipelineResult, ScenarioJob,
                                ScenarioPipeline, StoredScenarioJob,
                                run_pipeline)
from repro.api.session import (CAPTURE_LOCK, SCENARIO_ROLES, Session,
                               SessionResult)
from repro.api.store import TraceRecord, TraceStore
from repro.index import TraceIndex, TraceIndexRecord

__all__ = [
    "AnchoredEngine", "CAPTURE_LOCK", "CacheStats", "CaptureOutcome",
    "CaptureTask",
    "DiffCache", "DiffEngine", "Executor", "JobOutcome", "KeyTable",
    "LcsEngine", "PipelineResult", "SCENARIO_ROLES", "ScenarioJob",
    "ScenarioPipeline", "SegmentCache", "Session", "SessionResult",
    "StoredScenarioJob",
    "TraceIndex", "TraceIndexRecord",
    "TraceRecord", "TraceStore", "ViewsEngine", "accepts_cache",
    "accepts_executor",
    "accepts_key_table", "accepts_kwarg", "available_engines",
    "available_executors", "cached_engine_diff", "get_engine",
    "get_executor", "is_cacheable", "register_engine", "run_pipeline",
    "unregister_engine",
]
