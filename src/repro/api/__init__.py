"""``repro.api`` — the composable public surface of the library.

Four pieces, designed to grow independently:

* :class:`Session` — fluent configuration + explicit lifecycle
  (``capture`` / ``ingest`` / ``diff`` / ``analyze`` /
  ``run_scenario``), producing structured :class:`SessionResult`\\ s.
* the engine registry — :func:`register_engine` / :func:`get_engine` /
  :func:`available_engines` over the :class:`DiffEngine` protocol; the
  views-based semantics and every LCS baseline ship pre-registered.
* :class:`TraceStore` — persistent JSONL trace storage (capture now,
  diff later: the paper's offline workflow).
* :class:`ScenarioPipeline` — batch execution of many regression
  scenarios over a worker pool, with per-job op/timing aggregation.

The legacy ``repro.RPrism`` facade remains as a thin shim over
:class:`Session`.
"""

from repro.api.engines import (DiffEngine, LcsEngine, ViewsEngine,
                               accepts_key_table, available_engines,
                               get_engine, register_engine,
                               unregister_engine)
from repro.core.keytable import KeyTable
from repro.api.pipeline import (JobOutcome, PipelineResult, ScenarioJob,
                                ScenarioPipeline, StoredScenarioJob,
                                run_pipeline)
from repro.api.session import (CAPTURE_LOCK, SCENARIO_ROLES, Session,
                               SessionResult)
from repro.api.store import TraceRecord, TraceStore

__all__ = [
    "CAPTURE_LOCK", "DiffEngine", "JobOutcome", "KeyTable", "LcsEngine",
    "PipelineResult", "SCENARIO_ROLES", "ScenarioJob", "ScenarioPipeline",
    "Session", "SessionResult", "StoredScenarioJob", "TraceRecord",
    "TraceStore", "ViewsEngine", "accepts_key_table", "available_engines",
    "get_engine", "register_engine", "run_pipeline", "unregister_engine",
]
