"""Batch scenario execution over a worker pool.

The benchmarks and the production north-star both want many regression
scenarios (the four-trace Sec. 4 recipe) executed as one batch with
aggregate numbers.  :class:`ScenarioPipeline` runs a mixed list of jobs
across a ``concurrent.futures`` thread pool:

* :class:`ScenarioJob` — live capture + diff + analysis of two program
  versions (``Session.run_scenario``).
* :class:`StoredScenarioJob` — the offline half only: diff + analysis
  over trace pairs already in a :class:`~repro.api.store.TraceStore`
  (``Session.run_stored_scenario``).

With the default in-process execution, capture is serial (one
``sys.settrace`` weaver per process; see
:data:`repro.exec.capture.CAPTURE_LOCK`) and parallelism buys its
speedup on the diff/analysis side.  Give the pipeline a *process*
executor (``executor="processes"``) and the capture half scales too:
each job's capture batch dispatches to worker processes owning their
own weavers, so N captures proceed truly concurrently while the job
threads overlap diff/analysis.  Each job runs in a session derived from
the pipeline's base session, so per-job engine/config/mode overrides
compose with shared configuration — including the base session's ``=e``
:class:`~repro.core.keytable.KeyTable`, so every trace a batch captures
is interned into one shared id space at ingest — and every job reports
an :class:`OpCounter` total, wall-clock seconds, and the worker it ran
on for the benchmark tables and parallel-run debugging.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api.engines import DiffEngine
from repro.api.session import Session, SessionResult
from repro.capture.filters import TraceFilter
from repro.core.view_diff import ViewDiffConfig
from repro.exec.executors import (Executor, prewarm_thread_pool,
                                  resolve_executor)

#: Upper bound on pool size when ``max_workers`` is not given.
DEFAULT_MAX_WORKERS = 8


def prewarm_pool(pool: ThreadPoolExecutor, workers: int) -> None:
    """Force the executor to spawn all its threads up front.

    ``ThreadPoolExecutor`` creates worker threads lazily, and the
    capture layer's active :class:`~repro.capture.tracer.Tracer` wraps
    ``threading.Thread.start`` process-wide — a worker spawned while
    some job's capture holds the weaver would be recorded as a spurious
    fork event inside that workload's trace.  Delegates to the
    execution layer's :func:`~repro.exec.executors.prewarm_thread_pool`
    (one implementation of the barrier trick).
    """
    prewarm_thread_pool(pool, workers)


@dataclass(slots=True)
class ScenarioJob:
    """One live regression scenario (capture + diff + analyze)."""

    name: str
    old_version: Callable
    new_version: Callable
    regressing_input: object
    correct_input: object | None = None
    engine: str | DiffEngine | None = None
    mode: str | None = None
    config: ViewDiffConfig | None = None
    filter: TraceFilter | None = None
    store_prefix: str | None = None


@dataclass(slots=True)
class StoredScenarioJob:
    """One offline scenario over stored traces (diff + analyze only)."""

    name: str
    suspected: tuple[str, str]
    expected: tuple[str, str] | None = None
    regression: tuple[str, str] | None = None
    engine: str | DiffEngine | None = None
    mode: str | None = None
    config: ViewDiffConfig | None = None


@dataclass(slots=True)
class JobOutcome:
    """What one pipeline job produced (or the error that stopped it).

    ``worker`` names the pipeline worker the job ran on; capture
    workers (pids under a process executor) are listed per-job via
    ``SessionResult.workers`` — both surface in :meth:`brief` so
    parallel runs are debuggable.
    """

    name: str
    result: SessionResult | None = None
    error: str | None = None
    seconds: float = 0.0
    worker: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None

    def compares(self) -> int:
        return self.result.compares() if self.result is not None else 0

    def _where(self) -> str:
        where = self.worker or "?"
        if self.result is not None and self.result.workers:
            where += " capture=" + ",".join(self.result.workers)
        return where

    def brief(self) -> str:
        if not self.ok:
            return (f"{self.name:24} FAILED: {self.error} "
                    f"[{self.seconds:.3f}s on {self._where()}]")
        sizes = self.result.report.set_sizes()
        return (f"{self.name:24} engine={self.result.engine:10} "
                f"|A|={sizes['A']:<4} |D|={sizes['D']:<4} "
                f"{self.compares()} compares  {self.seconds:.3f}s "
                f"[{self._where()}]")


@dataclass(slots=True)
class PipelineResult:
    """All job outcomes plus batch-level aggregates."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    seconds: float = 0.0
    workers: int = 1

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __getitem__(self, name: str) -> JobOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    def succeeded(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.ok]

    def failed(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def total_compares(self) -> int:
        return sum(o.compares() for o in self.outcomes)

    def job_seconds(self) -> float:
        """Summed per-job wall-clock (vs. ``seconds``, the batch's)."""
        return sum(o.seconds for o in self.outcomes)

    def render(self) -> str:
        lines = [o.brief() for o in self.outcomes]
        lines.append(
            f"{len(self.succeeded())}/{len(self.outcomes)} scenarios ok, "
            f"{self.total_compares()} compares, "
            f"{self.job_seconds():.3f}s of work in {self.seconds:.3f}s "
            f"({self.workers} worker(s))")
        return "\n".join(lines)


class ScenarioPipeline:
    """Execute scenario jobs across a thread pool.

    ``executor`` selects the execution backend job sessions run their
    captures and parallelisable diffs on (``"processes"`` breaks the
    capture lock; see :mod:`repro.exec`).  The job fan-out itself stays
    a thread pool — threads block cheaply on the shared process pool,
    so ``max_workers`` job threads drive ``executor``'s workers.
    """

    def __init__(self, session: Session | None = None, *,
                 max_workers: int | None = None,
                 executor: "Executor | str | None" = None,
                 cache: "object | None" = None):
        self.session = session if session is not None else Session()
        self._owned_executor: Executor | None = None
        if executor is not None:
            resolved, owned = resolve_executor(executor)
            if owned:
                self._owned_executor = resolved
            self.session = self.session.derive(executor=resolved)
        if cache is not None:
            # One DiffCache handle (instance, path, or True) shared by
            # every job: derived sessions inherit it, so a pair diffed
            # by one job is a hit for every other — and for the whole
            # next batch when the cache has a disk tier.  DiffCache is
            # thread-safe, and under process executors lookups still
            # happen on the job threads of this process, so the shared
            # handle is safe for every repro.exec backend.
            self.session = self.session.derive(cache=cache)
        self.max_workers = max_workers

    def close(self) -> None:
        """Release a pool this pipeline resolved from an executor name
        spec (instances stay with their creator).  For ``"processes"``
        specs the release is soft: the warm shared pool stays alive,
        so back-to-back :func:`run_pipeline` batches never rebuild
        it."""
        if self._owned_executor is not None:
            self._owned_executor.close()
            self._owned_executor = None

    def __enter__(self) -> "ScenarioPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _workers_for(self, jobs: Sequence) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return max(1, min(DEFAULT_MAX_WORKERS, len(jobs)))

    def _run_job(self, job: ScenarioJob | StoredScenarioJob) -> JobOutcome:
        started = time.perf_counter()
        worker = threading.current_thread().name
        try:
            session = self.session.derive(engine=job.engine,
                                          config=job.config,
                                          mode=job.mode,
                                          filter=getattr(job, "filter",
                                                         None))
            if isinstance(job, StoredScenarioJob):
                result = session.run_stored_scenario(
                    job.suspected, expected=job.expected,
                    regression=job.regression, name=job.name)
            else:
                result = session.run_scenario(
                    job.old_version, job.new_version,
                    job.regressing_input, job.correct_input,
                    name=job.name, store_prefix=job.store_prefix)
            return JobOutcome(name=job.name, result=result,
                              seconds=time.perf_counter() - started,
                              worker=worker)
        except Exception as exc:  # noqa: BLE001 - jobs fail independently
            return JobOutcome(name=job.name,
                              error=f"{type(exc).__name__}: {exc}",
                              seconds=time.perf_counter() - started,
                              worker=worker)

    def run(self, jobs: Sequence[ScenarioJob | StoredScenarioJob]
            ) -> PipelineResult:
        """Run every job; one job failing never takes down the batch."""
        jobs = list(jobs)
        workers = self._workers_for(jobs)
        started = time.perf_counter()
        if workers == 1 or len(jobs) <= 1:
            outcomes = [self._run_job(job) for job in jobs]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                prewarm_pool(pool, workers)
                outcomes = list(pool.map(self._run_job, jobs))
        return PipelineResult(outcomes=outcomes,
                              seconds=time.perf_counter() - started,
                              workers=workers)


def run_pipeline(jobs: Sequence[ScenarioJob | StoredScenarioJob], *,
                 session: Session | None = None,
                 max_workers: int | None = None,
                 executor: "Executor | str | None" = None,
                 cache: "object | None" = None) -> PipelineResult:
    """One-shot convenience over :class:`ScenarioPipeline` — a pool
    built from an ``executor`` name spec is closed when the batch
    ends; ``cache`` attaches one shared diff cache to every job."""
    with ScenarioPipeline(session, max_workers=max_workers,
                          executor=executor, cache=cache) as pipeline:
        return pipeline.run(jobs)
