"""Batch scenario execution over a worker pool.

The benchmarks and the production north-star both want many regression
scenarios (the four-trace Sec. 4 recipe) executed as one batch with
aggregate numbers.  :class:`ScenarioPipeline` runs a mixed list of jobs
across a ``concurrent.futures`` thread pool:

* :class:`ScenarioJob` — live capture + diff + analysis of two program
  versions (``Session.run_scenario``).
* :class:`StoredScenarioJob` — the offline half only: diff + analysis
  over trace pairs already in a :class:`~repro.api.store.TraceStore`
  (``Session.run_stored_scenario``).

Capture is inherently serial (one ``sys.settrace`` weaver per process;
see :data:`repro.api.session.CAPTURE_LOCK`), so parallelism buys its
speedup on the diff/analysis side — which is where the paper's costs
live.  Each job runs in a session derived from the pipeline's base
session, so per-job engine/config/mode overrides compose with shared
configuration — including the base session's ``=e``
:class:`~repro.core.keytable.KeyTable`, so every trace a batch captures
is interned into one shared id space at ingest — and every job reports
an :class:`OpCounter` total and wall-clock seconds for the benchmark
tables.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api.engines import DiffEngine
from repro.api.session import Session, SessionResult
from repro.capture.filters import TraceFilter
from repro.core.view_diff import ViewDiffConfig

#: Upper bound on pool size when ``max_workers`` is not given.
DEFAULT_MAX_WORKERS = 8


def prewarm_pool(pool: ThreadPoolExecutor, workers: int) -> None:
    """Force the executor to spawn all its threads up front.

    ``ThreadPoolExecutor`` creates worker threads lazily, and the
    capture layer's active :class:`~repro.capture.tracer.Tracer` wraps
    ``threading.Thread.start`` process-wide — a worker spawned while
    some job's capture holds the weaver would be recorded as a spurious
    fork event inside that workload's trace.  A barrier task per worker
    makes every pool thread exist before the first capture starts.
    """
    barrier = threading.Barrier(workers)
    warmups = [pool.submit(barrier.wait) for _ in range(workers)]
    for warmup in warmups:
        warmup.result()


@dataclass(slots=True)
class ScenarioJob:
    """One live regression scenario (capture + diff + analyze)."""

    name: str
    old_version: Callable
    new_version: Callable
    regressing_input: object
    correct_input: object | None = None
    engine: str | DiffEngine | None = None
    mode: str | None = None
    config: ViewDiffConfig | None = None
    filter: TraceFilter | None = None
    store_prefix: str | None = None


@dataclass(slots=True)
class StoredScenarioJob:
    """One offline scenario over stored traces (diff + analyze only)."""

    name: str
    suspected: tuple[str, str]
    expected: tuple[str, str] | None = None
    regression: tuple[str, str] | None = None
    engine: str | DiffEngine | None = None
    mode: str | None = None
    config: ViewDiffConfig | None = None


@dataclass(slots=True)
class JobOutcome:
    """What one pipeline job produced (or the error that stopped it)."""

    name: str
    result: SessionResult | None = None
    error: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def compares(self) -> int:
        return self.result.compares() if self.result is not None else 0

    def brief(self) -> str:
        if not self.ok:
            return f"{self.name:24} FAILED: {self.error}"
        sizes = self.result.report.set_sizes()
        return (f"{self.name:24} engine={self.result.engine:10} "
                f"|A|={sizes['A']:<4} |D|={sizes['D']:<4} "
                f"{self.compares()} compares  {self.seconds:.3f}s")


@dataclass(slots=True)
class PipelineResult:
    """All job outcomes plus batch-level aggregates."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    seconds: float = 0.0
    workers: int = 1

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __getitem__(self, name: str) -> JobOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    def succeeded(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.ok]

    def failed(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def total_compares(self) -> int:
        return sum(o.compares() for o in self.outcomes)

    def job_seconds(self) -> float:
        """Summed per-job wall-clock (vs. ``seconds``, the batch's)."""
        return sum(o.seconds for o in self.outcomes)

    def render(self) -> str:
        lines = [o.brief() for o in self.outcomes]
        lines.append(
            f"{len(self.succeeded())}/{len(self.outcomes)} scenarios ok, "
            f"{self.total_compares()} compares, "
            f"{self.job_seconds():.3f}s of work in {self.seconds:.3f}s "
            f"({self.workers} worker(s))")
        return "\n".join(lines)


class ScenarioPipeline:
    """Execute scenario jobs across a thread pool."""

    def __init__(self, session: Session | None = None, *,
                 max_workers: int | None = None):
        self.session = session if session is not None else Session()
        self.max_workers = max_workers

    def _workers_for(self, jobs: Sequence) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return max(1, min(DEFAULT_MAX_WORKERS, len(jobs)))

    def _run_job(self, job: ScenarioJob | StoredScenarioJob) -> JobOutcome:
        started = time.perf_counter()
        try:
            session = self.session.derive(engine=job.engine,
                                          config=job.config,
                                          mode=job.mode,
                                          filter=getattr(job, "filter",
                                                         None))
            if isinstance(job, StoredScenarioJob):
                result = session.run_stored_scenario(
                    job.suspected, expected=job.expected,
                    regression=job.regression, name=job.name)
            else:
                result = session.run_scenario(
                    job.old_version, job.new_version,
                    job.regressing_input, job.correct_input,
                    name=job.name, store_prefix=job.store_prefix)
            return JobOutcome(name=job.name, result=result,
                              seconds=time.perf_counter() - started)
        except Exception as exc:  # noqa: BLE001 - jobs fail independently
            return JobOutcome(name=job.name,
                              error=f"{type(exc).__name__}: {exc}",
                              seconds=time.perf_counter() - started)

    def run(self, jobs: Sequence[ScenarioJob | StoredScenarioJob]
            ) -> PipelineResult:
        """Run every job; one job failing never takes down the batch."""
        jobs = list(jobs)
        workers = self._workers_for(jobs)
        started = time.perf_counter()
        if workers == 1 or len(jobs) <= 1:
            outcomes = [self._run_job(job) for job in jobs]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                prewarm_pool(pool, workers)
                outcomes = list(pool.map(self._run_job, jobs))
        return PipelineResult(outcomes=outcomes,
                              seconds=time.perf_counter() - started,
                              workers=workers)


def run_pipeline(jobs: Sequence[ScenarioJob | StoredScenarioJob], *,
                 session: Session | None = None,
                 max_workers: int | None = None) -> PipelineResult:
    """One-shot convenience over :class:`ScenarioPipeline`."""
    return ScenarioPipeline(session, max_workers=max_workers).run(jobs)
