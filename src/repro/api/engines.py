"""Pluggable trace-differencing engines.

The seed hard-wired ``algorithm="views"`` string branching into both
:mod:`repro.analysis.rprism` and :mod:`repro.analysis.cli`.  This module
replaces that with a small registry: a :class:`DiffEngine` is anything
with a ``name`` and a ``diff(left, right, ...)`` method producing a
:class:`repro.core.diffs.DiffResult`, and the built-in semantics — the
views-based differencing of Sec. 3.3 and every LCS baseline of Sec. 3.2 —
are pre-registered under stable names.

Drivers (``Session``, the CLI, the workload harness) resolve engines by
name, so swapping the analysis behind a stable driver API is one
``register_engine`` call::

    from repro.api import DiffEngine, register_engine

    class MyEngine:
        name = "mine"
        def diff(self, left, right, *, config=None, counter=None,
                 budget=None):
            ...

    register_engine(MyEngine())
"""

from __future__ import annotations

import dataclasses
import inspect
import threading
from typing import Protocol, runtime_checkable

from repro.core.anchors import AnchorConfig
from repro.core.diffs import DiffResult
from repro.core.keytable import KeyTable
from repro.core.lcs import MemoryBudget, OpCounter
from repro.core.lcs_diff import ALGORITHMS, lcs_diff
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig, view_diff

#: Name prefix of the anchored meta-engines (``anchored:<inner>``).
ANCHORED_PREFIX = "anchored:"

#: Default inner engine for ``anchored:*`` gap segments: the
#: bit-parallel Myers LCS (hardware-speed on the interned id columns,
#: pairs and compare counts identical to ``hirschberg``).
DEFAULT_GAP_INNER = "bitparallel"


@runtime_checkable
class DiffEngine(Protocol):
    """What a differencing backend must provide.

    ``config`` is a :class:`ViewDiffConfig` (engines that do not use it
    must accept and ignore it); ``counter`` accumulates entry-compare
    operations; ``budget`` caps DP memory for engines that allocate
    quadratic tables; ``key_table`` is the diff pair's shared interned
    ``=e`` symbol table; ``executor`` is the execution layer's backend
    for engines whose work parallelises.  Engines written before a
    parameter existed (without ``key_table`` or ``executor``) remain
    valid — drivers feed each kwarg only to engines whose signature
    accepts it (:func:`accepts_kwarg` and friends).

    Engines whose ``diff`` is a pure function of ``(left, right,
    config)`` may additionally set ``cacheable = True`` to let the
    diff cache (:mod:`repro.cache`) memoise their results; see
    :func:`is_cacheable`.
    """

    name: str

    def diff(self, left: Trace, right: Trace, *,
             config: ViewDiffConfig | None = None,
             counter: OpCounter | None = None,
             budget: MemoryBudget | None = None,
             key_table: KeyTable | None = None,
             executor=None) -> DiffResult:
        ...


def accepts_kwarg(engine: DiffEngine, name: str) -> bool:
    """Whether ``engine.diff`` can be handed the keyword ``name``.

    Drivers grow new optional diff parameters over time (``key_table``
    with the interned data layer, ``executor`` with the execution
    layer); engines written before a parameter existed remain valid —
    drivers feed a kwarg only to engines whose signature accepts it.
    """
    try:
        parameters = inspect.signature(engine.diff).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    if name in parameters:
        return True
    return any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in parameters.values())


def accepts_key_table(engine: DiffEngine) -> bool:
    """Whether ``engine.diff`` can be handed a ``key_table`` kwarg
    (pre-interning engines are still supported without one)."""
    return accepts_kwarg(engine, "key_table")


def accepts_executor(engine: DiffEngine) -> bool:
    """Whether ``engine.diff`` can be handed an ``executor`` kwarg
    (engines without one always run their diff inline)."""
    return accepts_kwarg(engine, "executor")


def accepts_cache(engine: DiffEngine) -> bool:
    """Whether ``engine.diff`` can be handed a ``cache`` kwarg (the
    anchored meta-engines take the diff-cache handle so whole-result
    misses can still hit at segment granularity)."""
    return accepts_kwarg(engine, "cache")


def is_cacheable(engine: DiffEngine) -> bool:
    """Whether ``engine``'s results may be memoised by the diff cache.

    An engine advertises cacheability with a truthy ``cacheable``
    attribute, promising its ``diff`` is a pure function of
    ``(left, right, config)`` — same inputs, same result, no hidden
    state.  The built-ins all qualify; engines that do not opt in are
    never cached (a stateful engine silently served stale results would
    be a correctness bug, so the default is off).
    """
    return bool(getattr(engine, "cacheable", False))


class ViewsEngine:
    """The paper's contribution: linear-time views-based differencing.

    ``executor`` routes the per-thread-pair execution phase through the
    execution layer (serial / threads / processes); results are
    bit-identical to the inline path for every executor.
    """

    name = "views"
    #: Pure function of (traces, config): safe to memoise.
    cacheable = True
    #: Anchoring is implemented *inside* the lock-step evaluation
    #: (``config.anchored`` bulk-matches aligned runs), so the anchored
    #: meta-engine delegates instead of segmenting sub-traces — the
    #: windowed secondary-view exploration needs the full webs.
    anchor_aware = True

    def diff(self, left: Trace, right: Trace, *,
             config: ViewDiffConfig | None = None,
             counter: OpCounter | None = None,
             budget: MemoryBudget | None = None,
             key_table: KeyTable | None = None,
             executor=None) -> DiffResult:
        if executor is None:
            return view_diff(left, right, config=config, counter=counter,
                             key_table=key_table)
        from repro.exec.diffing import executed_view_diff
        return executed_view_diff(left, right, config=config,
                                  counter=counter, key_table=key_table,
                                  executor=executor)


class LcsEngine:
    """One LCS baseline variant (Sec. 3.2) under its algorithm name."""

    #: Pure function of (traces, config): safe to memoise.
    cacheable = True

    def __init__(self, algorithm: str):
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown LCS algorithm: {algorithm!r}")
        self.name = algorithm
        self.algorithm = algorithm

    def diff(self, left: Trace, right: Trace, *,
             config: ViewDiffConfig | None = None,
             counter: OpCounter | None = None,
             budget: MemoryBudget | None = None,
             key_table: KeyTable | None = None) -> DiffResult:
        interned = config.interned if config is not None else True
        kernel = config.kernel if config is not None else None
        anchors = None
        if config is not None and config.anchored:
            anchors = AnchorConfig.from_view_config(config)
        return lcs_diff(left, right, algorithm=self.algorithm,
                        counter=counter, budget=budget,
                        interned=interned, key_table=key_table,
                        anchors=anchors, kernel=kernel)


class AnchoredEngine:
    """Patience-anchored segmental meta-engine (the tentpole of
    :mod:`repro.core.anchors`).

    Wraps any inner engine under the name ``anchored:<inner>``
    (:data:`DEFAULT_GAP_INNER` — the bit-parallel LCS — when no inner
    is named).  For
    engines that implement anchoring natively (a truthy
    ``anchor_aware`` attribute — the views engine), the call delegates
    with ``config.anchored`` forced on.  For everything else the pair
    is split along its ``=e`` anchor runs and the inner engine runs on
    each divergent gap — serially, across a thread pool, or chunked to
    worker processes — with optional gap-granular caching
    (:class:`~repro.cache.SegmentCache`) so an edited scenario
    re-diffs only the gaps that changed.

    Results are bit-identical to the inner engine's
    (:func:`~repro.core.diffs.result_identity`); only the ``=e``
    compare cost drops.
    """

    def __init__(self, inner: "str | DiffEngine | None" = None):
        if inner is None:
            inner = DEFAULT_GAP_INNER
        self.inner = get_engine(inner)
        self.name = ANCHORED_PREFIX + self.inner.name
        #: Purity is inherited: the meta-engine adds no state of its
        #: own, so its results may be memoised iff the inner's may.
        self.cacheable = is_cacheable(self.inner)

    def diff(self, left: Trace, right: Trace, *,
             config: ViewDiffConfig | None = None,
             counter: OpCounter | None = None,
             budget: MemoryBudget | None = None,
             key_table: KeyTable | None = None,
             executor=None, cache=None) -> DiffResult:
        if config is None:
            config = ViewDiffConfig()
        if getattr(self.inner, "anchor_aware", False):
            anchored = dataclasses.replace(config, anchored=True)
            kwargs = {}
            if key_table is not None and accepts_key_table(self.inner):
                kwargs["key_table"] = key_table
            if executor is not None and accepts_executor(self.inner):
                kwargs["executor"] = executor
            return self.inner.diff(left, right, config=anchored,
                                   counter=counter, budget=budget,
                                   **kwargs)
        from repro.exec.diffing import anchored_segment_diff
        return anchored_segment_diff(left, right, self.inner,
                                     config=config, counter=counter,
                                     budget=budget, key_table=key_table,
                                     executor=executor, cache=cache)


_REGISTRY: dict[str, DiffEngine] = {}
_REGISTRY_LOCK = threading.Lock()


def register_engine(engine: DiffEngine, *, replace: bool = False) -> None:
    """Make ``engine`` resolvable by ``engine.name``.

    Registering over an existing name requires ``replace=True`` so tests
    and plugins cannot silently shadow the built-in semantics.
    """
    name = getattr(engine, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"engine has no usable name: {engine!r}")
    if not callable(getattr(engine, "diff", None)):
        raise ValueError(f"engine {name!r} has no diff() method")
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not replace:
            raise ValueError(f"engine {name!r} already registered "
                             f"(pass replace=True to override)")
        _REGISTRY[name] = engine


def unregister_engine(name: str) -> None:
    """Remove a registered engine (built-ins may be re-registered)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)


def get_engine(engine: str | DiffEngine) -> DiffEngine:
    """Resolve an engine by name; engine instances pass through."""
    if not isinstance(engine, str):
        name = getattr(engine, "name", None)
        if (name and isinstance(name, str)
                and callable(getattr(engine, "diff", None))):
            return engine
        raise TypeError(f"not a diff engine: {engine!r}")
    with _REGISTRY_LOCK:
        found = _REGISTRY.get(engine)
    if found is None and engine.startswith(ANCHORED_PREFIX):
        # ``anchored:<anything registered>`` resolves dynamically, so
        # third-party engines get an anchored variant for free (the
        # built-in combinations are pre-registered).
        inner_name = engine[len(ANCHORED_PREFIX):]
        try:
            return AnchoredEngine(get_engine(inner_name))
        except KeyError:
            pass
    if found is None:
        raise KeyError(f"unknown diff engine {engine!r}; available: "
                       f"{', '.join(available_engines())}")
    return found


def available_engines() -> tuple[str, ...]:
    """Registered engine names, ``views`` first, then alphabetical."""
    with _REGISTRY_LOCK:
        names = set(_REGISTRY)
    ordered = [n for n in ("views",) if n in names]
    ordered.extend(sorted(names - {"views"}))
    return tuple(ordered)


def _register_builtins() -> None:
    register_engine(ViewsEngine(), replace=True)
    for algorithm in ALGORITHMS:
        register_engine(LcsEngine(algorithm), replace=True)
    # The anchored meta-engine over every built-in inner.
    register_engine(AnchoredEngine("views"), replace=True)
    for algorithm in ALGORITHMS:
        register_engine(AnchoredEngine(algorithm), replace=True)


_register_builtins()
